#!/usr/bin/env bash
# The local CI gauntlet, in dependency order: build everything in release
# mode, run the full test suite, run the domain-aware static-analysis
# gate, and smoke-check the perf ledger + regression gate.
#
# `perf_gate --smoke` deliberately runs no benchmarks: it validates that
# every committed bench_history/*.jsonl parses and that the gate's
# discrimination logic holds on synthetic data, so this script stays
# deterministic on noisy shared machines. Record fresh ledger entries
# with `perf_ledger` and gate real runs with `perf_gate --repeats N --`
# on quiet hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release" >&2
# --workspace matters: the root Cargo.toml is both workspace root and a
# package, so a bare `cargo build` builds only the root package and the
# member *bins* this script executes (fleetd, fleet_storm, perf_gate,
# the ledgered benches) would silently stay stale.
cargo build --release --workspace

echo "== cargo test" >&2
# --workspace: the root package holds the cross-crate tier-1 suites, but
# per-crate tests (fleet resume/protocol, analyzer fixtures, ...) live
# in their own crates and must run too.
cargo test -q --workspace

echo "== cargo analyzer check" >&2
# Includes the workspace dataflow pass: any deterministic root reaching
# a clock/env/IO/unseeded-RNG sink without a justified trust annotation
# is a finding, and the baseline is kept empty.
cargo analyzer check

echo "== cargo analyzer graph (smoke)" >&2
# The graph dump must stay valid JSON and see every workspace crate.
cargo analyzer graph | python3 -c '
import json, sys
g = json.load(sys.stdin)
assert len(g["crates"]) >= 10, g["crates"]
assert g["nodes"] and g["edges"] and g["roots"]
n, e, r, c = (len(g[k]) for k in ("nodes", "edges", "roots", "crates"))
print(f"analyzer graph: {n} nodes, {e} edges, {r} roots across {c} crates")
'

echo "== perf_gate --smoke" >&2
cargo run -q --release -p selfheal-bench --bin perf_gate -- --smoke

echo "== telemetry sampler smoke" >&2
# One real bench run with the streaming sampler on: the Prometheus
# status file must parse as valid text exposition (selfheal-top --check
# embeds the in-tree parser) and the time-series JSONL must carry
# strictly monotone sample timestamps.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SELFHEAL_TELEMETRY="timeseries:$SMOKE_DIR/series.jsonl" \
SELFHEAL_TELEMETRY_SAMPLE=20ms \
    target/release/telemetry_sampler --json --status "$SMOKE_DIR/status.prom" \
    > /dev/null
target/release/selfheal-top --check "$SMOKE_DIR/status.prom"
python3 - "$SMOKE_DIR/series.jsonl" <<'PY'
import json, sys
stamps = []
with open(sys.argv[1]) as fh:
    for line in fh:
        tick = json.loads(line)
        stamps.append(tick["ts_ns"])
        assert tick["metrics"], "sampler tick carries no metrics"
assert stamps, "sampler wrote no time-series ticks"
assert all(a < b for a, b in zip(stamps, stamps[1:])), "ts_ns not monotone"
print(f"timeseries: {len(stamps)} ticks, ts_ns strictly monotone")
PY

echo "== fleet daemon smoke" >&2
# End-to-end service path: fleetd on an ephemeral loopback port with a
# small fleet and an isolated checkpoint store, one request of each type
# via fleet_storm --smoke, the live status file re-checked, and a clean
# shutdown that must leave a final checkpoint behind.
SELFHEAL_TELEMETRY_SAMPLE=50ms \
    target/release/fleetd --chips 256 --shards 4 --workers 2 \
    --epoch-ms 100 --checkpoint-every 0 --cache-dir "$SMOKE_DIR/fleet-cache" \
    --status "$SMOKE_DIR/fleet.prom" --addr-file "$SMOKE_DIR/fleet.addr" &
FLEETD_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/fleet.addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/fleet.addr" ] || { echo "fleetd never published its address" >&2; exit 1; }
# Let a couple of wall-clock epochs land before poking it.
sleep 0.3
target/release/fleet_storm --smoke --connect "$(cat "$SMOKE_DIR/fleet.addr")" --shutdown
wait "$FLEETD_PID"
target/release/selfheal-top --check "$SMOKE_DIR/fleet.prom"
CKPTS=$(find "$SMOKE_DIR/fleet-cache" -name '*.json' | wc -l)
[ "$CKPTS" -ge 2 ] || { echo "no final checkpoint written (found $CKPTS cache files)" >&2; exit 1; }
echo "fleet smoke: clean shutdown, $CKPTS checkpoint file(s)" >&2

echo "== tiered fleet smoke" >&2
# The tiered integrator end to end: a --tiered daemon serves every
# request type, checkpoints carry per-chip tier state, and a kill -9
# mid-flight resumes from the checkpointed tiers (not a fresh fleet).
target/release/fleetd --tiered --guard-band-mv 10 \
    --chips 256 --shards 4 --workers 2 \
    --epoch-ms 50 --checkpoint-every 2 --cache-dir "$SMOKE_DIR/tiered-cache" \
    --addr-file "$SMOKE_DIR/tiered.addr" 2> "$SMOKE_DIR/tiered.first.log" &
TIERED_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/tiered.addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/tiered.addr" ] || { echo "tiered fleetd never published its address" >&2; exit 1; }
# Enough wall-clock epochs for the checkpoint cadence to fire at least once.
sleep 0.5
target/release/fleet_storm --smoke --connect "$(cat "$SMOKE_DIR/tiered.addr")"
kill -9 "$TIERED_PID"
wait "$TIERED_PID" 2>/dev/null || true
grep -q '\[tiered, guard band' "$SMOKE_DIR/tiered.first.log" \
    || { echo "tiered fleetd did not announce tiering" >&2; exit 1; }
rm -f "$SMOKE_DIR/tiered.addr"
target/release/fleetd --tiered --guard-band-mv 10 \
    --chips 256 --shards 4 --workers 2 \
    --epoch-ms 50 --checkpoint-every 2 --cache-dir "$SMOKE_DIR/tiered-cache" \
    --addr-file "$SMOKE_DIR/tiered.addr" 2> "$SMOKE_DIR/tiered.second.log" &
TIERED_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/tiered.addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/tiered.addr" ] || { echo "tiered fleetd never restarted" >&2; exit 1; }
grep -q '(resumed: true)' "$SMOKE_DIR/tiered.second.log" \
    || { echo "restarted tiered fleetd did not resume from its checkpoint" >&2; \
         cat "$SMOKE_DIR/tiered.second.log" >&2; exit 1; }
target/release/fleet_storm --smoke --connect "$(cat "$SMOKE_DIR/tiered.addr")" --shutdown
wait "$TIERED_PID"
echo "tiered fleet smoke: served all request types, kill -9 resumed from tiered checkpoint" >&2

echo "ci: all gates green" >&2
