#!/usr/bin/env bash
# The local CI gauntlet, in dependency order: build everything in release
# mode, run the full test suite, run the domain-aware static-analysis
# gate, and smoke-check the perf ledger + regression gate.
#
# `perf_gate --smoke` deliberately runs no benchmarks: it validates that
# every committed bench_history/*.jsonl parses and that the gate's
# discrimination logic holds on synthetic data, so this script stays
# deterministic on noisy shared machines. Record fresh ledger entries
# with `perf_ledger` and gate real runs with `perf_gate --repeats N --`
# on quiet hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release" >&2
# --workspace matters: the root Cargo.toml is both workspace root and a
# package, so a bare `cargo build` builds only the root package and the
# member *bins* this script executes (fleetd, fleet_storm, perf_gate,
# the ledgered benches) would silently stay stale.
cargo build --release --workspace

echo "== cargo test" >&2
# --workspace: the root package holds the cross-crate tier-1 suites, but
# per-crate tests (fleet resume/protocol, analyzer fixtures, ...) live
# in their own crates and must run too.
cargo test -q --workspace

echo "== cargo analyzer check" >&2
# Includes the workspace dataflow pass: any deterministic root reaching
# a clock/env/IO/unseeded-RNG sink without a justified trust annotation
# is a finding, and the baseline is kept empty.
cargo analyzer check

echo "== cargo analyzer graph (smoke)" >&2
# The graph dump must stay valid JSON and see every workspace crate.
cargo analyzer graph | python3 -c '
import json, sys
g = json.load(sys.stdin)
assert len(g["crates"]) >= 10, g["crates"]
assert g["nodes"] and g["edges"] and g["roots"]
n, e, r, c = (len(g[k]) for k in ("nodes", "edges", "roots", "crates"))
print(f"analyzer graph: {n} nodes, {e} edges, {r} roots across {c} crates")
'

echo "== perf_gate --smoke" >&2
cargo run -q --release -p selfheal-bench --bin perf_gate -- --smoke

echo "== telemetry sampler smoke" >&2
# One real bench run with the streaming sampler on: the Prometheus
# status file must parse as valid text exposition (selfheal-top --check
# embeds the in-tree parser) and the time-series JSONL must carry
# strictly monotone sample timestamps.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
SELFHEAL_TELEMETRY="timeseries:$SMOKE_DIR/series.jsonl" \
SELFHEAL_TELEMETRY_SAMPLE=20ms \
    target/release/telemetry_sampler --json --status "$SMOKE_DIR/status.prom" \
    > /dev/null
target/release/selfheal-top --check "$SMOKE_DIR/status.prom"
python3 - "$SMOKE_DIR/series.jsonl" <<'PY'
import json, sys
stamps = []
with open(sys.argv[1]) as fh:
    for line in fh:
        tick = json.loads(line)
        stamps.append(tick["ts_ns"])
        assert tick["metrics"], "sampler tick carries no metrics"
assert stamps, "sampler wrote no time-series ticks"
assert all(a < b for a, b in zip(stamps, stamps[1:])), "ts_ns not monotone"
print(f"timeseries: {len(stamps)} ticks, ts_ns strictly monotone")
PY

echo "== fleet daemon smoke" >&2
# End-to-end service path: fleetd on an ephemeral loopback port with a
# small fleet, an isolated checkpoint store, latency objectives, a flight
# recorder, and a Chrome-trace sink; one request of each type (plus a
# debug-dump) via fleet_storm --smoke tracing its own side, the live
# status file re-checked (including mtime freshness and the slo gauges),
# both trace halves merged into one connected flow graph, and a clean
# shutdown that must leave a final checkpoint behind.
SELFHEAL_TELEMETRY_SAMPLE=50ms \
SELFHEAL_TELEMETRY="trace:$SMOKE_DIR/fleet.daemon.trace.json" \
    target/release/fleetd --chips 256 --shards 4 --workers 2 \
    --epoch-ms 100 --checkpoint-every 0 --cache-dir "$SMOKE_DIR/fleet-cache" \
    --slo 'plan:p99<30s' --slo 'stats:p50<30s' \
    --flight-dump "$SMOKE_DIR/fleet.flight.jsonl" \
    --status "$SMOKE_DIR/fleet.prom" --addr-file "$SMOKE_DIR/fleet.addr" &
FLEETD_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/fleet.addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/fleet.addr" ] || { echo "fleetd never published its address" >&2; exit 1; }
# Let a couple of wall-clock epochs land before poking it.
sleep 0.3
target/release/fleet_storm --smoke --connect "$(cat "$SMOKE_DIR/fleet.addr")" \
    --trace "$SMOKE_DIR/fleet.client.trace.json" --shutdown
wait "$FLEETD_PID"
target/release/selfheal-top --check --max-age 60s "$SMOKE_DIR/fleet.prom"
grep -q '^selfheal_slo_plan_p99_ok' "$SMOKE_DIR/fleet.prom" \
    || { echo "status file carries no slo gauges" >&2; exit 1; }
# A stale status file (dead writer) must now fail the checker.
touch -d '10 minutes ago' "$SMOKE_DIR/fleet.prom"
if target/release/selfheal-top --check --max-age 60s "$SMOKE_DIR/fleet.prom" 2>/dev/null; then
    echo "selfheal-top --check --max-age accepted a stale status file" >&2; exit 1
fi
# The shutdown path dumps the flight ring: every line must be one JSON
# event and the lifecycle records must bracket the requests.
python3 - "$SMOKE_DIR/fleet.flight.jsonl" <<'PY'
import json, sys
kinds = []
with open(sys.argv[1]) as fh:
    for line in fh:
        kinds.append(json.loads(line)["kind"])
assert kinds, "flight dump is empty"
assert "lifecycle" in kinds, f"no lifecycle records in {set(kinds)}"
assert "request" in kinds, f"no request records in {set(kinds)}"
print(f"flight dump: {len(kinds)} parseable event(s)")
PY
# Merge the two trace halves: at least one rpc flow must span both pids.
target/release/trace_merge --out "$SMOKE_DIR/fleet.merged.trace.json" \
    "$SMOKE_DIR/fleet.client.trace.json" "$SMOKE_DIR/fleet.daemon.trace.json"
python3 - "$SMOKE_DIR/fleet.merged.trace.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
flows = {}
for event in doc["traceEvents"]:
    if event.get("ph") in ("s", "f"):
        flows.setdefault((event["name"], event["id"]), set()).add(event["pid"])
crossed = [k for k, pids in flows.items() if len(pids) > 1]
assert crossed, f"no flow spans both processes ({len(flows)} flow id(s))"
print(f"trace merge: {len(crossed)} cross-process flow(s) of {len(flows)}")
PY
CKPTS=$(find "$SMOKE_DIR/fleet-cache" -name '*.json' | wc -l)
[ "$CKPTS" -ge 2 ] || { echo "no final checkpoint written (found $CKPTS cache files)" >&2; exit 1; }
echo "fleet smoke: clean shutdown, $CKPTS checkpoint file(s)" >&2

echo "== tiered fleet smoke" >&2
# The tiered integrator end to end: a --tiered daemon serves every
# request type, checkpoints carry per-chip tier state, and a kill -9
# mid-flight resumes from the checkpointed tiers (not a fresh fleet).
# The smoke's debug-dump request persists the flight ring before the
# kill, so even a SIGKILLed daemon leaves a parseable dump behind.
target/release/fleetd --tiered --guard-band-mv 10 \
    --chips 256 --shards 4 --workers 2 \
    --epoch-ms 50 --checkpoint-every 2 --cache-dir "$SMOKE_DIR/tiered-cache" \
    --flight-dump "$SMOKE_DIR/tiered.flight.jsonl" \
    --addr-file "$SMOKE_DIR/tiered.addr" 2> "$SMOKE_DIR/tiered.first.log" &
TIERED_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/tiered.addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/tiered.addr" ] || { echo "tiered fleetd never published its address" >&2; exit 1; }
# Enough wall-clock epochs for the checkpoint cadence to fire at least once.
sleep 0.5
target/release/fleet_storm --smoke --connect "$(cat "$SMOKE_DIR/tiered.addr")"
kill -9 "$TIERED_PID"
wait "$TIERED_PID" 2>/dev/null || true
grep -q '\[tiered, guard band' "$SMOKE_DIR/tiered.first.log" \
    || { echo "tiered fleetd did not announce tiering" >&2; exit 1; }
# SIGKILL runs no hooks; the dump on disk is the one the debug-dump
# request wrote moments before the kill, and it must still parse.
python3 - "$SMOKE_DIR/tiered.flight.jsonl" <<'PY'
import json, sys
events = [json.loads(line) for line in open(sys.argv[1])]
assert events, "flight dump is empty after kill -9"
assert all(e["seq"] >= 0 and e["kind"] for e in events)
print(f"flight dump survives kill -9: {len(events)} event(s)")
PY
rm -f "$SMOKE_DIR/tiered.addr"
target/release/fleetd --tiered --guard-band-mv 10 \
    --chips 256 --shards 4 --workers 2 \
    --epoch-ms 50 --checkpoint-every 2 --cache-dir "$SMOKE_DIR/tiered-cache" \
    --addr-file "$SMOKE_DIR/tiered.addr" 2> "$SMOKE_DIR/tiered.second.log" &
TIERED_PID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/tiered.addr" ] && break
    sleep 0.1
done
[ -s "$SMOKE_DIR/tiered.addr" ] || { echo "tiered fleetd never restarted" >&2; exit 1; }
grep -q '(resumed: true)' "$SMOKE_DIR/tiered.second.log" \
    || { echo "restarted tiered fleetd did not resume from its checkpoint" >&2; \
         cat "$SMOKE_DIR/tiered.second.log" >&2; exit 1; }
target/release/fleet_storm --smoke --connect "$(cat "$SMOKE_DIR/tiered.addr")" --shutdown
wait "$TIERED_PID"
echo "tiered fleet smoke: served all request types, kill -9 resumed from tiered checkpoint" >&2

echo "ci: all gates green" >&2
