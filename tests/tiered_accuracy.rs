//! The tiered-integrator accuracy gate: a fleet running the
//! analytic/trap tiered integrator must track a full-resolution fleet
//! within the configured guard band, and any chip the tiering never
//! touches (reported before its first demotion, hence pinned) must be
//! *bit-for-bit* identical to the untiered run.
//!
//! Why the guard band is the error bound: a chip only demotes to the
//! cold tier while its consumed margin is below `margin - guard_band`,
//! and its analytic state is anchored to the exact bank value at the
//! demotion epoch (`t_eq` inversion). The analytic stress curve and the
//! trap-ensemble mean are fits of the same physics, so over a cold
//! window that by construction ends at or before the
//! `margin - guard_band` crossing, the divergence between the frozen
//! bank extrapolation and the live bank stays below the guard band
//! itself — with large margin in practice, which the sweep checks
//! across duty cycles, temperatures and seeds.

use selfheal_bti::td::ChipTier;
use selfheal_bti::Environment;
use selfheal_fleet::{FleetConfig, FleetState};
use selfheal_runtime::set_global_threads;
use selfheal_units::{Celsius, DutyCycle, Volts};

/// A fleet small enough to sweep but big enough to shard unevenly.
fn sweep_config(seed: u64, temp_c: f64, tiered: bool) -> FleetConfig {
    let mut config = FleetConfig::default();
    config.chips = 36;
    config.shards = 4;
    config.seed = seed;
    config.trap_params.mean_trap_count = 12.0;
    config.active_env = Environment::new(Volts::new(1.2), Celsius::new(temp_c));
    config.tiered = tiered;
    config
}

/// The duty-cycle sweep reported into both fleets at epoch 2: a spread
/// of AC stress ratios across chips, leaving the rest at the default
/// (DC) duty so the fleet mixes pinned, hot and cold chips.
fn duty_reports(chips: usize) -> Vec<(usize, DutyCycle)> {
    (0..chips)
        .step_by(5)
        .enumerate()
        .map(|(i, chip)| {
            #[allow(clippy::cast_precision_loss)]
            let duty = DutyCycle::new(0.15 + 0.1 * i as f64);
            (chip, duty)
        })
        .collect()
}

#[test]
fn tiered_fleet_tracks_full_resolution_within_the_guard_band() {
    set_global_threads(2);
    let mut worst_error_mv = 0.0f64;
    let mut saw_cold = false;

    for seed in [7u64, 2014] {
        for temp_c in [80.0, 110.0] {
            let mut full = FleetState::build(sweep_config(seed, temp_c, false));
            let mut tiered = FleetState::build(sweep_config(seed, temp_c, true));
            let guard_band_mv = tiered.config().guard_band.get();
            let chips = tiered.config().chips;

            for epoch in 1..=10u64 {
                full.advance_epoch();
                tiered.advance_epoch();
                if epoch == 2 {
                    for (chip, duty) in duty_reports(chips) {
                        assert!(full.fold_report(chip, duty));
                        assert!(tiered.fold_report(chip, duty));
                    }
                }
                for chip in 0..chips {
                    let want = full.chip_consumed(chip).expect("chip in range").get();
                    let got = tiered.chip_consumed(chip).expect("chip in range").get();
                    let error = (want - got).abs();
                    worst_error_mv = worst_error_mv.max(error);
                    assert!(
                        error <= guard_band_mv,
                        "seed={seed} temp={temp_c} epoch={epoch} chip={chip}: \
                         tiered shift {got} mV vs full {want} mV drifts {error} mV, \
                         past the {guard_band_mv} mV guard band"
                    );
                }
            }

            let counts = tiered.tier_counts();
            saw_cold |= counts.cold > 0;
            assert_eq!(counts.total(), chips);
        }
    }

    assert!(
        saw_cold,
        "the sweep never demoted a chip — the accuracy bound was not exercised"
    );
    // The user-facing bound is the guard band, but the wake rule caps
    // extrapolated growth (and, by deceleration, true growth) at half
    // of it — pin that tighter provable cap so a regression that
    // quietly eats the margin still fails loudly.
    assert!(
        worst_error_mv <= 5.0,
        "worst tiered-vs-full error {worst_error_mv} mV broke the \
         guard_band/2 cap the wake rule guarantees"
    );
}

#[test]
fn a_chip_reported_before_demotion_is_bit_identical_to_the_untiered_fleet() {
    set_global_threads(2);
    let mut full = FleetState::build(sweep_config(42, 90.0, false));
    let mut tiered = FleetState::build(sweep_config(42, 90.0, true));
    let watched = 5usize;

    // Reported before any epoch ran, the chip is pinned hot before the
    // tiering machinery ever sees it outside the guard band.
    let duty = DutyCycle::new(0.4);
    assert!(full.fold_report(watched, duty));
    assert!(tiered.fold_report(watched, duty));
    assert_eq!(tiered.chip_tier(watched), Some(ChipTier::Pinned));

    for _ in 0..8 {
        full.advance_epoch();
        tiered.advance_epoch();

        // Same trap slice, same occupancies, to the bit — the pinned
        // chip's trajectory must be untouched by its cold neighbours.
        let (full_shard, full_range) = full.chip_view(watched).expect("chip in range");
        let (tiered_shard, tiered_range) = tiered.chip_view(watched).expect("chip in range");
        assert_eq!(full_range, tiered_range);
        let full_occ = &full_shard.bank.occupancies()[full_range.clone()];
        let tiered_occ = &tiered_shard.bank.occupancies()[tiered_range];
        for (i, (want, got)) in full_occ.iter().zip(tiered_occ).enumerate() {
            assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "pinned chip trap {i} drifted from the untiered run"
            );
        }
        assert_eq!(
            full.chip_consumed(watched)
                .expect("chip in range")
                .get()
                .to_bits(),
            tiered
                .chip_consumed(watched)
                .expect("chip in range")
                .get()
                .to_bits(),
            "pinned chip consumed margin must match bitwise"
        );
    }

    // The pin is sticky: eight epochs later the chip is still hot.
    assert_eq!(tiered.chip_tier(watched), Some(ChipTier::Pinned));
}
