//! End-to-end reproduction checks: every headline claim of the paper,
//! exercised through the public API exactly as a downstream user would.

use selfheal::experiment::{ExperimentOutputs, PaperExperiment};
use selfheal::MarginBudget;
use selfheal_fpga::ChipId;
use selfheal_units::Nanoseconds;
use std::sync::OnceLock;

/// One shared campaign for all claims (the run dominates test time).
fn outputs() -> &'static ExperimentOutputs {
    static OUTPUTS: OnceLock<ExperimentOutputs> = OnceLock::new();
    OUTPUTS.get_or_init(|| PaperExperiment::quick(2014).run())
}

#[test]
fn abstract_claim_quarter_time_deep_rejuvenation() {
    // "we bring stressed chips back to within 90% of their original
    // margin by actively rejuvenating for only 1/4 of the stress time"
    let o = outputs();
    let budget = MarginBudget::typical();
    for name in ["AR20N6", "AR110Z6", "AR110N6"] {
        let rec = o.recovery(name).expect("case ran");
        // α = 4 by construction:
        let alpha = rec.stress_duration.get() / rec.case.duration.to_seconds().get();
        assert!((alpha - 4.0).abs() < 1e-9, "{name}: α = {alpha}");
        // Margin check on the nominal ~90 ns path with a 10 % guardband.
        let fresh = Nanoseconds::new(90.0);
        let current = fresh + rec.assessment.remaining();
        assert!(
            budget.within_90_percent(fresh, current),
            "{name}: available = {}",
            budget.available_fraction(fresh, current)
        );
    }
}

#[test]
fn headline_margin_relaxed_is_near_724() {
    let o = outputs();
    let relaxed = o.recovery("AR110N6").unwrap().margin_relaxed().get();
    assert!(
        (relaxed - 72.4).abs() < 10.0,
        "AR110N6 margin relaxed = {relaxed} % (paper: 72.4 %)"
    );
}

#[test]
fn knob_ordering_matches_figures_6_to_8() {
    let o = outputs();
    let relaxed = |name: &str| o.recovery(name).unwrap().margin_relaxed().get();
    let passive = relaxed("R20Z6");
    let neg = relaxed("AR20N6");
    let heat = relaxed("AR110Z6");
    let both = relaxed("AR110N6");
    assert!(passive < neg && passive < heat, "both knobs beat passive gating");
    assert!(both > neg && both > heat, "combined beats single knobs");
    assert!(passive < 45.0, "passive recovery is weak (§2.2): {passive}");
    assert!(both > 60.0, "deep rejuvenation is strong: {both}");
}

#[test]
fn ac_stress_is_roughly_half_of_dc() {
    let o = outputs();
    let ac = o.stress("AS110AC24").unwrap().total_degradation().get();
    let dc = o
        .stress_on("AS110DC24", ChipId::new(2))
        .unwrap()
        .total_degradation()
        .get();
    let ratio = ac / dc;
    assert!(ratio > 0.3 && ratio < 0.75, "AC/DC = {ratio} (paper: about half)");
}

#[test]
fn temperature_accelerates_wearout_modestly() {
    let o = outputs();
    let hot = o
        .stress_on("AS110DC24", ChipId::new(5))
        .unwrap()
        .total_degradation()
        .get();
    let warm = o.stress("AS100DC24").unwrap().total_degradation().get();
    assert!(warm < hot);
    assert!(warm / hot > 0.6, "the Fig. 5 gap is modest: {}", warm / hot);
    // Magnitudes in the paper's ballpark (≈ 1.9–2.3 %).
    assert!(hot > 1.0 && hot < 4.0, "110 °C: {hot} %");
    assert!(warm > 0.8 && warm < 3.5, "100 °C: {warm} %");
}

#[test]
fn degradation_is_fast_then_slow() {
    // "In the first 3 hours ... relatively fast and then becomes slower."
    let o = outputs();
    let dc = o.stress_on("AS110DC24", ChipId::new(2)).unwrap();
    let total = dc.total_degradation().get();
    let at_4h = dc
        .series
        .iter()
        .find(|p| p.elapsed.to_hours().get() >= 4.0)
        .unwrap()
        .frequency_degradation
        .get();
    assert!(
        at_4h > 0.45 * total,
        "first 4 of 24 hours already inflict {at_4h} of {total}"
    );
}

#[test]
fn alpha_ratio_governs_not_absolute_time() {
    // Table 5: same α, different stress lengths, same margin relaxation.
    let o = outputs();
    let short = o.recovery("AR110N6").unwrap().margin_relaxed().get();
    let long = o.recovery("AR110N12").unwrap().margin_relaxed().get();
    assert!(
        (short - long).abs() < 10.0,
        "AR110N6 {short} % vs AR110N12 {long} %"
    );
}

#[test]
fn model_tracks_measurement_for_every_case() {
    // §5: "test results match the modeling results well."
    let o = outputs();
    for s in &o.stresses {
        let fit = s.fit.as_ref().expect("stress fit extracted");
        let rel = fit.rmse_ns / s.total_shift().get().max(0.1);
        assert!(rel < 0.35, "{}: relative RMSE {rel}", s.case.name);
    }
    for r in &o.recoveries {
        let fit = r.fit.as_ref().expect("recovery fit extracted");
        let scale = r.assessment.recovered.get().max(0.1);
        assert!(
            fit.rmse_ns / scale < 0.35,
            "{}: relative RMSE {}",
            r.case.name,
            fit.rmse_ns / scale
        );
    }
}

#[test]
fn recovered_delay_metric_cancels_chip_baselines() {
    // Different chips have different fresh frequencies (process
    // variation), yet the RD-based outcomes are comparable — the paper's
    // §5.2 rationale. Verify the fresh baselines really differ.
    let o = outputs();
    let starts: Vec<f64> = o.stresses.iter().map(|s| s.start_delay.get()).collect();
    let min = starts.iter().cloned().fold(f64::MAX, f64::min);
    let max = starts.iter().cloned().fold(f64::MIN, f64::max);
    assert!(
        max - min > 0.2,
        "chips must differ at birth (spread = {} ns)",
        max - min
    );
}

#[test]
fn campaign_is_deterministic_and_seed_sensitive() {
    let a = PaperExperiment::quick(1).run();
    let b = PaperExperiment::quick(1).run();
    let c = PaperExperiment::quick(2).run();
    assert_eq!(a, b, "same seed, same campaign");
    assert_ne!(a, c, "different seed, different chips");
}
