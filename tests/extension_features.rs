//! Integration tests for the beyond-the-paper extensions, exercised
//! together the way a downstream user would combine them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal::closed_loop::{run_closed_loop, ClosedLoopConfig};
use selfheal::policy::ReactivePolicy;
use selfheal::study::MetricStats;
use selfheal::{RejuvenationTechnique, SchedulePlanner};
use selfheal_bti::em::Electromigration;
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_fpga::fabric::CutArray;
use selfheal_fpga::{Chip, ChipId, Family, Odometer, RoMode};
use selfheal_multicore::lifetime::{estimate_lifetime, extension_factor};
use selfheal_multicore::scheduler::{CircadianRotation, NaiveGating};
use selfheal_multicore::sim::SimConfig;
use selfheal_multicore::workload::Workload;
use selfheal_units::{Celsius, Fraction, Hours, Millivolts, Seconds, Volts};

#[test]
fn planner_output_survives_contact_with_the_stochastic_chip() {
    // Plan a rhythm with the analytic models, then run it on the trap
    // engine: the realised peak must respect the planned budget within
    // cross-engine tolerance.
    let operating = Environment::new(Volts::new(1.2), Celsius::new(90.0));
    let margin = Millivolts::new(24.0);
    let planner = SchedulePlanner::with_default_models(operating, margin);
    let period: Seconds = Hours::new(24.0).into();
    let horizon = Seconds::new(30.0 * 86_400.0);
    let plan = planner
        .plan(RejuvenationTechnique::Combined, period, horizon)
        .expect("plannable budget");

    let mut rng = StdRng::seed_from_u64(61);
    let mut chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
    let (active, sleep) = plan.alpha.split_cycle(period);
    let mut peak_shift = 0.0f64;
    let fresh = chip.true_cut_delay();
    for _ in 0..30 {
        chip.advance(RoMode::Static, operating, active);
        peak_shift = peak_shift.max((chip.true_cut_delay() - fresh).get());
        chip.advance(RoMode::Sleep, plan.technique.environment(), sleep);
    }
    // Convert the plan's mV budget to path ns through the calibrated β.
    // The 1.5× factor is cross-engine tolerance: the analytic plan is a
    // mean-field prediction, while the realised peak depends on the
    // particular trap population the RNG draws for this chip (observed
    // spread across seeds is roughly ±5 % around ~1.35× the budget).
    let beta = 0.056;
    let budget_ns = margin.get() * beta;
    assert!(
        peak_shift < budget_ns * 1.5,
        "realised peak {peak_shift:.2} ns vs planned budget {budget_ns:.2} ns"
    );
}

#[test]
fn em_is_the_part_no_technique_heals() {
    // Combined BTI + EM on one schedule: after deep rejuvenation the BTI
    // part shrinks but the EM part is exactly where it was.
    let active = DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)));
    let heal = DeviceCondition::recovery(Environment::new(Volts::new(-0.3), Celsius::new(110.0)));

    let mut rng = StdRng::seed_from_u64(62);
    let mut chip = Chip::commercial_40nm(ChipId::new(2), &mut rng);
    let mut wire = Electromigration::new();

    for _ in 0..60 {
        chip.advance(RoMode::Static, active.env(), Hours::new(24.0).into());
        wire.advance(active, Hours::new(24.0).into());
        chip.advance(RoMode::Sleep, heal.env(), Hours::new(6.0).into());
        wire.advance(heal, Hours::new(6.0).into());
    }
    let em_after_schedule = wire.resistance_drift();
    assert!(em_after_schedule.get() > 0.0);

    // A month of pure rejuvenation:
    let before_bti = chip.true_cut_delay();
    chip.advance(RoMode::Sleep, heal.env(), Hours::new(720.0).into());
    wire.advance(heal, Hours::new(720.0).into());
    assert!(chip.true_cut_delay() < before_bti, "BTI healed further");
    assert_eq!(wire.resistance_drift(), em_after_schedule, "EM did not");
}

#[test]
fn odometer_survey_and_cut_array_agree_on_aging() {
    // Place an odometer and a survey array on the same corner and age
    // them identically: both sensors must report aging of the same order.
    let mut rng = StdRng::seed_from_u64(63);
    let family = Family::commercial_40nm();
    let corner = Millivolts::new(5.0);
    let mut odometer = Odometer::sample(&family, corner, &mut rng);
    let mut array = CutArray::sample(&family, corner, 2, 2, &mut rng);

    let hot = Environment::new(Volts::new(1.2), Celsius::new(110.0));
    let fresh: Vec<f64> = array
        .locations()
        .map(|l| array.true_delay_at(l).unwrap().get())
        .collect();
    odometer.advance(RoMode::Static, hot, Hours::new(24.0).into());
    array.advance(RoMode::Static, hot, Hours::new(24.0).into());

    let sensed = odometer.read().get();
    let mean_true: f64 = array
        .locations()
        .zip(&fresh)
        .map(|(l, f)| (array.true_delay_at(l).unwrap().get() - f) / f)
        .sum::<f64>()
        / 4.0;
    assert!(
        (sensed - mean_true).abs() < 0.01,
        "odometer {sensed:.4} vs survey mean {mean_true:.4}"
    );
}

#[test]
fn reactive_closed_loop_and_tdp_capped_multicore_compose() {
    // A reactive, sensor-driven chip controller...
    let mut rng = StdRng::seed_from_u64(64);
    let mut chip = Chip::commercial_40nm(ChipId::new(3), &mut rng);
    let mut odometer = Odometer::sample(
        &Family::commercial_40nm(),
        Millivolts::new(0.0),
        &mut rng,
    );
    let mut policy = ReactivePolicy::new(
        Fraction::new(0.3),
        RejuvenationTechnique::Combined,
        Hours::new(6.0).into(),
    );
    let result = run_closed_loop(
        &mut policy,
        &mut chip,
        &mut odometer,
        &ClosedLoopConfig {
            active_env: Environment::new(Volts::new(1.2), Celsius::new(110.0)),
            sensor_margin: Fraction::new(0.05),
            horizon: Seconds::new(7.0 * 86_400.0),
            step: Hours::new(2.0).into(),
        },
    );
    assert!(result.sleep_events > 0);

    // ...and a TDP-constrained multicore lifetime race, in one scenario.
    let config = SimConfig {
        margin_mv: Millivolts::new(40.0),
        tdp_watts: Some(60.0),
        step: Hours::new(2.0).into(),
        ..SimConfig::default()
    };
    let horizon = Seconds::new(90.0 * 86_400.0);
    let naive = estimate_lifetime(
        config.clone(),
        Box::new(NaiveGating),
        Workload::constant(8),
        horizon,
    );
    let rotate = estimate_lifetime(
        config,
        Box::new(CircadianRotation::paper_default()),
        Workload::constant(8),
        horizon,
    );
    assert!(
        extension_factor(&naive, &rotate) >= 1.0,
        "healing never shortens life: {} vs {}",
        naive.lifetime_days(),
        rotate.lifetime_days()
    );
}

#[test]
fn metric_stats_summarise_repeated_closed_loops() {
    // The study tooling composes with any experiment: summarise the final
    // shift of repeated closed-loop runs.
    let shifts: Vec<f64> = (0..5)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let mut chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
            let mut odometer = Odometer::sample(
                &Family::commercial_40nm(),
                Millivolts::new(0.0),
                &mut rng,
            );
            let mut policy = ReactivePolicy::new(
                Fraction::new(0.4),
                RejuvenationTechnique::Combined,
                Hours::new(6.0).into(),
            );
            run_closed_loop(
                &mut policy,
                &mut chip,
                &mut odometer,
                &ClosedLoopConfig {
                    active_env: Environment::new(Volts::new(1.2), Celsius::new(110.0)),
                    sensor_margin: Fraction::new(0.05),
                    horizon: Seconds::new(5.0 * 86_400.0),
                    step: Hours::new(4.0).into(),
                },
            )
            .final_shift
            .get()
        })
        .collect();
    let stats = MetricStats::from_samples(&shifts).unwrap();
    assert!(stats.mean > 0.0);
    assert!(stats.std_dev > 0.0, "populations differ");
    assert!(stats.min <= stats.mean && stats.mean <= stats.max);
}
