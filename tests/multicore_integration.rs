//! Cross-crate integration of the §6.2 multi-core application: thermal
//! coupling feeding the BTI engines through the schedulers.

use selfheal_multicore::scheduler::{
    AlwaysOn, CircadianRotation, HeaterAware, NaiveGating, Scheduler,
};
use selfheal_multicore::sim::{MulticoreSim, SimConfig, SystemReport};
use selfheal_multicore::thermal::ThermalGrid;
use selfheal_multicore::workload::Workload;
use selfheal_multicore::{CoreId, Floorplan};
use selfheal_units::{Hours, Millivolts, Seconds, Volts};

fn race(scheduler: Box<dyn Scheduler>, workload: Workload, days: f64) -> SystemReport {
    MulticoreSim::new(SimConfig::default(), scheduler, workload).run_days(days)
}

#[test]
fn scheduler_ranking_is_stable_under_constant_demand() {
    let days = 60.0;
    let on = race(Box::new(AlwaysOn), Workload::constant(6), days);
    let naive = race(Box::new(NaiveGating), Workload::constant(6), days);
    let rotate = race(
        Box::new(CircadianRotation::paper_default()),
        Workload::constant(6),
        days,
    );
    let heater = race(Box::new(HeaterAware::paper_default()), Workload::constant(6), days);

    // Worst-core wear ordering: always-on is worst; the healing policies
    // beat naive gating.
    assert!(on.worst_delta_vth_mv >= naive.worst_delta_vth_mv);
    assert!(rotate.worst_delta_vth_mv < naive.worst_delta_vth_mv);
    assert!(heater.worst_delta_vth_mv < naive.worst_delta_vth_mv);

    // Demand-following schedulers all deliver identical service.
    assert!((naive.served_core_seconds - rotate.served_core_seconds).abs() < 1.0);
    assert!((naive.served_core_seconds - heater.served_core_seconds).abs() < 1.0);

    // Energy: always-on burns 8/6 of the demand-followers.
    let ratio = on.active_core_seconds / naive.active_core_seconds;
    assert!((ratio - 8.0 / 6.0).abs() < 0.01, "energy ratio {ratio}");
}

#[test]
fn rotation_equalises_wear_across_cores() {
    let rotate = race(
        Box::new(CircadianRotation::paper_default()),
        Workload::constant(6),
        60.0,
    );
    let naive = race(Box::new(NaiveGating), Workload::constant(6), 60.0);
    assert!(
        rotate.wear_spread_mv() < 0.5 * naive.wear_spread_mv(),
        "rotation spread {} vs naive spread {}",
        rotate.wear_spread_mv(),
        naive.wear_spread_mv()
    );
}

#[test]
fn neighbour_heating_accelerates_sleep_recovery() {
    // Direct §6.2 check via the thermal grid: a sleeping core's recovery
    // environment is hotter when its neighbours are active, and the
    // hotter sleep heals faster (verified at the BTI level elsewhere;
    // here we check the coupling plumbs through to temperatures).
    let plan = Floorplan::eight_core();
    let grid = ThermalGrid::default_package(plan.clone());

    let all_idle = [0.0; 8];
    let neighbours_active = [10.0, 10.0, 0.0, 10.0, 10.0, 10.0, 10.0, 10.0];
    let idle_t = grid.temperature_of(CoreId::new(2), &all_idle);
    let heated_t = grid.temperature_of(CoreId::new(2), &neighbours_active);
    assert!(heated_t.get() > idle_t.get() + 20.0, "{idle_t} → {heated_t}");
}

#[test]
fn sim_step_and_run_days_agree() {
    let mk = || {
        MulticoreSim::new(
            SimConfig::default(),
            Box::new(CircadianRotation::paper_default()),
            Workload::constant(6),
        )
    };
    let mut stepped = mk();
    let steps_per_day = (24.0 * 3600.0 / SimConfig::default().step.get()) as usize;
    for _ in 0..steps_per_day * 5 {
        stepped.step();
    }
    let mut ran = mk();
    let report_ran = ran.run_days(5.0);
    let report_stepped = stepped.report();
    assert_eq!(report_stepped.per_core_mv, report_ran.per_core_mv);
    assert!((stepped.now().get() - ran.now().get()).abs() < 1e-9);
}

#[test]
fn zero_demand_lets_the_whole_die_heal() {
    let mut sim = MulticoreSim::new(
        SimConfig::default(),
        Box::new(CircadianRotation::paper_default()),
        Workload::constant(8),
    );
    // Age the die fully loaded for a month...
    let loaded = sim.run_days(30.0);
    assert!(loaded.worst_delta_vth_mv > Millivolts::new(5.0));

    // ...then switch to an idle weekend: every core sleeps at −0.3 V.
    let mut idle = MulticoreSim::new(
        SimConfig::default(),
        Box::new(CircadianRotation::paper_default()),
        Workload::constant(0),
    );
    // Transplant the wear by re-aging an identical sim (the sim owns its
    // cores; easiest is to compare healing rate on the reports).
    let before = idle.run_days(0.0);
    assert_eq!(before.worst_delta_vth_mv, Millivolts::ZERO, "fresh die");
    // A constant-0 workload leaves every core asleep; wear must stay 0.
    let after = idle.run_days(2.0);
    assert_eq!(after.worst_delta_vth_mv, Millivolts::ZERO);
    assert_eq!(after.active_core_seconds, 0.0);
}

#[test]
fn custom_floorplans_flow_through_the_stack() {
    let config = SimConfig {
        floorplan: Floorplan::grid(4, 4),
        step: Hours::new(2.0).into(),
        ..SimConfig::default()
    };
    let mut sim = MulticoreSim::new(
        config,
        Box::new(HeaterAware::new(Volts::new(-0.3))),
        Workload::diurnal(4, 16),
    );
    let report = sim.run_days(10.0);
    assert_eq!(report.per_core_mv.len(), 16);
    assert!(report.worst_delta_vth_mv > Millivolts::ZERO);
    assert!(sim.now() >= Seconds::new(10.0 * 86_400.0));
}
