//! Cross-engine consistency: the analytic first-order model and the
//! stochastic trapping/detrapping engine must agree on every *qualitative*
//! ordering (they are independent implementations of the same physics),
//! and on magnitudes to within calibration tolerance.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_bti::analytic::AnalyticBti;
use selfheal_bti::td::{TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Hours, Seconds, Volts};

fn env(v: f64, t: f64) -> Environment {
    Environment::new(Volts::new(v), Celsius::new(t))
}

/// Mean stochastic ΔVth over a small device population after a schedule.
fn stochastic_mean(schedule: &[(DeviceCondition, Seconds)], n: u64) -> f64 {
    let params = TrapEnsembleParams::default();
    let mut total = 0.0;
    for seed in 0..n {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut device = TrapEnsemble::sample(&params, &mut rng);
        for (cond, dt) in schedule {
            device.advance(*cond, *dt);
        }
        total += device.delta_vth().get();
    }
    total / n as f64
}

fn analytic(schedule: &[(DeviceCondition, Seconds)]) -> f64 {
    let mut model = AnalyticBti::default();
    for (cond, dt) in schedule {
        model.advance(*cond, *dt);
    }
    model.delta_vth().get()
}

fn day_stress() -> (DeviceCondition, Seconds) {
    (
        DeviceCondition::dc_stress(env(1.2, 110.0)),
        Hours::new(24.0).into(),
    )
}

#[test]
fn engines_agree_on_24h_stress_magnitude() {
    let schedule = [day_stress()];
    let stochastic = stochastic_mean(&schedule, 40);
    let model = analytic(&schedule);
    let rel = (stochastic - model).abs() / stochastic;
    assert!(
        rel < 0.25,
        "24 h shift: stochastic {stochastic:.1} mV vs analytic {model:.1} mV"
    );
}

#[test]
fn engines_agree_on_recovery_ordering() {
    // Recovered fraction after 6 h of sleep, for each of the paper's four
    // conditions — both engines must produce the same ranking.
    let conditions = [
        ("passive", env(0.0, 20.0)),
        ("neg", env(-0.3, 20.0)),
        ("hot", env(0.0, 110.0)),
        ("both", env(-0.3, 110.0)),
    ];
    let mut stochastic_f = Vec::new();
    let mut analytic_f = Vec::new();
    for (_, sleep_env) in conditions {
        let stress = [day_stress()];
        let full = [
            day_stress(),
            (DeviceCondition::recovery(sleep_env), Hours::new(6.0).into()),
        ];
        let s_aged = stochastic_mean(&stress, 30);
        let s_healed = stochastic_mean(&full, 30);
        stochastic_f.push((s_aged - s_healed) / s_aged);

        let a_aged = analytic(&stress);
        let a_healed = analytic(&full);
        analytic_f.push((a_aged - a_healed) / a_aged);
    }
    // Same strict ordering: passive < {neg, hot} < both.
    for f in [&stochastic_f, &analytic_f] {
        assert!(f[0] < f[1] && f[0] < f[2], "passive weakest: {f:?}");
        assert!(f[3] > f[1] && f[3] > f[2], "combined strongest: {f:?}");
    }
    // And comparable magnitudes for the headline condition.
    assert!(
        (stochastic_f[3] - analytic_f[3]).abs() < 0.15,
        "combined recovery: stochastic {} vs analytic {}",
        stochastic_f[3],
        analytic_f[3]
    );
}

#[test]
fn engines_agree_on_temperature_ordering_of_stress() {
    for engine in ["stochastic", "analytic"] {
        let run = |t: f64| {
            let schedule = [(
                DeviceCondition::dc_stress(env(1.2, t)),
                Hours::new(24.0).into(),
            )];
            if engine == "stochastic" {
                stochastic_mean(&schedule, 20)
            } else {
                analytic(&schedule)
            }
        };
        let cold = run(60.0);
        let warm = run(100.0);
        let hot = run(110.0);
        assert!(
            cold < warm && warm < hot,
            "{engine}: {cold:.1} / {warm:.1} / {hot:.1} mV"
        );
    }
}

#[test]
fn engines_agree_on_ac_relief() {
    let ac = [(
        DeviceCondition::ac_stress(env(1.2, 110.0)),
        Hours::new(24.0).into(),
    )];
    let dc = [day_stress()];
    let s_ratio = stochastic_mean(&ac, 30) / stochastic_mean(&dc, 30);
    let a_ratio = analytic(&ac) / analytic(&dc);
    assert!(
        (s_ratio - a_ratio).abs() < 0.12,
        "per-device AC/DC: stochastic {s_ratio:.2} vs analytic {a_ratio:.2}"
    );
    assert!(s_ratio > 0.15 && s_ratio < 0.4, "both in the calibrated band");
}

#[test]
fn engines_agree_that_recovery_saturates() {
    // Doubling the sleep from 6 h to 12 h must help, but by much less
    // than 2× — in both engines.
    for hours in [&[6.0, 12.0]] {
        let frac = |engine: &str, sleep_h: f64| {
            let stress = [day_stress()];
            let full = [
                day_stress(),
                (
                    DeviceCondition::recovery(env(-0.3, 110.0)),
                    Seconds::new(sleep_h * 3600.0),
                ),
            ];
            let (aged, healed) = if engine == "stochastic" {
                (stochastic_mean(&stress, 25), stochastic_mean(&full, 25))
            } else {
                (analytic(&stress), analytic(&full))
            };
            (aged - healed) / aged
        };
        for engine in ["stochastic", "analytic"] {
            let short = frac(engine, hours[0]);
            let long = frac(engine, hours[1]);
            assert!(long > short, "{engine}: more sleep heals more");
            assert!(
                long < 1.5 * short,
                "{engine}: strongly sub-linear ({short:.2} → {long:.2})"
            );
        }
    }
}
