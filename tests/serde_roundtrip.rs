//! Serde round-trips for the data-structure types (C-SERDE): campaign
//! outputs must be exportable and the simulation state checkpointable.
//!
//! **Offline note:** these tests are `#[ignore]`d while the workspace
//! builds against the no-op serde stand-in in `vendor/serde` (the build
//! environment has no registry access). They compile against the stub
//! signatures and run again as soon as real `serde`/`serde_json` are
//! restored in the workspace manifest.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_bti::analytic::AnalyticBti;
use selfheal_bti::td::{TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_fpga::{Chip, ChipId, RoMode};
use selfheal_testbench::cases;
use selfheal_units::{Celsius, Hours, Ratio, Seconds, Volts};

fn hot() -> Environment {
    Environment::new(Volts::new(1.2), Celsius::new(110.0))
}

#[test]
#[ignore = "serde is stubbed for offline builds (vendor/serde); restore registry serde/serde_json to run real round-trips"]
fn units_round_trip_as_transparent_numbers() {
    let v = Volts::new(-0.3);
    let json = serde_json::to_string(&v).unwrap();
    assert_eq!(json, "-0.3", "newtype is serde(transparent)");
    assert_eq!(serde_json::from_str::<Volts>(&json).unwrap(), v);

    let alpha = Ratio::PAPER_ALPHA;
    let json = serde_json::to_string(&alpha).unwrap();
    assert_eq!(serde_json::from_str::<Ratio>(&json).unwrap(), alpha);

    let t = Seconds::new(86_400.0);
    let back: Seconds = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(back, t);
}

#[test]
#[ignore = "serde is stubbed for offline builds (vendor/serde); restore registry serde/serde_json to run real round-trips"]
fn aged_trap_ensemble_checkpoints_exactly() {
    let mut rng = StdRng::seed_from_u64(21);
    let mut device = TrapEnsemble::sample(&TrapEnsembleParams::default(), &mut rng);
    device.advance(DeviceCondition::dc_stress(hot()), Hours::new(24.0).into());

    let json = serde_json::to_string(&device).unwrap();
    let mut restored: TrapEnsemble = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, device);

    // A restored checkpoint must continue identically.
    let heal = DeviceCondition::recovery(Environment::new(Volts::new(-0.3), Celsius::new(110.0)));
    device.advance(heal, Hours::new(6.0).into());
    restored.advance(heal, Hours::new(6.0).into());
    assert_eq!(restored.delta_vth(), device.delta_vth());
}

#[test]
#[ignore = "serde is stubbed for offline builds (vendor/serde); restore registry serde/serde_json to run real round-trips"]
fn aged_chip_checkpoints_exactly() {
    let mut rng = StdRng::seed_from_u64(22);
    let mut chip = Chip::commercial_40nm(ChipId::new(4), &mut rng);
    chip.advance(RoMode::Static, hot(), Hours::new(8.0).into());

    let json = serde_json::to_string(&chip).unwrap();
    let restored: Chip = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, chip);
    assert_eq!(restored.true_cut_delay(), chip.true_cut_delay());
    assert_eq!(restored.fresh_cut_delay(), chip.fresh_cut_delay());
}

#[test]
#[ignore = "serde is stubbed for offline builds (vendor/serde); restore registry serde/serde_json to run real round-trips"]
fn analytic_model_checkpoints_exactly() {
    let mut model = AnalyticBti::default();
    model.advance(DeviceCondition::dc_stress(hot()), Hours::new(24.0).into());
    let json = serde_json::to_string(&model).unwrap();
    let restored: AnalyticBti = serde_json::from_str(&json).unwrap();
    assert_eq!(restored, model);
}

#[test]
#[ignore = "serde is stubbed for offline builds (vendor/serde); restore registry serde/serde_json to run real round-trips"]
fn table1_serialises_for_reports() {
    let table = cases::table1();
    let json = serde_json::to_string(&table).unwrap();
    assert!(json.contains("AR110N6"));
    assert!(json.contains("-0.3"));
}

#[test]
#[ignore = "serde is stubbed for offline builds (vendor/serde); restore registry serde/serde_json to run real round-trips"]
fn campaign_outputs_serialise_for_archival() {
    use selfheal::experiment::PaperExperiment;
    let outputs = PaperExperiment::quick(3).run();
    let json = serde_json::to_string(&outputs).unwrap();
    // Spot-check the structure a downstream notebook would read.
    assert!(json.contains("\"stresses\""));
    assert!(json.contains("\"recoveries\""));
    assert!(json.contains("AS110AC24"));
    assert!(json.len() > 10_000, "full series are included");
}
