//! Tier-1 static-analysis gate.
//!
//! Runs the `selfheal-analyzer` self-check as part of the ordinary
//! workspace test suite: the repository's own sources must produce no
//! findings beyond the checked-in `analyzer-baseline.txt` ratchet. This
//! is the same verdict `cargo analyzer check` computes, so CI and local
//! `cargo test` agree with the CLI.

use std::path::Path;

use selfheal_analyzer::baseline;

#[test]
fn workspace_passes_its_own_static_analysis() {
    // The root package's manifest dir *is* the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings =
        selfheal_analyzer::analyze_workspace(root).expect("workspace sources must be readable");

    let baseline_path = root.join("analyzer-baseline.txt");
    let allowed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text).expect("checked-in baseline must parse"),
        Err(_) => baseline::Baseline::new(),
    };
    let verdict = baseline::check(&baseline::summarize(&findings), &allowed);

    assert!(
        verdict.regressions.is_empty(),
        "new static-analysis findings — fix them or extend analyzer-baseline.txt deliberately:\n{}\nregressed (lint, file, current > allowed): {:?}",
        findings
            .iter()
            .map(selfheal_analyzer::Finding::render_text)
            .collect::<Vec<_>>()
            .join("\n"),
        verdict.regressions,
    );
    assert!(
        verdict.stale.is_empty(),
        "baseline entries no longer backed by findings — re-run `cargo analyzer check --update-baseline`: {:?}",
        verdict.stale,
    );
}
