//! Tier-1 static-analysis gate.
//!
//! Runs the `selfheal-analyzer` self-check as part of the ordinary
//! workspace test suite: the repository's own sources must produce no
//! findings beyond the checked-in `analyzer-baseline.txt` ratchet. This
//! is the same verdict `cargo analyzer check` computes, so CI and local
//! `cargo test` agree with the CLI.

use std::path::Path;

use selfheal_analyzer::baseline;
use selfheal_analyzer::graph::RootKind;

#[test]
fn workspace_passes_its_own_static_analysis() {
    // The root package's manifest dir *is* the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings =
        selfheal_analyzer::analyze_workspace(root).expect("workspace sources must be readable");

    let baseline_path = root.join("analyzer-baseline.txt");
    let allowed = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text).expect("checked-in baseline must parse"),
        Err(_) => baseline::Baseline::new(),
    };
    let verdict = baseline::check(&baseline::summarize(&findings), &allowed);

    assert!(
        verdict.regressions.is_empty(),
        "new static-analysis findings — fix them or extend analyzer-baseline.txt deliberately:\n{}\nregressed (lint, file, current > allowed): {:?}",
        findings
            .iter()
            .map(selfheal_analyzer::Finding::render_text)
            .collect::<Vec<_>>()
            .join("\n"),
        verdict.regressions,
    );
    assert!(
        verdict.stale.is_empty(),
        "baseline entries no longer backed by findings — re-run `cargo analyzer check --update-baseline`: {:?}",
        verdict.stale,
    );
}

#[test]
fn deterministic_roots_are_closed_under_the_purity_analysis() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let flow = selfheal_analyzer::workspace_dataflow(root)
        .expect("workspace sources must be readable");

    // The dataflow pass must actually see the workspace: at least one
    // node per crate, and a non-trivial root set anchored by the
    // trap-kinetics kernel plus par/cache-derived roots.
    let crates: std::collections::BTreeSet<&str> = flow
        .graph
        .nodes
        .iter()
        .map(|n| n.crate_name.as_str())
        .collect();
    assert!(crates.len() >= 10, "only saw crates: {crates:?}");
    assert!(!flow.graph.roots.is_empty(), "no deterministic roots derived");
    let kinds: std::collections::BTreeSet<RootKind> =
        flow.graph.roots.values().copied().collect();
    assert!(
        kinds.contains(&RootKind::Kernel),
        "TrapBank::advance_all must be a root: {kinds:?}"
    );
    assert!(
        kinds.contains(&RootKind::ParClosure) && kinds.contains(&RootKind::CacheFeed),
        "par-closure and cache-feed roots must both be derived: {kinds:?}"
    );

    // Closure: every deterministic root's *effective* taint is empty —
    // each sink on a root-reachable path is either fixed or carries a
    // justified `// analyzer: trust(...)` annotation. A non-empty taint
    // here is the same defect `cargo analyzer check` reports as a
    // `tainted-root` finding, pinned as a plain test so `cargo test`
    // alone catches it.
    for (&idx, kind) in &flow.graph.roots {
        let node = &flow.graph.nodes[idx];
        assert_eq!(
            flow.effective[idx],
            0,
            "root `{}` ({}, {}:{}) has effective taint {:?}",
            node.qualified,
            kind.describe(),
            node.file.display(),
            node.line,
            selfheal_analyzer::purity::taint_names(flow.effective[idx]),
        );
    }

    // And the lock graph is acyclic (zero lock-order findings).
    assert!(
        flow.findings.is_empty(),
        "dataflow findings must be empty: {:#?}",
        flow.findings
    );
}
