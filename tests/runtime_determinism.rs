//! The determinism gate for `selfheal-runtime`: parallel execution must
//! be *bit-for-bit* identical to serial execution at any worker count.
//!
//! Two pillars:
//!
//! 1. **`par_map` == serial** on the Fig. 5 ensemble workload (sample a
//!    trap population, stress it a simulated day) for pools of 1, 2 and
//!    8 workers — a property test over seeds and population sizes.
//! 2. **Seed splitting is pinned**: the per-index RNG streams derived by
//!    [`SeedSequence`] are fixed constants. If these move, every cached
//!    result and every recorded manifest value silently changes meaning,
//!    so the constants are locked here as a compatibility contract.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use selfheal_bti::td::{sample_population, TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_runtime::{Pool, SeedSequence};
use selfheal_units::{Celsius, Hours, Seconds, Volts};

/// The Fig. 5 unit of work: sample device `i` from `(seed, i)` and run a
/// 24 h DC stress at 110 °C. Returns the full ensemble state, so the
/// equality checks below compare every trap, not a summary statistic.
fn stressed_device(seeds: &SeedSequence, i: u64) -> TrapEnsemble {
    let params = TrapEnsembleParams::default();
    let mut device = TrapEnsemble::sample(&params, &mut seeds.rng(i));
    let stress =
        DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)));
    let dt: Seconds = Hours::new(24.0).into();
    device.advance(stress, dt);
    device
}

fn serial_reference(seed: u64, count: usize) -> Vec<TrapEnsemble> {
    let seeds = SeedSequence::new(seed);
    (0..count as u64).map(|i| stressed_device(&seeds, i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn par_map_matches_serial_at_every_worker_count(seed in 0u64..10_000, count in 1usize..48) {
        let expected = serial_reference(seed, count);
        for workers in [1usize, 2, 8] {
            let pool = Pool::new(workers);
            let seeds = SeedSequence::new(seed);
            let parallel = pool.par_map_indexed(vec![(); count], move |i, ()| {
                stressed_device(&seeds, i as u64)
            });
            prop_assert_eq!(
                &expected,
                &parallel,
                "workers={} seed={} count={}",
                workers,
                seed,
                count
            );
        }
    }

    #[test]
    fn population_helper_is_worker_count_invariant(seed in 0u64..10_000, count in 1usize..32) {
        // The bti-level helper routes through the *global* pool; its
        // contract is the same purity in (params, count, seed).
        let params = TrapEnsembleParams::default();
        let a = sample_population(&params, count, seed);
        let b = sample_population(&params, count, seed);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn par_matches_serial_with_sampling_enabled() {
    // The streaming sampler must be a pure observer: with metrics
    // recording on and the sampler thread snapshotting the registry at an
    // aggressive cadence (plus live pool probes firing), parallel results
    // stay bit-for-bit identical to serial.
    use std::time::Duration;
    let expected = serial_reference(2014, 24);
    selfheal_telemetry::metrics::set_enabled(true);
    let sampler = selfheal_telemetry::Sampler::start(selfheal_telemetry::SamplerConfig {
        interval: Some(Duration::from_millis(1)),
        jsonl: None,
        status: None,
    })
    .expect("sampler starts");
    for workers in [2usize, 8] {
        let pool = Pool::new(workers);
        let seeds = SeedSequence::new(2014);
        let parallel =
            pool.par_map_indexed(vec![(); 24], move |i, ()| stressed_device(&seeds, i as u64));
        assert_eq!(expected, parallel, "workers={workers} with sampler running");
    }
    sampler.stop();
}

#[test]
fn derived_streams_are_pinned() {
    // Compatibility contract: these constants must never change. They
    // pin the SplitMix64 derivation (golden-gamma index spacing) that
    // every parallel sampling site builds its RNG streams from.
    let seeds = SeedSequence::new(2014);
    assert_eq!(seeds.derive(0), 0x2fba_78c1_bf16_9c2e);
    assert_eq!(seeds.derive(1), 0xcbff_b808_8df4_fa89);
    assert_eq!(seeds.derive(2), 0xf43c_e23a_0b3a_20d8);
    assert_eq!(SeedSequence::new(2015).derive(0), 0x9f70_7a87_4442_f0c1);

    // Streams separate: sibling indices and sibling bases never collide.
    assert_ne!(seeds.derive(0), seeds.derive(1));
    assert_ne!(seeds.derive(0), SeedSequence::new(2015).derive(0));

    // The first draws of each derived StdRng stream are themselves
    // stable — the RNG consumes the derived value as its seed.
    let mut s0 = seeds.rng(0);
    let mut s0_again = StdRng::seed_from_u64(seeds.derive(0));
    assert_eq!(s0.next_u64(), s0_again.next_u64());
}

#[test]
fn child_sequences_branch_independently() {
    let root = SeedSequence::new(7);
    let child_a = root.child(0);
    let child_b = root.child(1);
    // A child's stream differs from its sibling's and from the parent's
    // stream at the same index.
    assert_ne!(child_a.derive(0), child_b.derive(0));
    assert_ne!(child_a.derive(0), root.derive(0));
    // Rebuilding the same child reproduces the same streams.
    assert_eq!(root.child(0).derive(5), child_a.derive(5));
}

#[test]
fn par_chunks_reassembles_in_input_order() {
    let pool = Pool::new(4);
    let items: Vec<u64> = (0..257).collect();
    let doubled = pool.par_chunks(items.clone(), 10, |_start, chunk| {
        chunk.into_iter().map(|x| x * 2).collect()
    });
    let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
    assert_eq!(doubled, expected);
}
