//! Property-based tests of the FPGA substrate: the stress rule, the two
//! §3.2 hypotheses for *arbitrary* LUT configurations, and the
//! measurement pipeline.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_bti::Environment;
use selfheal_fpga::{Chip, ChipId, Family, Lut, LutConfig, RoMode};
use selfheal_units::{Celsius, Hours, Millivolts, Seconds, Volts};

fn arb_config() -> impl Strategy<Value = LutConfig> {
    any::<[bool; 4]>().prop_map(LutConfig::new)
}

fn lut_with(config: LutConfig, seed: u64) -> Lut {
    let mut rng = StdRng::seed_from_u64(seed);
    let family = Family::commercial_40nm().without_variation();
    Lut::sample(config, &family, Millivolts::new(0.0), &mut rng)
}

fn hot() -> Environment {
    Environment::new(Volts::new(1.2), Celsius::new(110.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lut_evaluates_its_truth_table(config in arb_config(), in0: bool, in1: bool) {
        let lut = lut_with(config, 1);
        let expected = config.evaluate(in0, in1);
        prop_assert_eq!(lut.evaluate(in0, in1), expected);
    }

    #[test]
    fn stress_set_is_deterministic_and_input_dependent(config in arb_config(), in0: bool, in1: bool) {
        // Hypothesis 1: with inputs fixed, the stressed set is fixed.
        let lut = lut_with(config, 2);
        let a = lut.stressed_indices(in0, in1);
        let b = lut.stressed_indices(in0, in1);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn exactly_one_buffer_device_is_stressed(config in arb_config(), in0: bool, in1: bool) {
        // The output buffer always parks at a definite level, so exactly
        // one of M7 (NMOS, index 6) / M8 (PMOS, index 7) is stressed.
        let lut = lut_with(config, 3);
        let stressed = lut.stressed_indices(in0, in1);
        let buffer_count = stressed.iter().filter(|&&i| i == 6 || i == 7).count();
        prop_assert_eq!(buffer_count, 1);
        let internal = lut.evaluate(in0, in1);
        if internal {
            prop_assert!(stressed.contains(&6), "high node stresses the NMOS");
        } else {
            prop_assert!(stressed.contains(&7), "low node stresses the PMOS");
        }
    }

    #[test]
    fn pass_devices_only_stressed_with_gate_high(config in arb_config(), in0: bool, in1: bool) {
        // Physical rule check: a stressed pass device must have its gate
        // driven high by the current inputs.
        let lut = lut_with(config, 4);
        let gate_high = [in0, !in0, in0, !in0, in1, !in1];
        for idx in lut.stressed_indices(in0, in1) {
            if idx < 6 {
                prop_assert!(gate_high[idx], "M{} stressed with gate low", idx + 1);
            }
        }
    }

    #[test]
    fn hypothesis_2_fresh_devices_stay_fresh(config in arb_config(), in0: bool, in1: bool, sleep_h in 1.0f64..50.0) {
        // Recovery "has no effect on 'fresh' (never aged) transistors".
        let mut lut = lut_with(config, 5);
        lut.advance_static(in0, in1, hot(), Hours::new(24.0).into());
        let aged_before: Vec<bool> = lut.devices().iter().map(|d| d.is_aged()).collect();
        lut.advance_sleep(
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Seconds::new(sleep_h * 3600.0),
        );
        for (device, was_aged) in lut.devices().iter().zip(aged_before) {
            if !was_aged {
                prop_assert!(!device.is_aged(), "{} aged during sleep", device.name());
            }
        }
    }

    #[test]
    fn path_delay_is_positive_and_grows_under_stress(config in arb_config(), in0: bool, in1: bool) {
        let mut lut = lut_with(config, 6);
        let vdd = Volts::new(1.2);
        let fresh = lut.path_delay(vdd, in0, in1);
        prop_assert!(fresh.get() > 0.0);
        lut.advance_static(in0, in1, hot(), Hours::new(24.0).into());
        let aged = lut.path_delay(vdd, in0, in1);
        prop_assert!(aged >= fresh, "stress can only slow a path");
    }

    #[test]
    fn lower_supply_increases_delay(config in arb_config(), droop in 0.0f64..0.3) {
        let lut = lut_with(config, 7);
        let nominal = lut.switching_delay(Volts::new(1.2), true);
        let drooped = lut.switching_delay(Volts::new(1.2 - droop), true);
        prop_assert!(drooped >= nominal);
    }
}

proptest! {
    // Chip-level properties are costlier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn measurement_error_is_bounded_by_counter_resolution(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
        let m = chip.measure(&mut rng);
        let rel = (m.cut_delay.get() - chip.true_cut_delay().get()).abs()
            / chip.true_cut_delay().get();
        // ±5 counts on ≈ 5 500, averaged 8×.
        prop_assert!(rel < 1.5e-3, "relative error {rel}");
    }

    #[test]
    fn stress_heal_cycle_is_bounded(seed in 0u64..10_000, stress_h in 4.0f64..48.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chip = Chip::commercial_40nm(ChipId::new(2), &mut rng);
        let fresh = chip.true_cut_delay();
        chip.advance(
            RoMode::Static,
            Environment::new(Volts::new(1.2), Celsius::new(110.0)),
            Seconds::new(stress_h * 3600.0),
        );
        let aged = chip.true_cut_delay();
        chip.advance(
            RoMode::Sleep,
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Seconds::new(stress_h * 900.0), // α = 4
        );
        let healed = chip.true_cut_delay();
        prop_assert!(aged > fresh);
        prop_assert!(healed < aged, "healing helps");
        prop_assert!(healed >= fresh, "healing cannot beat fresh");
    }
}
