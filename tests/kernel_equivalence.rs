//! The kernel-equivalence gate for `selfheal_bti::td::kernel`: the SoA
//! [`TrapBank`] fast path must be *bit-for-bit* identical to the per-trap
//! [`Trap::advance`] scalar path — same occupancies to the last ulp, same
//! ordered reductions — under every phase kind, every worker count, and
//! the full dynamic range of trap time constants (including the
//! frozen-trap `tau = INFINITY` branch).
//!
//! If any assertion here moves, the kernel has drifted from the physics
//! it was hoisted out of; bump [`selfheal_bti::td::KERNEL_VERSION`] only
//! for *representation* changes that keep these bits pinned.

use proptest::prelude::*;
use selfheal_bti::td::{
    advance_population, sample_population, PhaseRates, Trap, TrapBank, TrapEnsemble,
    TrapEnsembleParams, LANES,
};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_runtime::{set_global_threads, SeedSequence};
use selfheal_units::{Celsius, Hours, Millivolts, Seconds, Volts};

/// The paper's phase vocabulary: DC stress, accelerated recovery, AC
/// stress, passive room-temperature recovery, and a zero-length step
/// (the frozen-time edge the kernel must treat as a no-op).
fn phase_sequence() -> Vec<(DeviceCondition, Seconds)> {
    let hot = Environment::new(Volts::new(1.2), Celsius::new(110.0));
    let heal = Environment::new(Volts::new(-0.3), Celsius::new(110.0));
    let room = Environment::new(Volts::new(0.0), Celsius::new(20.0));
    vec![
        (DeviceCondition::dc_stress(hot), Hours::new(24.0).into()),
        (DeviceCondition::recovery(heal), Hours::new(6.0).into()),
        (DeviceCondition::ac_stress(hot), Hours::new(24.0).into()),
        (DeviceCondition::recovery(room), Hours::new(6.0).into()),
        (DeviceCondition::dc_stress(hot), Seconds::new(0.0)),
    ]
}

/// Asserts that an ensemble (bank path) and a scalar trap vector carry
/// identical state and identical ordered reductions, to the bit.
fn assert_bit_identical(scalar: &[Trap], ensemble: &TrapEnsemble, context: &str) {
    assert_eq!(scalar.len(), ensemble.trap_count(), "{context}");
    for (i, (s, b)) in scalar.iter().zip(ensemble.iter()).enumerate() {
        assert_eq!(
            s.occupancy().to_bits(),
            b.occupancy().to_bits(),
            "{context}: trap {i} occupancy"
        );
    }
    // The fused single-pass reductions must reproduce the scalar
    // iterator sums exactly — both accumulate in trap index order.
    let delta: f64 = scalar.iter().map(|t| t.contribution().get()).sum();
    let permanent: f64 = scalar
        .iter()
        .filter(|t| t.is_permanent())
        .map(|t| t.contribution().get())
        .sum();
    let occupied: f64 = scalar.iter().map(Trap::occupancy).sum();
    assert_eq!(
        delta.to_bits(),
        ensemble.delta_vth().get().to_bits(),
        "{context}: delta_vth"
    );
    assert_eq!(
        permanent.to_bits(),
        ensemble.permanent_delta_vth().get().to_bits(),
        "{context}: permanent_delta_vth"
    );
    assert_eq!(
        occupied.to_bits(),
        ensemble.expected_occupied().to_bits(),
        "{context}: expected_occupied"
    );
}

#[test]
fn bank_matches_per_trap_advance_across_phase_sequence() {
    let seeds = SeedSequence::new(2014);
    let params = TrapEnsembleParams::default();
    let mut ensemble = TrapEnsemble::sample(&params, &mut seeds.rng(0));
    let mut scalar: Vec<Trap> = ensemble.iter().collect();
    assert_bit_identical(&scalar, &ensemble, "fresh");
    for (step, (cond, dt)) in phase_sequence().into_iter().enumerate() {
        for trap in &mut scalar {
            trap.advance(cond, dt);
        }
        ensemble.advance(cond, dt);
        assert_bit_identical(&scalar, &ensemble, &format!("after phase {step}"));
    }
}

#[test]
fn population_fanout_is_worker_count_invariant_bitwise() {
    let params = TrapEnsembleParams::default();
    let fresh = sample_population(&params, 12, 99);
    let sequence = phase_sequence();

    // Reference: every device's traps stepped one at a time through the
    // pre-kernel scalar entry point, on this thread.
    let reference: Vec<Vec<Trap>> = fresh
        .iter()
        .map(|device| {
            let mut traps: Vec<Trap> = device.iter().collect();
            for &(cond, dt) in &sequence {
                for trap in &mut traps {
                    trap.advance(cond, dt);
                }
            }
            traps
        })
        .collect();

    for workers in [1usize, 2, 8] {
        set_global_threads(workers);
        let mut devices = fresh.clone();
        for &(cond, dt) in &sequence {
            devices = advance_population(devices, cond, dt);
        }
        for (d, (device, traps)) in devices.iter().zip(&reference).enumerate() {
            for (i, (got, want)) in device.iter().zip(traps.iter()).enumerate() {
                assert_eq!(
                    got.occupancy().to_bits(),
                    want.occupancy().to_bits(),
                    "workers={workers} device={d} trap={i}"
                );
            }
        }
    }
}

/// A deterministic trap vector of exactly `n` traps: τ values cycle the
/// extreme grid and occupancies walk a golden-ratio lattice, so every
/// chunk of the bank mixes frozen, permanent and live traps.
fn traps_of_len(n: usize) -> Vec<Trap> {
    let grid = tau_grid();
    (0..n)
        .map(|i| {
            let (tau_c0, tau_e0, permanent) = grid[i % grid.len()];
            #[allow(clippy::cast_precision_loss)]
            let occupancy = (i as f64 * 0.618_033_988_749_895).fract();
            Trap::restore(
                Seconds::new(tau_c0),
                Seconds::new(tau_e0),
                Millivolts::new(0.35),
                permanent,
                occupancy,
            )
        })
        .collect()
}

/// The chunked kernel must be bit-exact at every chunk-boundary size:
/// one short of a full chunk (pure scalar tail), exactly one chunk, one
/// past it, and a large size with a ragged tail (10k + 3). Guards the
/// blocked-loop rewrite against any off-by-one between the lane blocks
/// and the tail.
#[test]
fn chunk_boundary_sizes_are_bit_exact() {
    for n in [LANES - 1, LANES, LANES + 1, 10_003] {
        let traps = traps_of_len(n);
        let mut scalar = traps.clone();
        let mut bank = TrapBank::from_traps(&traps);
        for (step, (cond, dt)) in phase_sequence().into_iter().enumerate() {
            for trap in &mut scalar {
                trap.advance(cond, dt);
            }
            let stats = bank.advance_all(&PhaseRates::for_condition(cond), dt);
            for (i, (want, got)) in scalar.iter().zip(bank.iter()).enumerate() {
                assert_eq!(
                    want.occupancy().to_bits(),
                    got.occupancy().to_bits(),
                    "size={n} phase={step} trap={i}"
                );
            }
            // The fused stats must still be the ordered iterator sum.
            let occupied: f64 = scalar.iter().map(Trap::occupancy).sum();
            assert_eq!(
                stats.occupied_after.to_bits(),
                occupied.to_bits(),
                "size={n} phase={step}: occupied_after"
            );
        }
    }
}

/// The τ grid deliberately spans denormal-adjacent to `f64::MAX` capture
/// constants and includes `tau_e0 = INFINITY` (a pre-frozen emitter), so
/// the sweep exercises overflow-free rate math, the `total_rate <= 0`
/// frozen branch, and the permanent-trap effective-τ substitution.
fn tau_grid() -> Vec<(f64, f64, bool)> {
    let mut grid = Vec::new();
    for &tau_c0 in &[1e-300, 1e-12, 1.0, 1e12, 1e300, f64::MAX] {
        for &tau_e0 in &[1e-12, 1.0, 1e12, f64::INFINITY] {
            for permanent in [false, true] {
                grid.push((tau_c0, tau_e0, permanent));
            }
        }
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn extreme_tau_sweep_is_bit_exact(
        occupancy in 0.0f64..=1.0,
        sampled_hours in 1e-9f64..1e6,
        zero_dt in 0usize..2,
        phase in 0usize..4,
    ) {
        let dt_hours = if zero_dt == 1 { 0.0 } else { sampled_hours };
        let (cond, _) = phase_sequence()[phase];
        let dt: Seconds = Hours::new(dt_hours).into();
        let rates = PhaseRates::for_condition(cond);

        let traps: Vec<Trap> = tau_grid()
            .into_iter()
            .map(|(tau_c0, tau_e0, permanent)| {
                Trap::restore(
                    Seconds::new(tau_c0),
                    Seconds::new(tau_e0),
                    Millivolts::new(0.35),
                    permanent,
                    occupancy,
                )
            })
            .collect();

        let mut scalar = traps.clone();
        for trap in &mut scalar {
            trap.advance(cond, dt);
        }

        let mut bank = TrapBank::from_traps(&traps);
        bank.advance_all(&rates, dt);

        for (i, (want, got)) in scalar.iter().zip(bank.iter()).enumerate() {
            prop_assert_eq!(
                want.occupancy().to_bits(),
                got.occupancy().to_bits(),
                "phase={} dt={} trap={} (tau_c0={}, tau_e0={}, permanent={})",
                phase,
                dt_hours,
                i,
                want.tau_c0().get(),
                want.tau_e0_raw().get(),
                want.is_permanent()
            );
            // Occupancy stays a probability even at the extremes.
            prop_assert!((0.0..=1.0).contains(&got.occupancy()));
        }
    }

    /// One batched traversal through a whole phase schedule must be
    /// bit-identical to issuing the phases one `advance_all` at a time —
    /// occupancies *and* the first-before/last-after stats — at any bank
    /// size (chunk-ragged included) and any batch (zero-dt phases
    /// included).
    #[test]
    fn batched_phase_advance_matches_sequential_bitwise(
        size in 0usize..200,
        schedule in proptest::collection::vec((0usize..5, 0usize..2), 1..6),
    ) {
        let all_phases = phase_sequence();
        let phases: Vec<(PhaseRates, Seconds)> = schedule
            .iter()
            .map(|&(phase, zero_dt)| {
                let (cond, dt) = all_phases[phase];
                let dt = if zero_dt == 1 { Seconds::new(0.0) } else { dt };
                (PhaseRates::for_condition(cond), dt)
            })
            .collect();

        let traps = traps_of_len(size);
        let mut sequential = TrapBank::from_traps(&traps);
        let mut batched = TrapBank::from_traps(&traps);

        let mut first_before = None;
        let mut last_after = None;
        for (rates, dt) in &phases {
            let stats = sequential.advance_all(rates, *dt);
            first_before.get_or_insert(stats.occupied_before);
            last_after = Some(stats.occupied_after);
        }
        let batch_stats = batched.advance_phases(&phases);

        for (i, (want, got)) in sequential.occupancies().iter().zip(batched.occupancies()).enumerate() {
            prop_assert_eq!(
                want.to_bits(),
                got.to_bits(),
                "size={} schedule={:?} trap={}",
                size, schedule, i
            );
        }
        prop_assert_eq!(
            batch_stats.occupied_before.to_bits(),
            first_before.unwrap_or(-0.0).to_bits(),
            "occupied_before must match the first sequential step"
        );
        prop_assert_eq!(
            batch_stats.occupied_after.to_bits(),
            last_after.unwrap_or(-0.0).to_bits(),
            "occupied_after must match the last sequential step"
        );
    }
}
