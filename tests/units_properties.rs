//! Property-based tests of the typed-quantity layer.

use proptest::prelude::*;
use selfheal_units::{
    Celsius, DutyCycle, Fraction, Hertz, Hours, Kelvin, Megahertz, Millivolts, Minutes,
    Nanoseconds, Percent, Ratio, Seconds, Volts,
};

proptest! {
    #[test]
    fn celsius_kelvin_round_trip(c in -200.0f64..500.0) {
        let back = Celsius::new(c).to_kelvin().to_celsius().get();
        // Clamping at absolute zero only bites below −273.15 °C.
        if c >= -273.15 {
            prop_assert!((back - c).abs() < 1e-9);
        } else {
            prop_assert!((back + 273.15).abs() < 1e-9);
        }
    }

    #[test]
    fn volts_millivolts_round_trip(v in -10.0f64..10.0) {
        let mv: Millivolts = Volts::new(v).into();
        let back: Volts = mv.into();
        prop_assert!((back.get() - v).abs() < 1e-12);
    }

    #[test]
    fn time_conversions_commute(h in 0.0f64..1e4) {
        let s: Seconds = Hours::new(h).into();
        prop_assert!((s.to_hours().get() - h).abs() < 1e-9);
        prop_assert!((s.to_minutes().get() - h * 60.0).abs() < 1e-6);
        let m: Seconds = Minutes::new(h).into();
        prop_assert!((m.get() - h * 60.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_period_inverse(mhz in 0.001f64..1000.0) {
        let f = Megahertz::new(mhz);
        let period = f.period_ns();
        prop_assert!((period.get() * mhz - 1e3).abs() < 1e-6);
        let hz: Hertz = f.into();
        let back: Megahertz = hz.into();
        prop_assert!((back.get() - mhz).abs() < 1e-9);
    }

    #[test]
    fn degradation_is_antisymmetric_around_fresh(fresh in 1.0f64..1e9, delta in -0.5f64..0.5) {
        let f0 = Hertz::new(fresh);
        let f1 = Hertz::new(fresh * (1.0 + delta));
        let deg = f1.degradation_from(f0);
        prop_assert!((deg + delta).abs() < 1e-9, "slowdown positive, speedup negative");
    }

    #[test]
    fn fraction_always_clamped(x in -10.0f64..10.0) {
        let f = Fraction::new(x);
        prop_assert!((0.0..=1.0).contains(&f.get()));
        prop_assert!((f.get() + f.complement().get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_percent_round_trip(x in 0.0f64..1.0) {
        let p: Percent = Fraction::new(x).to_percent();
        prop_assert!((p.to_fraction().get() - x).abs() < 1e-12);
    }

    #[test]
    fn ratio_cycle_split_is_a_partition(alpha in 0.01f64..100.0, period_s in 1.0f64..1e7) {
        let ratio = Ratio::new(alpha).unwrap();
        let (active, sleep) = ratio.split_cycle(Seconds::new(period_s));
        prop_assert!(active.get() >= 0.0 && sleep.get() >= 0.0);
        prop_assert!((active.get() + sleep.get() - period_s).abs() < 1e-6);
        prop_assert!((active / sleep - alpha).abs() / alpha < 1e-6);
        prop_assert!(
            (ratio.active_fraction().get() + ratio.sleep_fraction().get() - 1.0).abs() < 1e-12
        );
    }

    #[test]
    fn ratio_from_durations_matches_division(active_h in 0.1f64..100.0, sleep_h in 0.1f64..100.0) {
        let alpha = Ratio::from_durations(
            Hours::new(active_h).into(),
            Hours::new(sleep_h).into(),
        )
        .unwrap();
        prop_assert!((alpha.get() - active_h / sleep_h).abs() < 1e-9);
    }

    #[test]
    fn duty_cycle_clamps(x in -2.0f64..3.0) {
        let d = DutyCycle::new(x);
        prop_assert!((0.0..=1.0).contains(&d.get()));
    }

    #[test]
    fn voltage_lerp_stays_in_segment(a in -1.0f64..2.0, b in -1.0f64..2.0, t in -1.0f64..2.0) {
        let lo = a.min(b);
        let hi = a.max(b);
        let v = Volts::new(a).lerp(Volts::new(b), t).get();
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn nanoseconds_sum_matches_f64(values in proptest::collection::vec(0.0f64..100.0, 0..20)) {
        let expected: f64 = values.iter().sum();
        let total: Nanoseconds = values.iter().map(|v| Nanoseconds::new(*v)).sum();
        prop_assert!((total.get() - expected).abs() < 1e-9);
    }

    #[test]
    fn kelvin_never_negative(k in -500.0f64..500.0) {
        prop_assert!(Kelvin::new(k).get() >= 0.0);
    }
}
