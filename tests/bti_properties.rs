//! Property-based tests of the BTI physics invariants, on both engines.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_bti::analytic::{AnalyticBti, RecoveryModel, StressModel};
use selfheal_bti::td::{TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Millivolts, Seconds, Volts};

fn arb_stress_env() -> impl Strategy<Value = Environment> {
    (0.9f64..1.4, 20.0f64..120.0)
        .prop_map(|(v, t)| Environment::new(Volts::new(v), Celsius::new(t)))
}

fn arb_recovery_env() -> impl Strategy<Value = Environment> {
    (-0.4f64..=0.0, -20.0f64..120.0)
        .prop_map(|(v, t)| Environment::new(Volts::new(v), Celsius::new(t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stochastic_occupancy_stays_bounded(seed in 0u64..1000, hours in 0.1f64..200.0, env in arb_stress_env()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut device = TrapEnsemble::sample(&TrapEnsembleParams::default(), &mut rng);
        device.advance(DeviceCondition::dc_stress(env), Seconds::new(hours * 3600.0));
        for trap in device.iter() {
            prop_assert!((0.0..=1.0).contains(&trap.occupancy()));
        }
        prop_assert!(device.delta_vth().get() >= 0.0);
        prop_assert!(device.permanent_delta_vth().get() <= device.delta_vth().get() + 1e-9);
    }

    #[test]
    fn stochastic_stress_is_monotone_in_time(seed in 0u64..1000, h1 in 0.1f64..50.0, h2 in 0.1f64..50.0, env in arb_stress_env()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let device = TrapEnsemble::sample(&TrapEnsembleParams::default(), &mut rng);
        let mut a = device.clone();
        a.advance(DeviceCondition::dc_stress(env), Seconds::new(h1 * 3600.0));
        let at_h1 = a.delta_vth().get();
        a.advance(DeviceCondition::dc_stress(env), Seconds::new(h2 * 3600.0));
        prop_assert!(a.delta_vth().get() >= at_h1 - 1e-9, "stress never heals");
    }

    #[test]
    fn stochastic_recovery_never_increases_shift(seed in 0u64..1000, stress_h in 1.0f64..50.0, sleep_h in 0.1f64..100.0, env in arb_recovery_env()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut device = TrapEnsemble::sample(&TrapEnsembleParams::default(), &mut rng);
        let hot = Environment::new(Volts::new(1.2), Celsius::new(110.0));
        device.advance(DeviceCondition::dc_stress(hot), Seconds::new(stress_h * 3600.0));
        let aged = device.delta_vth().get();
        let permanent = device.permanent_delta_vth().get();
        device.advance(DeviceCondition::recovery(env), Seconds::new(sleep_h * 3600.0));
        prop_assert!(device.delta_vth().get() <= aged + 1e-9);
        prop_assert!(device.delta_vth().get() >= permanent - 1e-9, "permanent floor holds");
    }

    #[test]
    fn stochastic_step_composition(seed in 0u64..500, hours in 1.0f64..48.0, splits in 2usize..6) {
        // Advancing in one step equals advancing in k sub-steps (the trap
        // update is an exact solution, not an integrator).
        let mut rng = StdRng::seed_from_u64(seed);
        let device = TrapEnsemble::sample(&TrapEnsembleParams::default(), &mut rng);
        let env = Environment::new(Volts::new(1.2), Celsius::new(110.0));
        let cond = DeviceCondition::dc_stress(env);

        let mut whole = device.clone();
        whole.advance(cond, Seconds::new(hours * 3600.0));
        let mut pieces = device.clone();
        for _ in 0..splits {
            pieces.advance(cond, Seconds::new(hours * 3600.0 / splits as f64));
        }
        prop_assert!((whole.delta_vth().get() - pieces.delta_vth().get()).abs() < 1e-7);
    }

    #[test]
    fn analytic_stress_monotone_in_every_knob(t in 1e2f64..1e6, dv in 0.0f64..0.2, dt_c in 0.0f64..30.0) {
        let model = StressModel::default();
        let base = Environment::new(Volts::new(1.2), Celsius::new(80.0));
        let d0 = model.delta_vth(Seconds::new(t), base).get();
        let longer = model.delta_vth(Seconds::new(t * 2.0), base).get();
        let hotter = model
            .delta_vth(Seconds::new(t), base.with_temperature(Celsius::new(80.0 + dt_c)))
            .get();
        let higher_v = model
            .delta_vth(Seconds::new(t), base.with_supply(Volts::new(1.2 + dv)))
            .get();
        prop_assert!(longer >= d0);
        prop_assert!(hotter >= d0 - 1e-12);
        prop_assert!(higher_v >= d0 - 1e-12);
    }

    #[test]
    fn analytic_recovery_fraction_in_unit_interval(t2 in 0.0f64..1e7, t1 in 1.0f64..1e7, env in arb_recovery_env()) {
        let model = RecoveryModel::default();
        let f = model.recovered_fraction(Seconds::new(t2), Seconds::new(t1), env).get();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn analytic_recovery_monotone_in_sleep_time(t1 in 1e3f64..1e6, t2a in 0.0f64..1e5, extra in 0.0f64..1e5) {
        let model = RecoveryModel::default();
        let env = Environment::new(Volts::new(-0.3), Celsius::new(110.0));
        let f1 = model.recovered_fraction(Seconds::new(t2a), Seconds::new(t1), env).get();
        let f2 = model.recovered_fraction(Seconds::new(t2a + extra), Seconds::new(t1), env).get();
        prop_assert!(f2 >= f1 - 1e-12, "more sleep, more healing");
    }

    #[test]
    fn analytic_delta_after_bounded_by_endpoints(delta in 1.0f64..100.0, perm_frac in 0.0f64..1.0, t2 in 0.0f64..1e6) {
        let model = RecoveryModel::default();
        let env = Environment::new(Volts::new(-0.3), Celsius::new(110.0));
        let permanent = Millivolts::new(delta * perm_frac);
        let after = model
            .delta_vth_after(Millivolts::new(delta), permanent, Seconds::new(86_400.0), Seconds::new(t2), env)
            .get();
        prop_assert!(after <= delta + 1e-9);
        prop_assert!(after >= permanent.get() - 1e-9);
    }

    #[test]
    fn analytic_state_machine_is_safe_under_random_schedules(
        seed in 0u64..200,
        steps in proptest::collection::vec((0u8..3, 0.1f64..48.0), 1..20)
    ) {
        // Drive the stateful model through arbitrary stress/recovery/AC
        // sequences: the shift must stay finite, non-negative and above
        // its permanent floor throughout.
        let _ = seed;
        let mut model = AnalyticBti::default();
        let hot = Environment::new(Volts::new(1.2), Celsius::new(110.0));
        let heal = Environment::new(Volts::new(-0.3), Celsius::new(110.0));
        for (kind, hours) in steps {
            let cond = match kind {
                0 => DeviceCondition::dc_stress(hot),
                1 => DeviceCondition::ac_stress(hot),
                _ => DeviceCondition::recovery(heal),
            };
            model.advance(cond, Seconds::new(hours * 3600.0));
            let total = model.delta_vth().get();
            let permanent = model.permanent_delta_vth().get();
            prop_assert!(total.is_finite() && total >= 0.0);
            prop_assert!(permanent >= 0.0 && permanent <= total + 1e-9);
        }
    }
}
