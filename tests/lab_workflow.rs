//! Cross-crate integration of the laboratory workflow: chips mounted in
//! harnesses, schedules built from Table 1, error handling across
//! instrument boundaries.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_fpga::{Chip, ChipId};
use selfheal_testbench::cases::{self, TestCase};
use selfheal_testbench::{HarnessError, PhaseSpec, Schedule, TestHarness};
use selfheal_units::{Celsius, Hours, Minutes, Seconds, Volts};

fn harness(seed: u64) -> (TestHarness, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
    (TestHarness::new(chip), rng)
}

#[test]
fn every_table1_case_converts_to_a_valid_spec() {
    for case in cases::table1() {
        let spec = case.to_phase_spec();
        assert!(spec.validate().is_ok(), "{} invalid: {spec:?}", case.name);
        assert_eq!(spec.name, case.name);
    }
}

#[test]
fn a_full_chip5_session_runs_end_to_end() {
    // Chip 5's real chronology: burn-in, 24 h stress, 6 h heal, 48 h
    // re-stress, 12 h heal — the longest session in the paper.
    let (mut harness, mut rng) = harness(50);
    let by_name = |name: &str| -> TestCase {
        cases::table1()
            .into_iter()
            .find(|c| c.name == name && c.chip == ChipId::new(5))
            .unwrap()
    };
    let schedule: Schedule = [
        PhaseSpec::burn_in(),
        by_name("AS110DC24").to_phase_spec(),
        by_name("AR110N6").to_phase_spec(),
        by_name("AS110DC48").to_phase_spec(),
        by_name("AR110N12").to_phase_spec(),
    ]
    .into_iter()
    .collect();

    let results = harness.run_schedule(&schedule, &mut rng).expect("session runs");
    assert_eq!(results.len(), 5);

    // 2 + 24 + 6 + 48 + 12 = 92 hours of chamber time.
    assert!((harness.total_elapsed().to_hours().get() - 92.0).abs() < 1e-6);

    // Delays: each stress phase ends slower than it starts; each recovery
    // phase ends faster than it starts.
    for (i, result) in results.iter().enumerate() {
        let first = result.records.first().unwrap().measurement.cut_delay;
        let last = result.records.last().unwrap().measurement.cut_delay;
        match i {
            1 | 3 => assert!(last > first, "{}: stress slows", result.name),
            2 | 4 => assert!(last < first, "{}: healing speeds up", result.name),
            _ => {}
        }
    }

    // The second stress starts from the healed level, not from fresh —
    // Fig. 1's accumulation across cycles.
    let healed_after_first = results[2].records.last().unwrap().measurement.cut_delay;
    let restress_start = results[3].records.first().unwrap().measurement.cut_delay;
    assert!((healed_after_first.get() - restress_start.get()).abs() < 0.05);
}

#[test]
fn records_carry_consistent_timing_metadata() {
    let (mut h, mut rng) = harness(51);
    let spec = PhaseSpec::dc_stress_phase(
        Celsius::new(110.0),
        Hours::new(3.0).into(),
        Minutes::new(20.0).into(),
    );
    let records = h.run_phase(&spec, &mut rng).unwrap();
    assert_eq!(records.len(), 10);
    for pair in records.windows(2) {
        let dt = pair[1].elapsed_in_phase - pair[0].elapsed_in_phase;
        assert!((dt.to_minutes().get() - 20.0).abs() < 1e-9);
        let global = pair[1].total_elapsed - pair[0].total_elapsed;
        assert!((global.get() - dt.get()).abs() < 1e-9);
    }
    for r in &records {
        assert_eq!(r.temperature_setpoint, Celsius::new(110.0));
        assert_eq!(r.supply, Volts::new(1.2));
    }
}

#[test]
fn instrument_limits_surface_as_typed_errors() {
    let (mut h, mut rng) = harness(52);

    // Chamber limit.
    let too_hot = PhaseSpec::dc_stress_phase(
        Celsius::new(400.0),
        Hours::new(1.0).into(),
        Minutes::new(20.0).into(),
    );
    assert!(matches!(
        h.run_phase(&too_hot, &mut rng),
        Err(HarnessError::Chamber(_))
    ));

    // Supply limit (below pn-junction breakdown guard).
    let mut too_negative = PhaseSpec::recovery_phase(
        Volts::new(-0.9),
        Celsius::new(110.0),
        Hours::new(1.0).into(),
        Minutes::new(30.0).into(),
    );
    too_negative.supply = Volts::new(-0.9);
    assert!(matches!(
        h.run_phase(&too_negative, &mut rng),
        Err(HarnessError::Supply(_))
    ));

    // Spec error.
    let mut degenerate = PhaseSpec::burn_in();
    degenerate.duration = Seconds::ZERO;
    let err = h.run_phase(&degenerate, &mut rng).unwrap_err();
    assert!(matches!(err, HarnessError::InvalidSpec(_)));
    assert!(!err.to_string().is_empty());
}

#[test]
fn harness_errors_implement_std_error_with_sources() {
    let (mut h, mut rng) = harness(53);
    let too_hot = PhaseSpec::dc_stress_phase(
        Celsius::new(400.0),
        Hours::new(1.0).into(),
        Minutes::new(20.0).into(),
    );
    let err = h.run_phase(&too_hot, &mut rng).unwrap_err();
    let as_std: &dyn std::error::Error = &err;
    assert!(as_std.source().is_some(), "chamber error is chained");
}

#[test]
fn chips_can_be_unmounted_and_remounted() {
    let (mut h, mut rng) = harness(54);
    let spec = PhaseSpec::dc_stress_phase(
        Celsius::new(110.0),
        Hours::new(6.0).into(),
        Hours::new(2.0).into(),
    );
    h.run_phase(&spec, &mut rng).unwrap();
    let aged_delay = h.chip().true_cut_delay();

    // Move the chip to a different bench; its state travels with it.
    let chip = h.into_chip();
    assert_eq!(chip.true_cut_delay(), aged_delay);
    let mut second_bench = TestHarness::new(chip);
    let heal = PhaseSpec::recovery_phase(
        Volts::new(-0.3),
        Celsius::new(110.0),
        Hours::new(2.0).into(),
        Minutes::new(30.0).into(),
    );
    second_bench.run_phase(&heal, &mut rng).unwrap();
    assert!(second_bench.chip().true_cut_delay() < aged_delay);
}
