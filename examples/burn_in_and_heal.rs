//! A full laboratory session, the way the paper's authors ran one:
//! mount a chip in the chamber, burn it in, stress it for a day at
//! 110 °C sampling every 20 minutes, then rejuvenate at −0.3 V/110 °C
//! sampling every 30 minutes — and print the measurement log.
//!
//! Run with `cargo run --release --example burn_in_and_heal`.

use rand::SeedableRng;
use selfheal::metrics::{degradation_series, recovery_series};
use selfheal_fpga::{Chip, ChipId};
use selfheal_testbench::{PhaseSpec, Schedule, TestHarness};
use selfheal_units::{Celsius, Hours, Minutes, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let chip = Chip::commercial_40nm(ChipId::new(5), &mut rng);
    let mut harness = TestHarness::new(chip);

    let schedule = Schedule::new()
        .then(PhaseSpec::burn_in())
        .then(PhaseSpec::dc_stress_phase(
            Celsius::new(110.0),
            Hours::new(24.0).into(),
            Minutes::new(20.0).into(),
        ))
        .then(PhaseSpec::recovery_phase(
            Volts::new(-0.3),
            Celsius::new(110.0),
            Hours::new(6.0).into(),
            Minutes::new(30.0).into(),
        ));
    schedule.validate()?;

    let results = harness.run_schedule(&schedule, &mut rng)?;

    // The stress phase, as the chamber log would show it.
    let stress = &results[1];
    println!("== {} ==", stress.name);
    println!("{:>8} {:>12} {:>10}", "t (h)", "freq deg (%)", "dTd (ns)");
    for point in degradation_series(&stress.records).iter().step_by(9) {
        println!(
            "{:>8.1} {:>12.3} {:>10.3}",
            point.elapsed.to_hours().get(),
            point.frequency_degradation.get(),
            point.delay_shift.get()
        );
    }

    // The recovery phase.
    let fresh = stress.records[0].measurement.cut_delay;
    let recovery = &results[2];
    println!("\n== {} ==", recovery.name);
    println!("{:>8} {:>10} {:>14}", "t2 (h)", "RD (ns)", "remaining (ns)");
    for point in recovery_series(&recovery.records, fresh).iter().step_by(2) {
        println!(
            "{:>8.1} {:>10.3} {:>14.3}",
            point.elapsed.to_hours().get(),
            point.recovered_delay.get(),
            point.remaining_shift.get()
        );
    }

    let aged = recovery.records.first().unwrap().measurement.cut_delay;
    let healed = recovery.records.last().unwrap().measurement.cut_delay;
    println!(
        "\nsession total: inflicted {:.3} ns, healed {:.3} ns back in 1/4 of the time",
        (aged - fresh).get(),
        (aged - healed).get()
    );
    Ok(())
}
