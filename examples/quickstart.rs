//! Quickstart: stress a simulated 40 nm FPGA for a day, then deeply
//! rejuvenate it for a quarter of that time — the paper's headline
//! experiment in ~40 lines.
//!
//! Run with `cargo run --release --example quickstart`.

use rand::SeedableRng;
use selfheal::metrics::RecoveryAssessment;
use selfheal::RejuvenationTechnique;
use selfheal_bti::Environment;
use selfheal_fpga::{Chip, ChipId, RoMode};
use selfheal_units::{Celsius, Hours, Volts};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // A fresh chip off the (simulated) shelf.
    let mut chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
    let fresh = chip.measure(&mut rng);
    println!("fresh:  {} ({})", fresh.cut_delay, fresh.frequency);

    // 24 h of accelerated DC stress at 110 °C / 1.2 V.
    let stress = Environment::new(Volts::new(1.2), Celsius::new(110.0));
    chip.advance(RoMode::Static, stress, Hours::new(24.0).into());
    let aged = chip.measure(&mut rng);
    println!("aged:   {} ({})", aged.cut_delay, aged.frequency);

    // 6 h of accelerated self-healing: −0.3 V at 110 °C (α = 4).
    let technique = RejuvenationTechnique::Combined;
    chip.advance(RoMode::Sleep, technique.environment(), Hours::new(6.0).into());
    let healed = chip.measure(&mut rng);
    println!("healed: {} ({})", healed.cut_delay, healed.frequency);

    let assessment = RecoveryAssessment::new(fresh.cut_delay, aged.cut_delay, healed.cut_delay);
    println!(
        "\n{technique} for 1/4 of the stress time relaxed {} of the inflicted margin",
        assessment.margin_relaxed()
    );
    println!("(the paper's best case reports 72.4 %)");
}
