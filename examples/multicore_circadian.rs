//! The §6.2 scenario: an 8-core server under a day/night workload for a
//! year, comparing conventional power gating against circadian
//! rejuvenation with on-chip heaters.
//!
//! Run with `cargo run --release --example multicore_circadian`.

use selfheal_multicore::scheduler::{CircadianRotation, HeaterAware, NaiveGating, Scheduler};
use selfheal_multicore::sim::{MulticoreSim, SimConfig, SystemReport};
use selfheal_multicore::workload::Workload;

fn race(scheduler: Box<dyn Scheduler>, days: f64) -> SystemReport {
    let mut sim = MulticoreSim::new(SimConfig::default(), scheduler, Workload::diurnal(2, 8));
    sim.run_days(days)
}

fn main() {
    let days = 365.0;
    println!("8-core server, diurnal demand 2–8 cores, {days} days\n");

    let reports = [
        race(Box::new(NaiveGating), days),
        race(Box::new(CircadianRotation::paper_default()), days),
        race(Box::new(HeaterAware::paper_default()), days),
    ];

    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>14}",
        "scheduler", "worst dVth", "mean dVth", "spread", "margin used"
    );
    for r in &reports {
        println!(
            "{:<20} {:>11.2} mV {:>9.2} mV {:>9.2} mV {:>13.1} %",
            r.scheduler,
            r.worst_delta_vth_mv,
            r.mean_delta_vth_mv,
            r.wear_spread_mv(),
            r.worst_margin_consumed.get() * 100.0
        );
    }

    println!("\nper-core wear (mV):");
    for r in &reports {
        let cores: Vec<String> = r.per_core_mv.iter().map(|v| format!("{:5.1}", v.get())).collect();
        println!("  {:<20} [{}]", r.scheduler, cores.join(" "));
    }

    let naive = &reports[0];
    // total_cmp keeps the selection total even if a model ever emits NaN.
    let Some(best) = reports
        .iter()
        .min_by(|a, b| a.worst_delta_vth_mv.get().total_cmp(&b.worst_delta_vth_mv.get()))
    else {
        unreachable!("reports array is non-empty");
    };
    println!(
        "\n{} cuts the critical core's wear to {:.0} % of naive gating while serving\n\
         the identical demand — margin that a designer can hand back as frequency,\n\
         power, or years of extra lifetime (paper §6.2).",
        best.scheduler,
        100.0 * best.worst_delta_vth_mv / naive.worst_delta_vth_mv
    );
}
