//! Model extraction, the paper's Table 3 workflow: measure a chip through
//! stress and recovery, fit the first-order Eq. (10)/(11) forms to the
//! measurements, then check the fitted model *predicts* a different
//! condition it never saw.
//!
//! Run with `cargo run --release --example model_fitting`.

use rand::SeedableRng;
use selfheal::fitting::{FittedRecoveryCurve, FittedStressCurve};
use selfheal::metrics::{degradation_series, recovery_series};
use selfheal_fpga::{Chip, ChipId};
use selfheal_testbench::{PhaseSpec, TestHarness};
use selfheal_units::{Celsius, Hours, Minutes, Seconds, Volts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let chip = Chip::commercial_40nm(ChipId::new(2), &mut rng);
    let mut harness = TestHarness::new(chip);

    // --- measure a 24 h stress phase and extract (beta, C) ---
    let stress_spec = PhaseSpec::dc_stress_phase(
        Celsius::new(110.0),
        Hours::new(24.0).into(),
        Minutes::new(20.0).into(),
    );
    let stress_records = harness.run_phase(&stress_spec, &mut rng)?;
    let stress_points: Vec<(Seconds, selfheal_units::Nanoseconds)> =
        degradation_series(&stress_records)
            .iter()
            .map(|p| (p.elapsed, p.delay_shift))
            .collect();
    let stress_fit = FittedStressCurve::fit(&stress_points).expect("informative series");
    println!("Eq. (10) fit:  dTd(t) = {:.4} * ln(1 + {:.2e} * t)   [RMSE {:.4} ns]",
        stress_fit.beta_ns, stress_fit.c_per_s, stress_fit.rmse_ns);

    // --- measure a 6 h recovery phase and extract (a, b, c) ---
    let fresh = stress_records[0].measurement.cut_delay;
    let recovery_spec = PhaseSpec::recovery_phase(
        Volts::new(-0.3),
        Celsius::new(110.0),
        Hours::new(6.0).into(),
        Minutes::new(30.0).into(),
    );
    let recovery_records = harness.run_phase(&recovery_spec, &mut rng)?;
    let recovery_points: Vec<(Seconds, selfheal_units::Nanoseconds)> =
        recovery_series(&recovery_records, fresh)
            .iter()
            .map(|p| (p.elapsed, p.recovered_delay))
            .collect();
    let recovery_fit =
        FittedRecoveryCurve::fit(&recovery_points, Hours::new(24.0).into()).expect("fit");
    println!(
        "Eq. (11) fit:  RD(t2) = {:.4} * ln(1+{:.2e}*t2) / (1 + {:.3}*ln(1+{:.2e}*(t1+t2)))   [RMSE {:.4} ns]",
        recovery_fit.a_ns, recovery_fit.c_per_s, recovery_fit.b, recovery_fit.c_per_s,
        recovery_fit.rmse_ns
    );

    // --- validation: predict the first 3 h of a SECOND stress round the
    //     model never saw (the chip is now partially healed). ---
    println!("\nvalidation against a fresh 12 h re-stress (unseen data):");
    let residual = harness.measure(&mut rng).cut_delay;
    let restress = PhaseSpec::dc_stress_phase(
        Celsius::new(110.0),
        Hours::new(12.0).into(),
        Hours::new(2.0).into(),
    );
    let restress_records = harness.run_phase(&restress, &mut rng)?;

    // Resume the fitted curve from the point matching the residual shift.
    let resume =
        ((residual - fresh).get() / stress_fit.beta_ns).exp_m1() / stress_fit.c_per_s;
    println!("{:>8} {:>14} {:>14} {:>10}", "t (h)", "measured (ns)", "model (ns)", "err (%)");
    for record in restress_records.iter().step_by(2) {
        let measured = (record.measurement.cut_delay - fresh).get();
        let modelled = stress_fit
            .predict(Seconds::new(resume + record.elapsed_in_phase.get()))
            .get();
        println!(
            "{:>8.1} {:>14.3} {:>14.3} {:>10.1}",
            record.elapsed_in_phase.to_hours().get(),
            measured,
            modelled,
            100.0 * (modelled - measured) / measured.max(1e-9)
        );
    }
    println!(
        "\none parameter set per condition reproduces both the fitted curve and the\n\
         unseen continuation — the paper's criterion for the first-order model."
    );
    Ok(())
}
