//! No-op `Serialize` / `Deserialize` derive macros for the offline serde
//! stand-in.
//!
//! The stub `serde` crate blanket-implements its marker traits for every
//! type, so the derives here only need to (a) exist, so that
//! `#[derive(Serialize, Deserialize)]` parses, and (b) register the
//! `#[serde(...)]` helper attribute, so container and field attributes
//! are accepted. They expand to nothing.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
