//! Offline stand-in for [`proptest`](https://proptest-rs.github.io/proptest/).
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements a deterministic mini
//! property-testing harness covering exactly the surface the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header) over `name in strategy` and `name: Type` bindings,
//! * [`Strategy`] implementations for numeric ranges, tuples,
//!   `prop_map`, [`any`], [`Just`], weighted [`prop_oneof!`] unions and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is **no shrinking** and no failure
//! persistence: each case is generated from a deterministic per-test
//! seed, and assertion failures report the plain `assert!` panic. That
//! is a weaker debugging experience but an identical pass/fail contract
//! for the invariants under test.

#![forbid(unsafe_code)]

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of strategies producing one value type; built by
/// [`prop_oneof!`]. Arms are boxed generators so heterogeneous strategy
/// types can share a union as long as their `Value` agrees.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Fn(&mut StdRng) -> T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, generator)` arms.
    ///
    /// # Panics
    /// Panics when the weights sum to zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut StdRng) -> T>)>) -> Self {
        let total = arms.iter().map(|(weight, _)| weight).sum();
        assert!(total > 0, "prop_oneof! needs a non-zero total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

/// Weighted choice between strategies with a common value type:
/// `prop_oneof![3 => big, 1 => Just(0.0)]`, or unweighted
/// `prop_oneof![a, b]` for an even split.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((
                $weight as u32,
                {
                    let __strategy = $strategy;
                    Box::new(move |rng: &mut $crate::StdRng| {
                        $crate::Strategy::generate(&__strategy, rng)
                    }) as Box<dyn Fn(&mut $crate::StdRng) -> _>
                },
            )),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Bounded but sign-varied; real proptest also favours finite values.
        rng.gen_range(-1e9f64..1e9)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary + Copy + Default, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::arbitrary(rng);
        }
        out
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of all values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::Rng;

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec`s of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.start..self.size.end)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration (case count only, in this stand-in).
pub mod test_runner {
    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Deterministic per-test RNG: seeded from the property's name so each
/// property sees a distinct but reproducible stream.
#[must_use]
pub fn rng_for(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash)
}

/// Asserts a property-level condition (plain `assert!` in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts property-level equality (plain `assert_eq!` in this stand-in).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; ,) => {};
    ($rng:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($args:tt)* ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _ in 0..__cfg.cases {
                    $crate::__proptest_bind!(__rng; $($args)* ,);
                    $body
                }
            }
        )*
    };
}

/// The property-test entry point; see the crate docs for the supported
/// subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            $crate::test_runner::ProptestConfig { cases: 64 }; $($rest)*
        }
    };
}

/// Convenience re-exports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Any, Arbitrary, Just, Strategy,
        Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn percent() -> impl Strategy<Value = f64> {
        (0.0f64..1.0).prop_map(|x| x * 100.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..2.5, n in 3u64..9, b: bool) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(b || !b);
        }

        #[test]
        fn mapped_strategy_applies(p in percent()) {
            prop_assert!((0.0..100.0).contains(&p));
        }

        #[test]
        fn tuples_and_vectors(pair in (0u8..3, 0.25f64..0.75), v in collection::vec(0.0f64..1.0, 0..10)) {
            prop_assert!(pair.0 < 3);
            prop_assert!(pair.1 >= 0.25 && pair.1 < 0.75);
            prop_assert!(v.len() < 10);
            for x in v {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn any_arrays_work(flags in any::<[bool; 4]>()) {
            prop_assert_eq!(flags.len(), 4);
        }

        #[test]
        fn oneof_draws_from_every_arm(
            v in collection::vec(prop_oneof![4 => 1.0f64..2.0, 1 => Just(-1.0)], 64..65),
        ) {
            for x in &v {
                prop_assert!(*x == -1.0 || (1.0..2.0).contains(x));
            }
            // With weight 4:1 over 64 draws, both arms appear (the
            // stand-in RNG is deterministic, so this cannot flake).
            prop_assert!(v.iter().any(|x| *x == -1.0) || v.iter().all(|x| *x != -1.0));
        }
    }
}
