//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access and no
//! vendored registry, so the real `rand` cannot be fetched. This crate
//! re-implements the *small* slice of the 0.8 API the workspace actually
//! uses — `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng` — on top of a xoshiro256\*\* core seeded through
//! SplitMix64.
//!
//! Streams are deterministic for a given seed, which is all the simulation
//! and its tests rely on; they are **not** bit-compatible with the real
//! `StdRng` (ChaCha12). Calibration-window assertions in the workspace are
//! statistical, so any good uniform generator satisfies them.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw bits (stand-in for sampling from the
/// `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 sample range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\*.
    ///
    /// Not bit-compatible with the real `rand::rngs::StdRng`; see the crate
    /// docs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 5e-3, "mean = {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y = rng.gen_range(3u64..9);
            assert!((3..9).contains(&y));
            let z = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 1e5;
        assert!((rate - 0.25).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn unsized_rng_callable_through_generic() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let _ = draw(&mut rng);
    }
}
