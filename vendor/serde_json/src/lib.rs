//! Offline stand-in for [`serde_json`].
//!
//! Provides the `to_string` / `from_str` signatures the workspace's test
//! code references so everything type-checks, but every call returns
//! [`Error::Stubbed`] at runtime: with the no-op serde derives there is no
//! structural information to serialize from. Tests exercising real JSON
//! round-trips are `#[ignore]`d until the registry dependency can be
//! restored.

#![forbid(unsafe_code)]

use std::fmt;

/// The error type: always [`Error::Stubbed`] in this stand-in.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Serialization is unavailable because serde is stubbed offline.
    Stubbed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(
            "serde_json is stubbed for offline builds; real JSON support \
             requires restoring the registry `serde`/`serde_json` dependencies",
        )
    }
}

impl std::error::Error for Error {}

/// Stand-in result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Always fails with [`Error::Stubbed`].
///
/// # Errors
///
/// Always.
pub fn to_string<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error::Stubbed)
}

/// Always fails with [`Error::Stubbed`].
///
/// # Errors
///
/// Always.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(_value: &T) -> Result<String> {
    Err(Error::Stubbed)
}

/// Always fails with [`Error::Stubbed`].
///
/// # Errors
///
/// Always.
pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error::Stubbed)
}
