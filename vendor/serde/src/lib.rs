//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment has no network access, so the real `serde`
//! cannot be fetched. The workspace only uses serde through
//! `#[derive(Serialize, Deserialize)]` attributes (no hand-written impls
//! and no non-test serialization call sites), so this stub provides:
//!
//! * marker traits [`Serialize`] / [`Deserialize`] blanket-implemented
//!   for every type, and
//! * no-op derive macros (behind the `derive` feature) that accept and
//!   ignore `#[serde(...)]` container/field attributes.
//!
//! Actual serialization is **not** available offline; the serde
//! round-trip integration tests are `#[ignore]`d with an explanatory
//! message until the real dependency can be restored. Swapping this stub
//! back for real serde is a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; satisfied by every
/// sized type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stand-in for the `serde::de` module.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Stand-in for the `serde::ser` module.
pub mod ser {
    pub use super::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
