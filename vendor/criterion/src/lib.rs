//! Offline stand-in for [`criterion`](https://bheisler.github.io/criterion.rs/book/).
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This stub keeps the workspace's `[[bench]]` targets
//! compiling and gives them a *smoke-run* mode: each benchmark closure is
//! executed a small fixed number of times and a coarse mean wall-clock
//! time is printed. There are no statistics, no warm-up and no HTML
//! reports — restore the registry dependency for real measurements.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// How many times each routine runs in smoke mode.
const SMOKE_ITERS: u32 = 10;

/// Batch-size hint, accepted for API compatibility and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per batch.
    PerIteration,
}

/// Drives one benchmark's routine.
#[derive(Debug)]
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            black_box(routine());
        }
    }

    /// Times `routine` with a fresh `setup` output per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            black_box(routine(input));
        }
    }
}

/// The benchmark harness handle passed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs `f` as the benchmark `id` in smoke mode.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { iters: SMOKE_ITERS };
        let start = Instant::now();
        f(&mut bencher);
        let elapsed = start.elapsed();
        let per_iter = elapsed.as_nanos() / u128::from(SMOKE_ITERS.max(1));
        println!("bench {id}: ~{per_iter} ns/iter over {SMOKE_ITERS} smoke iterations (stub harness)");
        self
    }
}

/// Declares a benchmark group (stub: a function running each benchmark).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point (stub: plain `main`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
