//! Root package of the accelerated self-healing reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests under
//! `tests/` and the runnable examples under `examples/`. All functionality
//! lives in the member crates; see [`selfheal`] for the paper's primary
//! contribution and the README for a guided tour.

#![forbid(unsafe_code)]

pub use selfheal;
pub use selfheal_bti;
pub use selfheal_fpga;
pub use selfheal_multicore;
pub use selfheal_testbench;
pub use selfheal_units;
