//! Baseline ("ratchet") support.
//!
//! A baseline records, per `(lint, file)` pair, how many findings are
//! accepted as existing debt. The gate then fails only when a pair
//! *exceeds* its baselined count — new debt is blocked, paying debt
//! down never breaks the build, and a stale (over-generous) baseline is
//! reported so it can be re-tightened with `--update-baseline`.
//!
//! Counts are keyed on `(lint, file)` rather than exact lines so the
//! baseline survives unrelated edits that shift line numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::findings::Finding;

/// Accepted findings per `(lint-id, file)` pair.
pub type Baseline = BTreeMap<(String, String), usize>;

/// Parses the baseline text format: one `lint-id<TAB>path<TAB>count`
/// entry per line; `#` comments and blank lines ignored.
///
/// Returns `Err` with a description for malformed lines.
pub fn parse(text: &str) -> Result<Baseline, String> {
    let mut map = Baseline::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(lint), Some(file), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected `lint<TAB>file<TAB>count`, got `{line}`",
                lineno + 1
            ));
        };
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("baseline line {}: bad count `{count}`", lineno + 1))?;
        *map.entry((lint.to_string(), file.to_string())).or_insert(0) += count;
    }
    Ok(map)
}

/// Collapses findings into per-`(lint, file)` counts.
#[must_use]
pub fn summarize(findings: &[Finding]) -> Baseline {
    let mut map = Baseline::new();
    for f in findings {
        *map.entry((f.lint.id().to_string(), f.file.display().to_string()))
            .or_insert(0) += 1;
    }
    map
}

/// Renders a baseline back to its text format (sorted, stable).
#[must_use]
pub fn render(map: &Baseline) -> String {
    let mut out = String::from(
        "# selfheal-analyzer baseline: accepted findings per (lint, file).\n\
         # Regenerate with: cargo analyzer check --update-baseline\n",
    );
    for ((lint, file), count) in map {
        let _ = writeln!(out, "{lint}\t{file}\t{count}");
    }
    out
}

/// The verdict of checking current findings against a baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Pairs whose current count exceeds the baseline: `(lint, file,
    /// current, allowed)`. Non-empty fails the gate.
    pub regressions: Vec<(String, String, usize, usize)>,
    /// Pairs whose baseline is larger than reality (debt was paid down)
    /// or that vanished entirely; the baseline should be re-tightened.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Number of current findings covered by the baseline.
    pub baselined: usize,
}

/// Compares current findings against the baseline.
#[must_use]
pub fn check(current: &Baseline, baseline: &Baseline) -> Verdict {
    let mut verdict = Verdict::default();
    for ((lint, file), &count) in current {
        let allowed = baseline.get(&(lint.clone(), file.clone())).copied().unwrap_or(0);
        if count > allowed {
            verdict.regressions.push((lint.clone(), file.clone(), count, allowed));
        }
        verdict.baselined += count.min(allowed);
    }
    for ((lint, file), &allowed) in baseline {
        let count = current.get(&(lint.clone(), file.clone())).copied().unwrap_or(0);
        if count < allowed {
            verdict.stale.push((lint.clone(), file.clone(), count, allowed));
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::findings::Lint;
    use std::path::PathBuf;

    fn finding(lint: Lint, file: &str) -> Finding {
        Finding::new(lint, PathBuf::from(file), 1, String::new(), String::new())
    }

    #[test]
    fn parse_render_round_trip() {
        let text = "# comment\nbare-physical-f64\tcrates/core/src/planner.rs\t3\n";
        let map = parse(text).unwrap();
        assert_eq!(
            map.get(&("bare-physical-f64".into(), "crates/core/src/planner.rs".into())),
            Some(&3)
        );
        let rendered = render(&map);
        assert_eq!(parse(&rendered).unwrap(), map);
    }

    #[test]
    fn malformed_lines_error() {
        assert!(parse("not a baseline line").is_err());
        assert!(parse("a\tb\tnot-a-number").is_err());
    }

    #[test]
    fn regressions_and_stale_entries() {
        let current = summarize(&[
            finding(Lint::UnwrapInLib, "a.rs"),
            finding(Lint::UnwrapInLib, "a.rs"),
            finding(Lint::BarePhysicalF64, "b.rs"),
        ]);
        let baseline = parse("unwrap-in-lib\ta.rs\t1\nbare-physical-f64\tb.rs\t2\n").unwrap();
        let verdict = check(&current, &baseline);
        assert_eq!(
            verdict.regressions,
            vec![("unwrap-in-lib".into(), "a.rs".into(), 2, 1)]
        );
        assert_eq!(
            verdict.stale,
            vec![("bare-physical-f64".into(), "b.rs".into(), 1, 2)]
        );
        // One unwrap covered, one bare-f64 covered.
        assert_eq!(verdict.baselined, 2);
    }

    #[test]
    fn empty_baseline_flags_everything() {
        let current = summarize(&[finding(Lint::UnwrapInLib, "a.rs")]);
        let verdict = check(&current, &Baseline::new());
        assert_eq!(verdict.regressions.len(), 1);
        assert_eq!(verdict.baselined, 0);
    }
}
