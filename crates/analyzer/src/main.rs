//! CLI for the selfheal-analyzer static-analysis gate.
//!
//! ```text
//! selfheal-analyzer check [--json] [--baseline <file>] [--update-baseline] [--root <dir>]
//! selfheal-analyzer graph [--root <dir>]
//! selfheal-analyzer lints
//! ```
//!
//! Exit codes: 0 = clean (all findings baselined), 1 = new findings,
//! 2 = usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use selfheal_analyzer::{analyze_workspace, baseline, findings, purity, walk, ALL_LINTS};

const USAGE: &str = "\
selfheal-analyzer — domain-aware static analysis for the self-healing workspace

USAGE:
    selfheal-analyzer check [--json] [--baseline <file>] [--update-baseline] [--root <dir>]
    selfheal-analyzer graph [--root <dir>]
    selfheal-analyzer lints
    selfheal-analyzer --version

OPTIONS:
    --json               emit a machine-readable JSON report
    --baseline <file>    ratchet file (default: <root>/analyzer-baseline.txt)
    --update-baseline    rewrite the baseline to match current findings
    --root <dir>         workspace root (default: walk up from cwd)

`graph` dumps the workspace call graph with per-function purity labels
(deterministic / seeded-rng / env-tainted / clock-tainted / io-tainted)
as JSON on stdout.
";

struct Options {
    json: bool,
    update_baseline: bool,
    baseline: Option<PathBuf>,
    root: Option<PathBuf>,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "check" => {
            let mut opts = Options {
                json: false,
                update_baseline: false,
                baseline: None,
                root: None,
            };
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--json" => opts.json = true,
                    "--update-baseline" => opts.update_baseline = true,
                    "--baseline" => match args.next() {
                        Some(path) => opts.baseline = Some(PathBuf::from(path)),
                        None => return usage_error("--baseline needs a file argument"),
                    },
                    "--root" => match args.next() {
                        Some(path) => opts.root = Some(PathBuf::from(path)),
                        None => return usage_error("--root needs a directory argument"),
                    },
                    other => return usage_error(&format!("unknown option `{other}`")),
                }
            }
            check(&opts)
        }
        "graph" | "--graph" => {
            let mut root = None;
            while let Some(arg) = args.next() {
                match arg.as_str() {
                    "--root" => match args.next() {
                        Some(path) => root = Some(PathBuf::from(path)),
                        None => return usage_error("--root needs a directory argument"),
                    },
                    other => return usage_error(&format!("unknown option `{other}`")),
                }
            }
            graph_dump(root)
        }
        "lints" => {
            for lint in ALL_LINTS {
                println!("{:<28} {:<8} {}", lint.id(), lint.severity().to_string(), lint.describe());
            }
            ExitCode::SUCCESS
        }
        "--version" | "-V" => {
            println!("selfheal-analyzer {}", selfheal_analyzer::version());
            ExitCode::SUCCESS
        }
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => usage_error(&format!("unknown command `{other}`")),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("error: {message}\n");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// Resolves the workspace root like `check` does.
fn resolve_root(root: Option<PathBuf>) -> Result<PathBuf, ExitCode> {
    match root {
        Some(root) => Ok(root),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            walk::find_workspace_root(&cwd).ok_or_else(|| {
                eprintln!("error: no workspace root found above {}", cwd.display());
                ExitCode::from(2)
            })
        }
    }
}

fn graph_dump(root: Option<PathBuf>) -> ExitCode {
    let root = match resolve_root(root) {
        Ok(root) => root,
        Err(code) => return code,
    };
    match selfheal_analyzer::workspace_dataflow(&root) {
        Ok(flow) => {
            print!("{}", purity::render_graph_json(&flow));
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: failed to analyze workspace: {err}");
            ExitCode::from(2)
        }
    }
}

fn check(opts: &Options) -> ExitCode {
    let root = match &opts.root {
        Some(root) => root.clone(),
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match walk::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("error: no workspace root found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let all = match analyze_workspace(&root) {
        Ok(findings) => findings,
        Err(err) => {
            eprintln!("error: failed to analyze workspace: {err}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("analyzer-baseline.txt"));
    let accepted = match load_baseline(&baseline_path, opts.baseline.is_some()) {
        Ok(map) => map,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };

    let current = baseline::summarize(&all);

    if opts.update_baseline {
        let rendered = baseline::render(&current);
        if let Err(err) = std::fs::write(&baseline_path, rendered) {
            eprintln!("error: cannot write {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "analyzer: baseline updated ({} findings across {} (lint, file) pairs) -> {}",
            all.len(),
            current.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let verdict = baseline::check(&current, &accepted);
    // Stale entries fail the gate too, matching `tests/analyzer_gate.rs`:
    // the ratchet is one-way, so improvements must be locked in.
    let gate_fails = !verdict.regressions.is_empty() || !verdict.stale.is_empty();

    if opts.json {
        print!("{}", findings::render_json(&all, verdict.baselined));
    } else {
        report_text(&all, &verdict);
    }

    if gate_fails {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Loads the baseline; a missing default file is an empty baseline, a
/// missing explicitly-requested file is an error.
fn load_baseline(path: &Path, explicit: bool) -> Result<baseline::Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(err) if err.kind() == std::io::ErrorKind::NotFound && !explicit => {
            Ok(baseline::Baseline::new())
        }
        Err(err) => Err(format!("cannot read {}: {err}", path.display())),
    }
}

fn report_text(all: &[selfheal_analyzer::Finding], verdict: &baseline::Verdict) {
    // Print findings for any (lint, file) pair that regressed; fully
    // baselined pairs stay quiet to keep the signal readable.
    let mut shown = 0usize;
    for f in all {
        let over_budget = verdict
            .regressions
            .iter()
            .any(|(lint, file, ..)| lint == f.lint.id() && *file == f.file.display().to_string());
        if over_budget {
            println!("{}", f.render_text());
            shown += 1;
        }
    }
    if shown > 0 {
        println!();
    }
    for (lint, file, current, allowed) in &verdict.regressions {
        println!("regression: {lint} in {file}: {current} findings, baseline allows {allowed}");
    }
    for (lint, file, current, allowed) in &verdict.stale {
        println!(
            "stale baseline: {lint} in {file}: baseline allows {allowed} but only {current} remain \
             (re-run with --update-baseline to ratchet down)"
        );
    }
    println!(
        "analyzer: {} findings ({} baselined, {} new)",
        all.len(),
        verdict.baselined,
        all.len() - verdict.baselined,
    );
    if !verdict.regressions.is_empty() {
        println!("analyzer: gate FAILED — fix the findings or extend the baseline deliberately");
    } else if verdict.stale.is_empty() {
        println!("analyzer: gate clean");
    } else {
        println!("analyzer: gate FAILED — baseline is stale, ratchet it down with --update-baseline");
    }
}
