//! Finding types, lint identities, and report rendering.
//!
//! `serde_json` is stubbed in this offline workspace, so the `--json`
//! output is rendered by hand; the escaping helper covers everything a
//! source snippet can contain.

use std::fmt;
use std::path::PathBuf;

/// The domain lints the analyzer implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `pub fn` signatures passing physical quantities as bare `f64`.
    BarePhysicalF64,
    /// Float orderings that misbehave or panic on NaN.
    NanUnsafeOrdering,
    /// `.unwrap()` / `.expect()` in non-test library code.
    UnwrapInLib,
    /// Physical literals outside plausible silicon operating ranges.
    SuspiciousPhysicalLiteral,
    /// Pure unit-returning accessors missing `#[must_use]`.
    MissingMustUse,
    /// `std::thread::spawn` outside the execution-runtime crates.
    RawThreadSpawn,
    /// Iterating `HashMap`/`HashSet` (or `BTreeSet::retain`) where the
    /// visit order can leak into results.
    NondeterministicIteration,
    /// RNG construction not derived from a `SeedSequence` stream.
    UnseededRng,
    /// A cycle in the cross-function `Mutex`/`RwLock` acquisition graph.
    LockOrder,
    /// A deterministic root whose transitive callees reach a tainted
    /// sink (clock, env, IO, unseeded RNG, hash-order iteration).
    TaintedRoot,
}

/// All lints, in reporting order.
pub const ALL_LINTS: [Lint; 10] = [
    Lint::BarePhysicalF64,
    Lint::NanUnsafeOrdering,
    Lint::UnwrapInLib,
    Lint::SuspiciousPhysicalLiteral,
    Lint::MissingMustUse,
    Lint::RawThreadSpawn,
    Lint::NondeterministicIteration,
    Lint::UnseededRng,
    Lint::LockOrder,
    Lint::TaintedRoot,
];

/// How serious a finding is. Every non-baselined finding gates the
/// build regardless of severity; the split is informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/robustness debt.
    Warning,
    /// Latent panic or wrong-result hazard.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

impl Lint {
    /// Stable kebab-case id used on the CLI, in baselines and in allows.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Lint::BarePhysicalF64 => "bare-physical-f64",
            Lint::NanUnsafeOrdering => "nan-unsafe-ordering",
            Lint::UnwrapInLib => "unwrap-in-lib",
            Lint::SuspiciousPhysicalLiteral => "suspicious-physical-literal",
            Lint::MissingMustUse => "missing-must-use",
            Lint::RawThreadSpawn => "raw-thread-spawn",
            Lint::NondeterministicIteration => "nondeterministic-iteration",
            Lint::UnseededRng => "unseeded-rng",
            Lint::LockOrder => "lock-order",
            Lint::TaintedRoot => "tainted-root",
        }
    }

    /// Default severity for findings of this lint.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Lint::NanUnsafeOrdering
            | Lint::UnwrapInLib
            | Lint::RawThreadSpawn
            | Lint::NondeterministicIteration
            | Lint::UnseededRng
            | Lint::LockOrder
            | Lint::TaintedRoot => Severity::Error,
            Lint::BarePhysicalF64
            | Lint::SuspiciousPhysicalLiteral
            | Lint::MissingMustUse => Severity::Warning,
        }
    }

    /// One-line description shown in `--help` style output.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Lint::BarePhysicalF64 => {
                "public APIs must pass physical quantities as selfheal-units newtypes, not bare f64"
            }
            Lint::NanUnsafeOrdering => {
                "float orderings must use total_cmp or NaN-aware helpers, never partial_cmp().unwrap() or f64::max folds"
            }
            Lint::UnwrapInLib => {
                ".unwrap()/.expect() are forbidden in non-test library code of the model crates"
            }
            Lint::SuspiciousPhysicalLiteral => {
                "voltage literals must lie in [-0.5, 1.5] V and temperatures in [-55, 150] C"
            }
            Lint::MissingMustUse => {
                "pure unit-returning accessors must carry #[must_use]"
            }
            Lint::RawThreadSpawn => {
                "thread parallelism must go through selfheal-runtime's deterministic pool, not std::thread::spawn"
            }
            Lint::NondeterministicIteration => {
                "HashMap/HashSet iteration order is nondeterministic; use BTreeMap/BTreeSet or sort before use"
            }
            Lint::UnseededRng => {
                "randomness must come from a SeedSequence-derived stream, never thread_rng/from_entropy/OsRng"
            }
            Lint::LockOrder => {
                "Mutex/RwLock acquisition order must be acyclic across the call graph (deadlock hazard)"
            }
            Lint::TaintedRoot => {
                "deterministic roots (kernel, par_map closures, cache-feeding fns) must not transitively reach clock/env/IO/unseeded-RNG sinks"
            }
        }
    }

    /// Parses a kebab-case id back to a lint.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Lint> {
        ALL_LINTS.into_iter().find(|l| l.id() == id)
    }
}

/// One lint hit at a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human explanation of what is wrong and what to use instead.
    pub message: String,
    /// A short source-derived snippet identifying the construct.
    pub snippet: String,
    /// For graph findings (`tainted-root`, `lock-order`): the offending
    /// call path, one `name (file:line)` entry per hop, root first.
    /// Empty for per-file token lints.
    pub call_path: Vec<String>,
}

impl Finding {
    /// A finding with no call path (the per-file token-lint case).
    #[must_use]
    pub fn new(lint: Lint, file: PathBuf, line: u32, message: String, snippet: String) -> Finding {
        Finding {
            lint,
            file,
            line,
            message,
            snippet,
            call_path: Vec::new(),
        }
    }

    /// Severity inherited from the lint.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }

    /// `file:line: severity [lint-id] message` single-line rendering,
    /// with the call path (when present) appended hop by hop.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "{}:{}: {} [{}] {} ({})",
            self.file.display(),
            self.line,
            self.severity(),
            self.lint.id(),
            self.message,
            self.snippet,
        );
        for hop in &self.call_path {
            out.push_str("\n    -> ");
            out.push_str(hop);
        }
        out
    }
}

/// Escapes a string for inclusion in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full machine-readable report.
///
/// Shape:
/// ```json
/// {
///   "findings": [{"lint": "...", "severity": "...", "file": "...",
///                 "line": 1, "message": "...", "snippet": "...",
///                 "call_path": ["root (f.rs:1)", "sink (g.rs:9)"]}],
///   "total": 3,
///   "baselined": 2,
///   "new": 1
/// }
/// ```
///
/// `call_path` is `[]` for per-file token lints and lists each hop from
/// a deterministic root down to the tainted sink for graph findings.
#[must_use]
pub fn render_json(findings: &[Finding], baselined: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let call_path = f
            .call_path
            .iter()
            .map(|hop| format!("\"{}\"", json_escape(hop)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\", \"call_path\": [{call_path}]}}",
            f.lint.id(),
            f.severity(),
            json_escape(&f.file.display().to_string()),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"total\": {},\n  \"baselined\": {},\n  \"new\": {}\n}}\n",
        findings.len(),
        baselined,
        findings.len().saturating_sub(baselined),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for lint in ALL_LINTS {
            assert_eq!(Lint::from_id(lint.id()), Some(lint));
        }
        assert_eq!(Lint::from_id("nonsense"), None);
    }

    #[test]
    fn json_escaping_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_is_well_formed_enough_to_eyeball() {
        let f = Finding::new(
            Lint::UnwrapInLib,
            PathBuf::from("crates/core/src/lib.rs"),
            7,
            "say \"no\" to unwrap".into(),
            ".unwrap()".into(),
        );
        let json = render_json(&[f], 0);
        assert!(json.contains("\"lint\": \"unwrap-in-lib\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"call_path\": []"));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"new\": 1"));
        // Braces and brackets balance.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn call_paths_render_in_json_and_text() {
        let mut f = Finding::new(
            Lint::TaintedRoot,
            PathBuf::from("crates/core/src/experiment.rs"),
            12,
            "root reaches a clock sink".into(),
            "fn run_chip".into(),
        );
        f.call_path = vec![
            "run_chip (crates/core/src/experiment.rs:12)".into(),
            "now_ns (crates/telemetry/src/event.rs:170)".into(),
        ];
        let json = render_json(&[f.clone()], 0);
        assert!(json.contains(
            "\"call_path\": [\"run_chip (crates/core/src/experiment.rs:12)\", \"now_ns (crates/telemetry/src/event.rs:170)\"]"
        ));
        let text = f.render_text();
        assert!(text.contains("-> run_chip"));
        assert!(text.contains("-> now_ns"));
    }

    #[test]
    fn empty_report_renders() {
        let json = render_json(&[], 0);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"total\": 0"));
    }
}
