//! Finding types, lint identities, and report rendering.
//!
//! `serde_json` is stubbed in this offline workspace, so the `--json`
//! output is rendered by hand; the escaping helper covers everything a
//! source snippet can contain.

use std::fmt;
use std::path::PathBuf;

/// The six domain lints the analyzer implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `pub fn` signatures passing physical quantities as bare `f64`.
    BarePhysicalF64,
    /// Float orderings that misbehave or panic on NaN.
    NanUnsafeOrdering,
    /// `.unwrap()` / `.expect()` in non-test library code.
    UnwrapInLib,
    /// Physical literals outside plausible silicon operating ranges.
    SuspiciousPhysicalLiteral,
    /// Pure unit-returning accessors missing `#[must_use]`.
    MissingMustUse,
    /// `std::thread::spawn` outside the execution-runtime crates.
    RawThreadSpawn,
}

/// All lints, in reporting order.
pub const ALL_LINTS: [Lint; 6] = [
    Lint::BarePhysicalF64,
    Lint::NanUnsafeOrdering,
    Lint::UnwrapInLib,
    Lint::SuspiciousPhysicalLiteral,
    Lint::MissingMustUse,
    Lint::RawThreadSpawn,
];

/// How serious a finding is. Every non-baselined finding gates the
/// build regardless of severity; the split is informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/robustness debt.
    Warning,
    /// Latent panic or wrong-result hazard.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

impl Lint {
    /// Stable kebab-case id used on the CLI, in baselines and in allows.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Lint::BarePhysicalF64 => "bare-physical-f64",
            Lint::NanUnsafeOrdering => "nan-unsafe-ordering",
            Lint::UnwrapInLib => "unwrap-in-lib",
            Lint::SuspiciousPhysicalLiteral => "suspicious-physical-literal",
            Lint::MissingMustUse => "missing-must-use",
            Lint::RawThreadSpawn => "raw-thread-spawn",
        }
    }

    /// Default severity for findings of this lint.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Lint::NanUnsafeOrdering | Lint::UnwrapInLib | Lint::RawThreadSpawn => Severity::Error,
            Lint::BarePhysicalF64
            | Lint::SuspiciousPhysicalLiteral
            | Lint::MissingMustUse => Severity::Warning,
        }
    }

    /// One-line description shown in `--help` style output.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Lint::BarePhysicalF64 => {
                "public APIs must pass physical quantities as selfheal-units newtypes, not bare f64"
            }
            Lint::NanUnsafeOrdering => {
                "float orderings must use total_cmp or NaN-aware helpers, never partial_cmp().unwrap() or f64::max folds"
            }
            Lint::UnwrapInLib => {
                ".unwrap()/.expect() are forbidden in non-test library code of the model crates"
            }
            Lint::SuspiciousPhysicalLiteral => {
                "voltage literals must lie in [-0.5, 1.5] V and temperatures in [-55, 150] C"
            }
            Lint::MissingMustUse => {
                "pure unit-returning accessors must carry #[must_use]"
            }
            Lint::RawThreadSpawn => {
                "thread parallelism must go through selfheal-runtime's deterministic pool, not std::thread::spawn"
            }
        }
    }

    /// Parses a kebab-case id back to a lint.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Lint> {
        ALL_LINTS.into_iter().find(|l| l.id() == id)
    }
}

/// One lint hit at a source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human explanation of what is wrong and what to use instead.
    pub message: String,
    /// A short source-derived snippet identifying the construct.
    pub snippet: String,
}

impl Finding {
    /// Severity inherited from the lint.
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }

    /// `file:line: severity [lint-id] message` single-line rendering.
    #[must_use]
    pub fn render_text(&self) -> String {
        format!(
            "{}:{}: {} [{}] {} ({})",
            self.file.display(),
            self.line,
            self.severity(),
            self.lint.id(),
            self.message,
            self.snippet,
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the full machine-readable report.
///
/// Shape:
/// ```json
/// {
///   "findings": [{"lint": "...", "severity": "...", "file": "...",
///                 "line": 1, "message": "...", "snippet": "..."}],
///   "total": 3,
///   "baselined": 2,
///   "new": 1
/// }
/// ```
#[must_use]
pub fn render_json(findings: &[Finding], baselined: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            f.lint.id(),
            f.severity(),
            json_escape(&f.file.display().to_string()),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"total\": {},\n  \"baselined\": {},\n  \"new\": {}\n}}\n",
        findings.len(),
        baselined,
        findings.len().saturating_sub(baselined),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for lint in ALL_LINTS {
            assert_eq!(Lint::from_id(lint.id()), Some(lint));
        }
        assert_eq!(Lint::from_id("nonsense"), None);
    }

    #[test]
    fn json_escaping_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_is_well_formed_enough_to_eyeball() {
        let f = Finding {
            lint: Lint::UnwrapInLib,
            file: PathBuf::from("crates/core/src/lib.rs"),
            line: 7,
            message: "say \"no\" to unwrap".into(),
            snippet: ".unwrap()".into(),
        };
        let json = render_json(&[f], 0);
        assert!(json.contains("\"lint\": \"unwrap-in-lib\""));
        assert!(json.contains("\"line\": 7"));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\"total\": 1"));
        assert!(json.contains("\"new\": 1"));
        // Braces and brackets balance.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn empty_report_renders() {
        let json = render_json(&[], 0);
        assert!(json.contains("\"findings\": []"));
        assert!(json.contains("\"total\": 0"));
    }
}
