//! Purity classification and taint propagation over the call graph.
//!
//! Every function gets a bitset of taint kinds its own body touches
//! (recorded by [`crate::graph`]); the *effective* taint is the
//! fixpoint of
//!
//! ```text
//! eff(f) = (own(f) ∪ ⋃_{g ∈ callees(f)} eff(g)) \ trusted(f)
//! ```
//!
//! which is monotone under edge insertion — adding a call edge can only
//! grow effective taint, never shrink it (property-tested in this
//! module). `trusted(f)` comes from `// analyzer: trust(<kinds>):
//! <justification>` annotations and masks taint *at* the annotated
//! function, so a telemetry clock read does not poison every caller.
//!
//! Deterministic roots (the kernel entry point, `par_map`-closure
//! callees, cache-feeding functions) with non-empty effective taint
//! become `tainted-root` findings carrying the offending call path.
//! The same graph also yields the `lock-order` lint: a cross-function
//! lock-acquisition graph whose cycles are deadlock hazards.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::findings::{Finding, Lint};
use crate::graph::CallGraph;

/// Taint kind bits.
pub const RNG: u8 = 1 << 0;
/// Reads of `std::env`.
pub const ENV: u8 = 1 << 1;
/// Wall-clock reads (`Instant::now`, `SystemTime::now`).
pub const CLOCK: u8 = 1 << 2;
/// Hash-order iteration feeding a value.
pub const HASH_ITER: u8 = 1 << 3;
/// Filesystem / process / network IO.
pub const IO: u8 = 1 << 4;

/// All taint kinds with their annotation names, in reporting order.
pub const TAINT_KINDS: [(u8, &str); 5] = [
    (IO, "io"),
    (CLOCK, "clock"),
    (ENV, "env"),
    (RNG, "rng"),
    (HASH_ITER, "hash-iter"),
];

/// Maps a `trust(...)` kind name to its bit.
#[must_use]
pub fn taint_bit(name: &str) -> Option<u8> {
    TAINT_KINDS
        .iter()
        .find(|(_, n)| *n == name)
        .map(|(bit, _)| *bit)
}

/// Names of the kinds present in a bitset, in reporting order.
#[must_use]
pub fn taint_names(bits: u8) -> Vec<&'static str> {
    TAINT_KINDS
        .iter()
        .filter(|(bit, _)| bits & bit != 0)
        .map(|(_, n)| *n)
        .collect()
}

/// Computes effective taint as a fixpoint over the callee relation.
///
/// Pure over plain arrays so the monotonicity property can be tested in
/// isolation: `edges[f]` lists callee indices of `f`.
#[must_use]
pub fn propagate(own: &[u8], trusted: &[u8], edges: &[Vec<usize>]) -> Vec<u8> {
    assert_eq!(own.len(), trusted.len());
    assert_eq!(own.len(), edges.len());
    let mut eff: Vec<u8> = own
        .iter()
        .zip(trusted)
        .map(|(o, t)| o & !t)
        .collect();
    loop {
        let mut changed = false;
        for f in 0..eff.len() {
            let mut acc = own[f];
            for &g in &edges[f] {
                acc |= eff[g];
            }
            acc &= !trusted[f];
            if acc != eff[f] {
                eff[f] = acc;
                changed = true;
            }
        }
        if !changed {
            return eff;
        }
    }
}

/// The purity lattice label for one function.
#[must_use]
pub fn purity_label(effective: u8, seeded: bool) -> &'static str {
    if effective & IO != 0 {
        "io-tainted"
    } else if effective & CLOCK != 0 {
        "clock-tainted"
    } else if effective & ENV != 0 {
        "env-tainted"
    } else if effective & RNG != 0 {
        "rng-tainted"
    } else if effective & HASH_ITER != 0 {
        "hash-iter-tainted"
    } else if seeded {
        "seeded-rng"
    } else {
        "deterministic"
    }
}

/// The completed dataflow pass: graph + effective taint + findings.
#[derive(Debug)]
pub struct Dataflow {
    /// The underlying call graph.
    pub graph: CallGraph,
    /// Effective (post-trust, transitive) taint per node.
    pub effective: Vec<u8>,
    /// `tainted-root` and `lock-order` findings, sorted like the
    /// per-file lints (file, line, lint).
    pub findings: Vec<Finding>,
}

/// Runs taint propagation and both graph lints over a built graph.
#[must_use]
pub fn analyze(graph: CallGraph) -> Dataflow {
    let own: Vec<u8> = graph.nodes.iter().map(|n| n.own_taint).collect();
    let trusted: Vec<u8> = graph.nodes.iter().map(|n| n.trusted).collect();
    let adj: Vec<Vec<usize>> = graph
        .edges
        .iter()
        .map(|es| es.iter().map(|e| e.to).collect())
        .collect();
    let effective = propagate(&own, &trusted, &adj);

    let mut findings = Vec::new();
    for (&root, &kind) in &graph.roots {
        let bits = effective[root];
        if bits == 0 {
            continue;
        }
        let node = &graph.nodes[root];
        for (bit, name) in TAINT_KINDS {
            if bits & bit == 0 {
                continue;
            }
            let path = taint_path(&graph, &effective, root, bit);
            let mut finding = Finding::new(
                Lint::TaintedRoot,
                node.file.clone(),
                node.line,
                format!(
                    "deterministic root `{}` ({}) transitively reaches a {name} sink",
                    node.qualified,
                    kind.describe(),
                ),
                format!("fn {}", node.qualified),
            );
            finding.call_path = path;
            findings.push(finding);
        }
    }

    findings.extend(lock_order_findings(&graph));
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));

    Dataflow {
        graph,
        effective,
        findings,
    }
}

/// Shortest call path from `root` to a function whose *own* (untrusted)
/// taint includes `bit`, rendered one `name (file:line)` hop per entry
/// with the sink construct appended to the terminal hop.
fn taint_path(graph: &CallGraph, effective: &[u8], root: usize, bit: u8) -> Vec<String> {
    let is_terminal =
        |n: usize| graph.nodes[n].own_taint & !graph.nodes[n].trusted & bit != 0;
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::from([root]);
    let mut seen = BTreeSet::from([root]);
    let mut terminal = is_terminal(root).then_some(root);
    while terminal.is_none() {
        let Some(n) = queue.pop_front() else {
            break;
        };
        for e in &graph.edges[n] {
            if effective[e.to] & bit == 0 || !seen.insert(e.to) {
                continue;
            }
            prev.insert(e.to, n);
            if is_terminal(e.to) {
                terminal = Some(e.to);
                break;
            }
            queue.push_back(e.to);
        }
    }
    let Some(terminal) = terminal else {
        // Unreachable in practice: effective taint at the root implies
        // a reachable untrusted sink. Degrade to a root-only path.
        return vec![hop(graph, root)];
    };
    let mut chain = vec![terminal];
    while let Some(&p) = prev.get(chain.last().expect("non-empty")) {
        chain.push(p);
    }
    chain.reverse();
    let mut path: Vec<String> = chain.iter().map(|&n| hop(graph, n)).collect();
    if let Some((_, what, line)) = graph.nodes[terminal]
        .sink_notes
        .iter()
        .find(|(b, _, _)| *b == bit)
    {
        let file = graph.nodes[terminal].file.display();
        path.push(format!("sink: {what} ({file}:{line})"));
    }
    path
}

/// One rendered call-path hop.
fn hop(graph: &CallGraph, n: usize) -> String {
    let node = &graph.nodes[n];
    format!("{} ({}:{})", node.qualified, node.file.display(), node.line)
}

/// Builds the cross-function lock graph and reports each distinct
/// acquisition-order cycle as a `lock-order` finding.
fn lock_order_findings(graph: &CallGraph) -> Vec<Finding> {
    // Transitive lock sets: every lock a call into `f` may acquire.
    let n = graph.nodes.len();
    let mut locks_all: Vec<BTreeSet<String>> = graph
        .nodes
        .iter()
        .map(|node| node.locks.iter().map(|l| l.name.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for f in 0..n {
            let mut add: Vec<String> = Vec::new();
            for e in &graph.edges[f] {
                for l in &locks_all[e.to] {
                    if !locks_all[f].contains(l) {
                        add.push(l.clone());
                    }
                }
            }
            if !add.is_empty() {
                locks_all[f].extend(add);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Ordered edges between lock names, with first-seen provenance.
    let mut lock_edges: BTreeMap<(String, String), (std::path::PathBuf, u32)> = BTreeMap::new();
    for (f, node) in graph.nodes.iter().enumerate() {
        for a in &node.locks {
            // Direct second acquisitions while `a` is held.
            for b in &node.locks {
                if a.pos < b.pos && b.pos < a.scope_end && a.name != b.name {
                    lock_edges
                        .entry((a.name.clone(), b.name.clone()))
                        .or_insert_with(|| (node.file.clone(), a.line));
                }
            }
            // Locks acquired by calls made while `a` is held. Guards
            // returned *by* calls (`shared.queue(i)`) create no held
            // state here — only their direct `.lock()` sites do.
            for e in &graph.edges[f] {
                if a.pos < e.pos && e.pos < a.scope_end {
                    for l in &locks_all[e.to] {
                        if *l != a.name {
                            lock_edges
                                .entry((a.name.clone(), l.clone()))
                                .or_insert_with(|| (node.file.clone(), a.line));
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the lock-name graph.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in lock_edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in adj.keys() {
        let mut stack: Vec<&str> = vec![start];
        let mut on_stack: BTreeSet<&str> = BTreeSet::from([start]);
        dfs_cycles(
            start,
            &adj,
            &mut stack,
            &mut on_stack,
            &mut done,
            &mut |cycle: &[&str]| {
                // Canonicalize: rotate so the smallest name leads.
                let min = cycle
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| **s)
                    .map_or(0, |(i, _)| i);
                let canon: Vec<String> = (0..cycle.len())
                    .map(|i| cycle[(min + i) % cycle.len()].to_string())
                    .collect();
                if !reported.insert(canon.clone()) {
                    return;
                }
                let (file, line) = lock_edges
                    .get(&(canon[0].clone(), canon[(1) % canon.len()].clone()))
                    .cloned()
                    .unwrap_or_default();
                let mut finding = Finding::new(
                    Lint::LockOrder,
                    file,
                    line,
                    format!(
                        "lock acquisition cycle: {} -> {}",
                        canon.join(" -> "),
                        canon[0],
                    ),
                    format!("{} locks", canon.len()),
                );
                finding.call_path = canon;
                findings.push(finding);
            },
        );
    }
    findings
}

/// DFS that invokes `report` for every cycle found from `node`.
fn dfs_cycles<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    stack: &mut Vec<&'a str>,
    on_stack: &mut BTreeSet<&'a str>,
    done: &mut BTreeSet<&'a str>,
    report: &mut dyn FnMut(&[&str]),
) {
    for &next in adj.get(node).into_iter().flatten() {
        if on_stack.contains(next) {
            let from = stack.iter().position(|&s| s == next).unwrap_or(0);
            report(&stack[from..]);
            continue;
        }
        if done.contains(next) {
            continue;
        }
        stack.push(next);
        on_stack.insert(next);
        dfs_cycles(next, adj, stack, on_stack, done, report);
        stack.pop();
        on_stack.remove(next);
    }
    done.insert(node);
}

/// Renders the full graph + purity dump for `cargo analyzer graph`.
#[must_use]
pub fn render_graph_json(flow: &Dataflow) -> String {
    use crate::findings::json_escape;
    use std::fmt::Write as _;

    let graph = &flow.graph;
    let crates: BTreeSet<&str> = graph.nodes.iter().map(|n| n.crate_name.as_str()).collect();
    let mut out = String::from("{\n  \"crates\": [");
    for (i, c) in crates.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", json_escape(c));
    }
    out.push_str("],\n  \"nodes\": [");
    for (i, node) in graph.nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let list = |bits: u8| {
            taint_names(bits)
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let root = graph.roots.get(&i).map_or("null".to_string(), |k| {
            format!("\"{}\"", json_escape(k.describe()))
        });
        let _ = write!(
            out,
            "\n    {{\"id\": {i}, \"crate\": \"{}\", \"file\": \"{}\", \"fn\": \"{}\", \"line\": {}, \"purity\": \"{}\", \"root\": {root}, \"taints\": [{}], \"trusted\": [{}]}}",
            json_escape(&node.crate_name),
            json_escape(&node.file.display().to_string()),
            json_escape(&node.qualified),
            node.line,
            purity_label(flow.effective[i], node.seeded),
            list(flow.effective[i]),
            list(node.trusted),
        );
    }
    if !graph.nodes.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"edges\": [");
    let mut first = true;
    for (from, es) in graph.edges.iter().enumerate() {
        for e in es {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"from\": {from}, \"to\": {}, \"line\": {}}}",
                e.to, e.line
            );
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    let roots: Vec<String> = graph.roots.keys().map(usize::to_string).collect();
    let _ = write!(
        out,
        "],\n  \"roots\": [{}],\n  \"findings\": {}\n}}\n",
        roots.join(", "),
        flow.findings.len(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{build, extract_file};
    use crate::lexer::lex;
    use crate::lints::FileContext;
    use std::path::Path;

    fn flow(src: &str) -> Dataflow {
        let fg = extract_file(Path::new("crates/x/src/lib.rs"), &lex(src), &FileContext::lib("x"));
        analyze(build(&[fg], &["x".to_string()].into_iter().collect()))
    }

    #[test]
    fn propagate_reaches_fixpoint_through_chains() {
        // 0 -> 1 -> 2(clock)
        let own = vec![0, 0, CLOCK];
        let trusted = vec![0, 0, 0];
        let edges = vec![vec![1], vec![2], vec![]];
        assert_eq!(propagate(&own, &trusted, &edges), vec![CLOCK, CLOCK, CLOCK]);
    }

    #[test]
    fn trust_masks_taint_at_the_annotated_node() {
        // 0 -> 1(clock, trusted clock): callers stay clean.
        let own = vec![0, CLOCK];
        let trusted = vec![0, CLOCK];
        let edges = vec![vec![1], vec![]];
        assert_eq!(propagate(&own, &trusted, &edges), vec![0, 0]);
        // ...but trusting clock does not mask io.
        let own = vec![0, CLOCK | IO];
        assert_eq!(propagate(&own, &trusted, &edges), vec![IO, IO]);
    }

    #[test]
    fn propagation_handles_cycles() {
        // 0 <-> 1, 1 -> 2(env).
        let own = vec![0, 0, ENV];
        let trusted = vec![0, 0, 0];
        let edges = vec![vec![1], vec![0, 2], vec![]];
        assert_eq!(propagate(&own, &trusted, &edges), vec![ENV, ENV, ENV]);
    }

    #[test]
    fn purity_labels_follow_the_severity_order() {
        assert_eq!(purity_label(IO | CLOCK, false), "io-tainted");
        assert_eq!(purity_label(CLOCK | ENV, false), "clock-tainted");
        assert_eq!(purity_label(ENV, true), "env-tainted");
        assert_eq!(purity_label(RNG, false), "rng-tainted");
        assert_eq!(purity_label(HASH_ITER, false), "hash-iter-tainted");
        assert_eq!(purity_label(0, true), "seeded-rng");
        assert_eq!(purity_label(0, false), "deterministic");
    }

    #[test]
    fn tainted_root_reports_the_call_path() {
        let flow = flow(
            r"
            pub fn driver(pool: &Pool, xs: Vec<u64>) { pool.par_map(xs, |x| leaf(x)); }
            pub fn leaf(x: u64) -> u64 { mid(x) }
            fn mid(x: u64) -> u64 { let t = Instant::now(); x }
            ",
        );
        let tainted: Vec<&Finding> = flow
            .findings
            .iter()
            .filter(|f| f.lint == Lint::TaintedRoot)
            .collect();
        assert_eq!(tainted.len(), 1, "findings: {:#?}", flow.findings);
        let f = tainted[0];
        assert!(f.message.contains("`leaf`"));
        assert!(f.message.contains("clock sink"));
        assert_eq!(f.call_path.len(), 3, "path: {:?}", f.call_path);
        assert!(f.call_path[0].starts_with("leaf ("));
        assert!(f.call_path[1].starts_with("mid ("));
        assert!(f.call_path[2].starts_with("sink: Instant::now ("));
    }

    #[test]
    fn trusted_sink_produces_no_tainted_root() {
        let flow = flow(
            r"
            pub fn driver(pool: &Pool, xs: Vec<u64>) { pool.par_map(xs, |x| leaf(x)); }
            pub fn leaf(x: u64) -> u64 { stamp(); x }
            // analyzer: trust(clock): observability only, never in results
            fn stamp() { let t = Instant::now(); }
            ",
        );
        assert!(
            flow.findings.iter().all(|f| f.lint != Lint::TaintedRoot),
            "findings: {:#?}",
            flow.findings
        );
    }

    #[test]
    fn lock_order_cycle_is_detected_across_functions() {
        let flow = flow(
            r"
            pub fn forward(&self) { let a = self.alpha.lock(); take_beta(self); }
            pub fn take_beta(&self) { let b = self.beta.lock(); }
            pub fn backward(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }
            ",
        );
        let cycles: Vec<&Finding> = flow
            .findings
            .iter()
            .filter(|f| f.lint == Lint::LockOrder)
            .collect();
        assert_eq!(cycles.len(), 1, "findings: {:#?}", flow.findings);
        assert_eq!(cycles[0].call_path, vec!["alpha", "beta"]);
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let flow = flow(
            r"
            pub fn one(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
            pub fn two(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
            ",
        );
        assert!(flow.findings.iter().all(|f| f.lint != Lint::LockOrder));
    }

    #[test]
    fn scoped_guard_release_breaks_the_edge() {
        // beta is taken after alpha's guard scope closed: no alpha->beta.
        let flow = flow(
            r"
            pub fn staged(&self) {
                { let a = self.alpha.lock(); }
                let b = self.beta.lock();
            }
            pub fn backward(&self) { let b = self.beta.lock(); }
            ",
        );
        assert!(flow.findings.iter().all(|f| f.lint != Lint::LockOrder));
    }

    #[test]
    fn graph_json_lists_nodes_edges_and_purity() {
        let flow = flow(
            r"
            pub fn a() { b(); }
            fn b() { let t = Instant::now(); }
            ",
        );
        let json = render_graph_json(&flow);
        assert!(json.contains("\"crates\": [\"x\"]"));
        assert!(json.contains("\"fn\": \"a\""));
        assert!(json.contains("\"purity\": \"clock-tainted\""));
        assert!(json.contains("\"from\": 0, \"to\": 1"));
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }
}
