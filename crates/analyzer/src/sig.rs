//! Token-level scope and signature utilities shared by the lints:
//! `#[cfg(test)]` region masking and `pub fn` signature parsing.

use crate::lexer::{Token, TokenKind};

/// Returns a mask over `tokens`: `true` where the token lies inside a
/// `#[cfg(test)] mod`, a `#[cfg(test)]`-gated item, or a `#[test]` fn.
///
/// Detection is structural, not semantic: an attribute whose idents
/// include both `cfg` and `test` (or exactly `test`) marks the next
/// item, and the item's `{ ... }` body is resolved by brace matching.
#[must_use]
pub fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_idents, after_attr) = read_attr(tokens, i + 1);
            let is_test_cfg = attr_idents.iter().any(|s| s == "cfg")
                && attr_idents.iter().any(|s| s == "test");
            let is_test_attr = attr_idents.first().is_some_and(|s| s == "test")
                && attr_idents.len() == 1;
            if is_test_cfg || is_test_attr {
                // Skip any further attributes between this one and the item.
                let mut j = after_attr;
                while j < tokens.len()
                    && tokens[j].is_punct('#')
                    && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    j = read_attr(tokens, j + 1).1;
                }
                let end = item_end(tokens, j);
                for slot in mask.iter_mut().take(end).skip(i) {
                    *slot = true;
                }
                i = end;
                continue;
            }
            i = after_attr;
            continue;
        }
        i += 1;
    }
    mask
}

/// Reads an attribute starting at its `[` token; returns the idents it
/// contains and the index just past the matching `]`.
fn read_attr(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (idents, i + 1);
            }
        } else if t.kind == TokenKind::Ident {
            idents.push(t.text.clone());
        }
        i += 1;
    }
    (idents, tokens.len())
}

/// Finds the end (exclusive token index) of the item starting at `start`:
/// either just past the `;` of a declaration or just past the matching
/// `}` of its body.
pub(crate) fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut i = start;
    // Find the first `{` or `;` at angle/paren depth irrelevant — a `;`
    // before any `{` means a body-less item.
    while i < tokens.len() {
        if tokens[i].is_punct(';') {
            return i + 1;
        }
        if tokens[i].is_punct('{') {
            break;
        }
        i += 1;
    }
    let mut depth = 0i32;
    while i < tokens.len() {
        if tokens[i].is_punct('{') {
            depth += 1;
        } else if tokens[i].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// One `fn` item of any visibility, with its body token range — the
/// unit the call-graph pass works over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFn {
    /// The bare function name.
    pub name: String,
    /// `Type::name` inside `impl`/`trait` blocks (the `for` type of a
    /// trait impl), else the bare name.
    pub qualified: String,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Last source line covered by the item (closing brace or `;`).
    pub end_line: u32,
    /// Token index of the body's `{` (== `body_end` for declarations).
    pub body_start: usize,
    /// Exclusive token index just past the body's `}` (or the `;`).
    pub body_end: usize,
    /// True when the fn lies inside a `#[cfg(test)]` region.
    pub in_test_region: bool,
}

/// Parses every `fn` item — any visibility — recording qualified names
/// (`Type::method` inside `impl Type` / `impl Trait for Type` / `trait
/// Type` blocks) and body token ranges for the call-graph pass.
#[must_use]
pub fn parse_all_fns(tokens: &[Token], test_mask: &[bool]) -> Vec<ParsedFn> {
    let qualifiers = qualifier_regions(tokens);
    let mut fns = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_ident("fn")
            && tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident))
        {
            i += 1;
            continue;
        }
        let fn_idx = i;
        let name = tokens[i + 1].text.clone();
        // Locate the body opener: first `{` before any `;` (a `;` first
        // means a body-less trait/extern declaration).
        let end = item_end(tokens, fn_idx);
        let mut body_start = fn_idx;
        while body_start < end {
            if tokens[body_start].is_punct('{') {
                break;
            }
            body_start += 1;
        }
        // The innermost qualifier region containing this fn names it.
        let qualified = qualifiers
            .iter()
            .filter(|(start, qend, _)| *start <= fn_idx && fn_idx < *qend)
            .max_by_key(|(start, ..)| *start)
            .map_or_else(|| name.clone(), |(_, _, ty)| format!("{ty}::{name}"));
        fns.push(ParsedFn {
            name,
            qualified,
            line: tokens[fn_idx].line,
            end_line: tokens.get(end.saturating_sub(1)).map_or(0, |t| t.line),
            body_start: body_start.min(end),
            body_end: end,
            in_test_region: test_mask.get(fn_idx).copied().unwrap_or(false),
        });
        // Continue *inside* the item so nested fns are found too.
        i = fn_idx + 2;
    }
    fns
}

/// Finds `impl`/`trait` regions: `(body_start_token, body_end_token,
/// type_name)` triples. For `impl Trait for Type` the name is `Type`.
fn qualifier_regions(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_impl = tokens[i].is_ident("impl");
        let is_trait = tokens[i].is_ident("trait");
        if !(is_impl || is_trait) {
            i += 1;
            continue;
        }
        // Scan the header up to the body `{` (angle-depth aware so
        // `impl<T: Fn() -> X>` generics do not end the header early).
        let mut angle = 0i32;
        let mut j = i + 1;
        let mut header_end = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && angle > 0 {
                if !tokens.get(j - 1).is_some_and(|p| p.is_punct('-')) {
                    angle -= 1;
                }
            } else if angle == 0 && (t.is_punct('{') || t.is_punct(';')) {
                header_end = Some(j);
                break;
            }
            j += 1;
        }
        let Some(open) = header_end else { break };
        if tokens[open].is_punct(';') {
            // `impl Trait for Type;` has no body; nothing to qualify.
            i = open + 1;
            continue;
        }
        // The qualifying type: last angle-depth-0 ident before `{` (or
        // before `where`), taken from after `for` when present.
        let header = &tokens[i + 1..open];
        let mut name = None;
        let mut depth = 0i32;
        for (h, t) in header.iter().enumerate() {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>')
                && depth > 0
                && !(h > 0 && header[h - 1].is_punct('-'))
            {
                depth -= 1;
            } else if depth == 0 && t.is_ident("where") {
                break;
            } else if depth == 0 && t.is_ident("for") {
                name = None; // restart after `for`: the impl'd-on type wins
            } else if depth == 0 && t.kind == TokenKind::Ident && t.text != "dyn" {
                name = Some(t.text.clone());
            }
        }
        let end = item_end(tokens, open);
        if let Some(name) = name {
            regions.push((open, end, name));
        }
        // Step inside the body: nested impls (rare) still register.
        i = open + 1;
    }
    regions
}

/// One resolved local binding from a `use` declaration: the in-file
/// name (`telemetry`, `Pool`, an `as` alias) and the first path segment
/// it came from (`selfheal_telemetry`, `crate`, `std`, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseBinding {
    /// The name usable in this file.
    pub local: String,
    /// The first segment of the `use` path (crate determiner).
    pub root: String,
}

/// Parses every `use` declaration into local-name → path-root bindings,
/// including brace groups, `as` aliases, and `self` leaves
/// (`use selfheal_telemetry::{self as telemetry, json::Json}` yields
/// `telemetry → selfheal_telemetry` and `Json → selfheal_telemetry`).
#[must_use]
pub fn parse_use_decls(tokens: &[Token]) -> Vec<UseBinding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("use") {
            i += 1;
            continue;
        }
        // Collect this declaration's tokens up to the `;`.
        let mut end = i + 1;
        let mut depth = 0i32;
        while end < tokens.len() {
            let t = &tokens[end];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                break;
            }
            end += 1;
        }
        let decl = &tokens[i + 1..end.min(tokens.len())];
        let root = decl
            .iter()
            .find(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone());
        if let Some(root) = root {
            collect_use_leaves(decl, &root, &mut out);
        }
        i = end + 1;
    }
    out
}

/// Walks a `use` declaration's tokens emitting leaf bindings.
fn collect_use_leaves(decl: &[Token], root: &str, out: &mut Vec<UseBinding>) {
    let mut k = 0;
    while k < decl.len() {
        let t = &decl[k];
        if t.kind != TokenKind::Ident || t.is_ident("use") || t.is_ident("as") {
            k += 1;
            continue;
        }
        let next = decl.get(k + 1);
        let next2 = decl.get(k + 2);
        // A segment continued by `::` is not a leaf.
        if next.is_some_and(|n| n.is_punct(':')) && next2.is_some_and(|n| n.is_punct(':')) {
            k += 1;
            continue;
        }
        // `ident as alias` — the alias is the local name.
        if next.is_some_and(|n| n.is_ident("as")) {
            if let Some(alias) = next2.filter(|a| a.kind == TokenKind::Ident) {
                out.push(UseBinding {
                    local: alias.text.clone(),
                    root: root.to_string(),
                });
            }
            k += 3;
            continue;
        }
        // Plain leaf: `ident` followed by `,`, `}` or end-of-decl. A
        // bare `self` leaf binds the root segment itself.
        let local = if t.is_ident("self") {
            root.to_string()
        } else {
            t.text.clone()
        };
        out.push(UseBinding {
            local,
            root: root.to_string(),
        });
        k += 1;
    }
}

/// How a method binds `self`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelfKind {
    /// No `self` — a free function or associated constructor.
    None,
    /// `self` or `mut self` by value.
    Value,
    /// `&self` (possibly with a lifetime).
    Ref,
    /// `&mut self`.
    RefMut,
}

/// One non-`self` parameter of a parsed signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// The binding name (pattern parameters record the last ident).
    pub name: String,
    /// The type, rendered as space-joined token texts (e.g. `f64`,
    /// `& [ f64 ]`, `Option < f64 >`).
    pub ty: String,
    /// Source line of the parameter name.
    pub line: u32,
}

/// A parsed `pub fn` signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// The function name.
    pub name: String,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Idents appearing in the attributes attached to this fn.
    pub attr_idents: Vec<String>,
    /// How the function binds `self`.
    pub self_kind: SelfKind,
    /// The non-`self` parameters in order.
    pub params: Vec<Param>,
    /// Return type as token texts (`f64`, `Option < Volts >`); empty
    /// for `()`-returning functions.
    pub ret: Vec<String>,
    /// True when the fn lies inside a `#[cfg(test)]` region.
    pub in_test_region: bool,
}

/// Parses every `pub fn` signature in the token stream.
///
/// Visibility modifiers `pub(crate)`, `pub(super)` etc. count as `pub`
/// here; the unit-safety lints care about any API a reviewer can call
/// from outside the defining module.
#[must_use]
pub fn parse_pub_fns(tokens: &[Token], test_mask: &[bool]) -> Vec<FnSig> {
    let mut sigs = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let pub_idx = i;
        let mut j = i + 1;
        // pub(crate) / pub(in path)
        if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            let mut depth = 0i32;
            while j < tokens.len() {
                if tokens[j].is_punct('(') {
                    depth += 1;
                } else if tokens[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Qualifiers before `fn`.
        while tokens.get(j).is_some_and(|t| {
            t.is_ident("const") || t.is_ident("async") || t.is_ident("unsafe") || t.is_ident("extern")
        }) || tokens.get(j).is_some_and(|t| t.kind == TokenKind::Literal)
        {
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_ident("fn")) {
            i += 1;
            continue;
        }
        let fn_idx = j;
        let Some(name_tok) = tokens.get(j + 1) else {
            break;
        };
        let name = name_tok.text.clone();
        j += 2;
        // Generics.
        if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut angle = 0i32;
            while j < tokens.len() {
                if tokens[j].is_punct('<') {
                    angle += 1;
                } else if tokens[j].is_punct('>') {
                    // A `->` cannot appear inside a generics list.
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            i = j;
            continue;
        }
        let (self_kind, params, after_params) = parse_params(tokens, j);
        j = after_params;
        // Return type.
        let mut ret = Vec::new();
        if tokens.get(j).is_some_and(|t| t.is_punct('-'))
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('>'))
        {
            j += 2;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                    break;
                }
                ret.push(t.text.clone());
                j += 1;
            }
        }
        sigs.push(FnSig {
            name,
            line: tokens[fn_idx].line,
            attr_idents: attrs_before(tokens, pub_idx),
            self_kind,
            params,
            ret,
            in_test_region: test_mask.get(fn_idx).copied().unwrap_or(false),
        });
        i = j.max(i + 1);
    }
    sigs
}

/// Parses the parenthesised parameter list starting at the `(` token at
/// `open`. Returns the `self` kind, the non-`self` parameters, and the
/// index just past the matching `)`.
fn parse_params(tokens: &[Token], open: usize) -> (SelfKind, Vec<Param>, usize) {
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut end = open;
    let mut boundaries = vec![open];
    while end < tokens.len() {
        let t = &tokens[end];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct('<') && depth == 1 {
            angle += 1;
        } else if t.is_punct('>') && depth == 1 && angle > 0 {
            // Ignore the `>` of `->` (always preceded by `-`).
            if !tokens.get(end - 1).is_some_and(|p| p.is_punct('-')) {
                angle -= 1;
            }
        } else if t.is_punct(',') && depth == 1 && angle == 0 {
            boundaries.push(end);
        }
        end += 1;
    }
    boundaries.push(end.min(tokens.len()));

    let mut self_kind = SelfKind::None;
    let mut params = Vec::new();
    for pair in boundaries.windows(2) {
        let slice = &tokens[(pair[0] + 1).min(pair[1])..pair[1]];
        if slice.is_empty() {
            continue;
        }
        if let Some(kind) = self_param_kind(slice) {
            self_kind = kind;
            continue;
        }
        // Name: the ident immediately before the first top-level `:`
        // (skipping a `mut` qualifier is implicit — `mut x : T` still
        // has `x` right before the colon).
        let mut colon = None;
        let mut a = 0i32;
        for (k, t) in slice.iter().enumerate() {
            if t.is_punct('<') {
                a += 1;
            } else if t.is_punct('>') && a > 0 {
                a -= 1;
            } else if t.is_punct(':') && a == 0 {
                // `::` is two colon tokens; require the next not to be `:`
                // and the previous not to be `:`.
                let prev_colon = k > 0 && slice[k - 1].is_punct(':');
                let next_colon = slice.get(k + 1).is_some_and(|t| t.is_punct(':'));
                if !prev_colon && !next_colon {
                    colon = Some(k);
                    break;
                }
            }
        }
        let Some(colon) = colon else { continue };
        let Some(name_tok) = slice[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident)
        else {
            continue;
        };
        let ty = slice[colon + 1..]
            .iter()
            .map(|t| if t.text.is_empty() { "\"\"".to_string() } else { t.text.clone() })
            .collect::<Vec<_>>()
            .join(" ");
        params.push(Param {
            name: name_tok.text.clone(),
            ty,
            line: name_tok.line,
        });
    }
    (self_kind, params, end + 1)
}

/// One `pub` field of a `pub struct`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructField {
    /// Name of the owning struct.
    pub struct_name: String,
    /// The field name.
    pub name: String,
    /// The type, rendered as space-joined token texts (`f64`,
    /// `Vec < f64 >`, `Option < Seconds >`).
    pub ty: String,
    /// Source line of the field name.
    pub line: u32,
    /// True when the struct lies inside a `#[cfg(test)]` region.
    pub in_test_region: bool,
}

/// Parses every `pub` named field of every `pub struct` in the token
/// stream. Tuple and unit structs have no named fields and are skipped;
/// private fields are skipped (they are not API surface).
#[must_use]
pub fn parse_pub_struct_fields(tokens: &[Token], test_mask: &[bool]) -> Vec<StructField> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let pub_idx = i;
        let mut j = skip_vis_modifier(tokens, i + 1);
        if !tokens.get(j).is_some_and(|t| t.is_ident("struct")) {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(j + 1) else {
            break;
        };
        let struct_name = name_tok.text.clone();
        j += 2;
        // Generics and any `where` clause: skip forward to the body
        // opener (`{`), a tuple opener (`(`) or a unit `;`.
        let mut angle = 0i32;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') && angle > 0 {
                angle -= 1;
            } else if angle == 0 && (t.is_punct('{') || t.is_punct('(') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('{')) {
            // Tuple or unit struct: no named fields to inspect.
            i = j.max(i + 1);
            continue;
        }
        let in_test_region = test_mask.get(pub_idx).copied().unwrap_or(false);
        let body_end = item_end(tokens, j);
        fields.extend(parse_fields_in_body(
            tokens,
            j,
            body_end,
            &struct_name,
            in_test_region,
        ));
        i = body_end;
    }
    fields
}

/// Skips a `( ... )` visibility qualifier (`pub(crate)`, `pub(in x)`)
/// starting just after `pub`; returns the index of the following token.
fn skip_vis_modifier(tokens: &[Token], mut j: usize) -> usize {
    if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
    }
    j
}

/// Extracts the `pub` named fields between a struct's `{` at `open` and
/// its closing brace (exclusive end index `end`).
fn parse_fields_in_body(
    tokens: &[Token],
    open: usize,
    end: usize,
    struct_name: &str,
    in_test_region: bool,
) -> Vec<StructField> {
    let mut fields = Vec::new();
    let mut j = open + 1;
    while j < end {
        // Skip field attributes (`#[serde(..)]`, doc attrs, ...).
        while j < end
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = read_attr(tokens, j + 1).1;
        }
        if j >= end || tokens[j].is_punct('}') {
            break;
        }
        let is_pub = tokens[j].is_ident("pub");
        if is_pub {
            j = skip_vis_modifier(tokens, j + 1);
        }
        // Field name and `:`.
        let name_ok = tokens.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
            && tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && !tokens.get(j + 2).is_some_and(|t| t.is_punct(':'));
        if !name_ok {
            // Not a field start (malformed or past the last field) —
            // resync at the next top-level comma.
            j = next_field_boundary(tokens, j, end);
            continue;
        }
        let name_tok = &tokens[j];
        let ty_start = j + 2;
        let ty_end = next_field_boundary(tokens, ty_start, end);
        if is_pub {
            // The boundary sits just past a `,` or on the closing `}`;
            // the type tokens run up to (not including) either.
            let ty_last = if ty_end > ty_start && tokens[ty_end - 1].is_punct(',') {
                ty_end - 1
            } else {
                ty_end
            };
            let ty = tokens[ty_start..ty_last]
                .iter()
                .map(|t| t.text.clone())
                .collect::<Vec<_>>()
                .join(" ");
            fields.push(StructField {
                struct_name: struct_name.to_string(),
                name: name_tok.text.clone(),
                ty,
                line: name_tok.line,
                in_test_region,
            });
        }
        j = ty_end;
    }
    fields
}

/// Returns the index just past the `,` ending the field whose type starts
/// at `from` (or `end` when the struct body closes first). Nested
/// brackets of any shape are skipped.
fn next_field_boundary(tokens: &[Token], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut j = from;
    while j < end {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct('<') && depth == 0 {
            angle += 1;
        } else if t.is_punct('>') && depth == 0 && angle > 0 {
            if !tokens.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('-')) {
                angle -= 1;
            }
        } else if t.is_punct(',') && depth == 0 && angle == 0 {
            return j + 1;
        }
        j += 1;
    }
    end
}

/// Classifies a parameter slice as a `self` parameter, if it is one.
fn self_param_kind(slice: &[Token]) -> Option<SelfKind> {
    let mut k = 0;
    let by_ref = slice.get(k).is_some_and(|t| t.is_punct('&'));
    if by_ref {
        k += 1;
        if slice.get(k).is_some_and(|t| t.kind == TokenKind::Lifetime) {
            k += 1;
        }
    }
    let is_mut = slice.get(k).is_some_and(|t| t.is_ident("mut"));
    if is_mut {
        k += 1;
    }
    if slice.get(k).is_some_and(|t| t.is_ident("self")) && slice.len() == k + 1 {
        Some(match (by_ref, is_mut) {
            (true, true) => SelfKind::RefMut,
            (true, false) => SelfKind::Ref,
            (false, _) => SelfKind::Value,
        })
    } else {
        None
    }
}

/// Collects idents from the contiguous run of attributes immediately
/// preceding token index `at` (e.g. `#[must_use]`, `#[inline]`).
fn attrs_before(tokens: &[Token], at: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut end = at;
    while end >= 2 && tokens[end - 1].is_punct(']') {
        // Walk back to the matching `[`.
        let mut depth = 0i32;
        let mut k = end - 1;
        loop {
            if tokens[k].is_punct(']') {
                depth += 1;
            } else if tokens[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return idents;
            }
            k -= 1;
        }
        if k == 0 || !tokens[k - 1].is_punct('#') {
            break;
        }
        for t in &tokens[k..end - 1] {
            if t.kind == TokenKind::Ident {
                idents.push(t.text.clone());
            }
        }
        end = k - 1;
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn sigs(src: &str) -> Vec<FnSig> {
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        parse_pub_fns(&lexed.tokens, &mask)
    }

    #[test]
    fn simple_signature_parses() {
        let s = sigs("pub fn stress(vdd_volts: f64, temp_c: f64) -> f64 { 0.0 }");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "stress");
        assert_eq!(s[0].self_kind, SelfKind::None);
        assert_eq!(s[0].params.len(), 2);
        assert_eq!(s[0].params[0].name, "vdd_volts");
        assert_eq!(s[0].params[0].ty, "f64");
        assert_eq!(s[0].ret, vec!["f64"]);
    }

    #[test]
    fn self_and_generics_and_option_types() {
        let s = sigs(
            "impl X { pub fn delay_at<T: Into<usize>>(&self, loc: T) -> Option<Nanoseconds> { None } }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].self_kind, SelfKind::Ref);
        assert_eq!(s[0].params.len(), 1);
        assert_eq!(s[0].params[0].ty, "T");
        assert_eq!(s[0].ret, vec!["Option", "<", "Nanoseconds", ">"]);
    }

    #[test]
    fn attrs_are_attached() {
        let s = sigs("#[must_use]\n#[inline]\npub fn margin(&self) -> Millivolts { m }");
        assert_eq!(s.len(), 1);
        assert!(s[0].attr_idents.iter().any(|a| a == "must_use"));
        assert!(s[0].attr_idents.iter().any(|a| a == "inline"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = r"
            pub fn live(x: f64) -> f64 { x }
            #[cfg(test)]
            mod tests {
                pub fn helper(vdd: f64) -> f64 { vdd }
            }
        ";
        let s = sigs(src);
        assert_eq!(s.len(), 2);
        assert!(!s[0].in_test_region);
        assert!(s[1].in_test_region);
    }

    #[test]
    fn test_attr_fn_is_masked() {
        let src = "#[test]\nfn check() { helper(); }\npub fn after(x: f64) {}";
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        let helper = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("helper"))
            .unwrap();
        let after = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("after"))
            .unwrap();
        assert!(mask[helper]);
        assert!(!mask[after]);
    }

    #[test]
    fn fn_pointer_params_do_not_confuse_the_splitter() {
        let s = sigs("pub fn apply(f: impl Fn(f64, f64) -> f64, seed_secs: f64) -> f64 { 0.0 }");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].params.len(), 2);
        assert_eq!(s[0].params[1].name, "seed_secs");
        assert_eq!(s[0].params[1].ty, "f64");
    }

    #[test]
    fn pub_crate_counts_as_pub() {
        let s = sigs("pub(crate) fn freq_mhz(&self) -> f64 { 0.0 }");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "freq_mhz");
    }

    fn fields(src: &str) -> Vec<StructField> {
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        parse_pub_struct_fields(&lexed.tokens, &mask)
    }

    #[test]
    fn pub_struct_fields_parse_with_types() {
        let src = r"
            pub struct Report {
                pub worst_mv: f64,
                pub per_core: Vec<f64>,
                internal: u32,
                pub label: String,
            }
        ";
        let f = fields(src);
        let names: Vec<(&str, &str)> = f
            .iter()
            .map(|x| (x.name.as_str(), x.ty.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("worst_mv", "f64"),
                ("per_core", "Vec < f64 >"),
                ("label", "String"),
            ]
        );
        assert!(f.iter().all(|x| x.struct_name == "Report"));
    }

    #[test]
    fn private_structs_and_tuple_structs_are_skipped() {
        let src = r"
            struct Hidden { pub x_mv: f64 }
            pub struct Pair(f64, f64);
            pub struct Unit;
        ";
        assert!(fields(src).is_empty());
    }

    #[test]
    fn struct_field_attrs_and_generics_do_not_confuse_the_parser() {
        let src = r#"
            pub struct Config<T: Clone> where T: Default {
                #[serde(default)]
                pub margin_mv: f64,
                pub lookup: HashMap<String, Vec<(f64, f64)>>,
                pub inner: T,
            }
        "#;
        let f = fields(src);
        assert_eq!(f.len(), 3);
        assert_eq!(f[0].name, "margin_mv");
        assert_eq!(f[0].ty, "f64");
        assert_eq!(f[1].name, "lookup");
        assert_eq!(f[2].ty, "T");
    }

    #[test]
    fn last_field_without_trailing_comma_keeps_its_type() {
        let f = fields("pub struct S { pub alpha: f64 }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].ty, "f64");
    }

    fn all_fns(src: &str) -> Vec<ParsedFn> {
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        parse_all_fns(&lexed.tokens, &mask)
    }

    #[test]
    fn all_fns_records_private_and_qualified_names() {
        let src = r"
            fn free_helper() {}
            impl Pool {
                pub fn par_map(&self) {}
                fn worker_loop() {}
            }
            impl fmt::Display for Severity {
                fn fmt(&self) {}
            }
            trait Sink {
                fn flush(&self) {}
            }
        ";
        let f = all_fns(src);
        let quals: Vec<&str> = f.iter().map(|x| x.qualified.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "free_helper",
                "Pool::par_map",
                "Pool::worker_loop",
                "Severity::fmt",
                "Sink::flush",
            ]
        );
    }

    #[test]
    fn all_fns_body_ranges_cover_the_braces() {
        let src = "fn a() { inner(); }\nfn b();";
        let f = all_fns(src);
        assert_eq!(f.len(), 2);
        let lexed = lex(src);
        assert!(lexed.tokens[f[0].body_start].is_punct('{'));
        assert!(lexed.tokens[f[0].body_end - 1].is_punct('}'));
        // Declarations have an empty body range.
        assert_eq!(f[1].body_start, f[1].body_end);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[0].end_line, 1);
    }

    #[test]
    fn all_fns_generic_impl_for_type_uses_the_for_type() {
        let src = "impl<S: Strategy, F: Fn(S::Value) -> U> Strategy for Map<S, F> { fn generate(&self) {} }";
        let f = all_fns(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].qualified, "Map::generate");
    }

    #[test]
    fn all_fns_marks_test_regions() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} }";
        let f = all_fns(src);
        assert!(!f[0].in_test_region);
        assert!(f[1].in_test_region);
    }

    #[test]
    fn use_decls_bind_leaves_aliases_and_self() {
        let src = r"
            use selfheal_telemetry::{self as telemetry, json::Json, manifest::fnv1a};
            use selfheal_runtime::{Pool, SeedSequence};
            use selfheal_bti as bti;
            use std::time::Instant;
        ";
        let got = parse_use_decls(&lex(src).tokens);
        let pairs: Vec<(&str, &str)> = got
            .iter()
            .map(|b| (b.local.as_str(), b.root.as_str()))
            .collect();
        assert_eq!(
            pairs,
            vec![
                ("telemetry", "selfheal_telemetry"),
                ("Json", "selfheal_telemetry"),
                ("fnv1a", "selfheal_telemetry"),
                ("Pool", "selfheal_runtime"),
                ("SeedSequence", "selfheal_runtime"),
                ("bti", "selfheal_bti"),
                ("Instant", "std"),
            ]
        );
    }

    #[test]
    fn cfg_test_structs_are_masked() {
        let src = r"
            #[cfg(test)]
            pub struct Probe { pub vdd_volts: f64 }
            pub struct Live { pub vdd_volts: f64 }
        ";
        let f = fields(src);
        assert_eq!(f.len(), 2);
        assert!(f[0].in_test_region);
        assert!(!f[1].in_test_region);
    }
}
