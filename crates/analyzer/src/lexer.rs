//! A minimal, line-aware Rust lexer.
//!
//! The analyzer deliberately avoids a full parser: every lint it
//! implements is expressible over a token stream plus a little context
//! (brace depth, `#[cfg(test)]` regions). The lexer therefore only has
//! to get three things right:
//!
//! * **comments and strings never produce tokens** — a `partial_cmp`
//!   inside a doc comment or a string literal must not trip a lint;
//! * **every token knows its line** — findings are reported as
//!   `file:line` and must be clickable;
//! * **numeric literals keep their text** — the physical-range lint
//!   parses them back into `f64`.
//!
//! Everything else (generics, lifetimes, macros) is passed through as
//! plain punctuation/identifier tokens for the lints to pattern-match.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `pub`, `partial_cmp`, ...).
    Ident,
    /// An integer or float literal, including suffixes (`1.5f64`).
    Number,
    /// A string, raw-string, byte-string, or char literal (text dropped).
    Literal,
    /// A lifetime such as `'a` (text without the quote).
    Lifetime,
    /// A single punctuation character (`.`, `(`, `::` is two tokens).
    Punct,
}

/// One lexeme with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The classification of this lexeme.
    pub kind: TokenKind,
    /// The lexeme text (empty for [`TokenKind::Literal`]).
    pub text: String,
    /// 1-based source line on which the lexeme starts.
    pub line: u32,
}

impl Token {
    /// True when this token is an identifier equal to `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A comment-based lint suppression: `// analyzer: allow(lint-id)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment appears on (suppresses that line and the next).
    pub line: u32,
    /// Lint ids listed inside `allow(...)`.
    pub lints: Vec<String>,
}

/// A purity-exemption annotation:
/// `// analyzer: trust(clock): <justification>`.
///
/// Attaches to the function whose body contains the comment (or the
/// next function below it) and strips the listed taint kinds from that
/// function's *effective* taint — both its own sinks and anything its
/// callees propagate up. The justification after `):` is mandatory: a
/// trust without a recorded reason does not parse and therefore does
/// not exempt anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trust {
    /// 1-based line the comment appears on.
    pub line: u32,
    /// Taint kind names listed inside `trust(...)` (`clock`, `env`,
    /// `io`, `rng`, `hash-iter`).
    pub kinds: Vec<String>,
    /// The free-text justification following `):`.
    pub justification: String,
}

/// The output of [`lex`]: tokens plus suppression comments.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All `// analyzer: allow(...)` comments.
    pub allows: Vec<Allow>,
    /// All `// analyzer: trust(...): ...` comments.
    pub trusts: Vec<Trust>,
}

/// Lexes `source` into tokens, recording `analyzer: allow` comments.
///
/// Unterminated strings/comments are tolerated (the rest of the file is
/// consumed silently); the analyzer lints what it can see.
#[must_use]
pub fn lex(source: &str) -> LexedFile {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' | 'b' if self.starts_raw_or_byte_string() => self.raw_or_byte_string(),
                '\'' => self.char_or_lifetime(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or(' ');
                    self.out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: c.to_string(),
                        line,
                    });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        if let Some(allow) = parse_allow(&text, line) {
            self.out.allows.push(allow);
        }
        if let Some(trust) = parse_trust(&text, line) {
            self.out.trusts.push(trust);
        }
    }

    fn block_comment(&mut self) {
        // `/*` already peeked; consume with nesting.
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            text: String::new(),
            line,
        });
    }

    /// Detects `r"`, `r#...#"`, `b"`, `br"`, `br#...` starts.
    fn starts_raw_or_byte_string(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == Some('b') && self.peek(1) == Some('r') {
            i = 2;
        } else if self.peek(0) == Some('b') && self.peek(1) == Some('"') {
            return true;
        } else if self.peek(0) != Some('r') {
            return false;
        }
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn raw_or_byte_string(&mut self) {
        let line = self.line;
        if self.peek(0) == Some('b') {
            self.bump();
        }
        let raw = self.peek(0) == Some('r');
        if raw {
            self.bump();
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        if raw {
            // Scan for `"` followed by `hashes` hashes.
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for k in 0..hashes {
                        if self.peek(k) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        } else {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '"' => break,
                    _ => {}
                }
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            text: String::new(),
            line,
        });
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // the quote
        // Lifetime: 'ident not followed by a closing quote.
        if self
            .peek(0)
            .is_some_and(|c| c.is_alphabetic() || c == '_')
            && self.peek(1) != Some('\'')
        {
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text,
                line,
            });
            return;
        }
        // Char literal: consume until the closing quote.
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal,
            text: String::new(),
            line,
        });
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Ident,
            text,
            line,
        });
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut seen_dot = false;
        let mut seen_exp = false;
        while let Some(c) = self.peek(0) {
            match c {
                '0'..='9' | '_' => {
                    text.push(c);
                    self.bump();
                }
                'x' | 'o' if text == "0" => {
                    // Hex/octal: consume digits and letters greedily.
                    text.push(c);
                    self.bump();
                    while let Some(d) = self.peek(0) {
                        if d.is_alphanumeric() || d == '_' {
                            text.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    break;
                }
                '.' if !seen_dot
                    && !seen_exp
                    && self.peek(1).is_some_and(|d| d.is_ascii_digit()) =>
                {
                    seen_dot = true;
                    text.push(c);
                    self.bump();
                }
                'e' | 'E'
                    if !seen_exp
                        && self.peek(1).is_some_and(|d| {
                            d.is_ascii_digit()
                                || ((d == '+' || d == '-')
                                    && self.peek(2).is_some_and(|e| e.is_ascii_digit()))
                        }) =>
                {
                    seen_exp = true;
                    text.push(c);
                    self.bump();
                    if let Some(sign @ ('+' | '-')) = self.peek(0) {
                        text.push(sign);
                        self.bump();
                    }
                }
                // Type suffix (f64, u32, usize, ...).
                c if c.is_alphabetic() => {
                    while let Some(d) = self.peek(0) {
                        if d.is_alphanumeric() || d == '_' {
                            text.push(d);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Number,
            text,
            line,
        });
    }
}

/// Parses `// analyzer: allow(a, b)` comment bodies.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("analyzer:")?.trim();
    let rest = rest.strip_prefix("allow(")?;
    let inner = rest.split(')').next()?;
    let lints: Vec<String> = inner
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if lints.is_empty() {
        None
    } else {
        Some(Allow { line, lints })
    }
}

/// Parses `// analyzer: trust(clock, env): justification` comment
/// bodies. Returns `None` when the justification is missing or empty —
/// an unjustified trust must not silently exempt anything.
fn parse_trust(comment: &str, line: u32) -> Option<Trust> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("analyzer:")?.trim();
    let rest = rest.strip_prefix("trust(")?;
    let (inner, after) = rest.split_once(')')?;
    let kinds: Vec<String> = inner
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let justification = after.trim().strip_prefix(':')?.trim().to_string();
    if kinds.is_empty() || justification.is_empty() {
        None
    } else {
        Some(Trust {
            line,
            kinds,
            justification,
        })
    }
}

/// Parses a numeric literal's text (as lexed) into a value, stripping
/// underscores and any type suffix. Returns `None` for hex/octal.
#[must_use]
pub fn literal_value(text: &str) -> Option<f64> {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return None;
    }
    let cleaned: String = text.chars().filter(|c| *c != '_').collect();
    // Strip a trailing type suffix such as f64/u32/usize.
    let stripped = cleaned
        .strip_suffix("f64")
        .or_else(|| cleaned.strip_suffix("f32"))
        .or_else(|| {
            let trimmed = cleaned.trim_end_matches(|c: char| c.is_ascii_alphanumeric());
            // Integer suffixes start with i/u; only strip when what's
            // left still parses.
            let tail = &cleaned[trimmed.len()..];
            if tail.starts_with('i') || tail.starts_with('u') {
                Some(trimmed)
            } else {
                None
            }
        })
        .unwrap_or(&cleaned);
    stripped.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r##"
            // partial_cmp in a comment
            /* unwrap in /* a nested */ block */
            let s = "partial_cmp .unwrap()";
            let r = r#"expect("x")"#;
            let c = 'x';
            real_ident();
        "##;
        assert_eq!(idents(src), vec!["let", "s", "let", "r", "let", "c", "real_ident"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "/* a\nb\nc */\nfoo();\n\"x\ny\"\nbar();";
        let lexed = lex(src);
        let foo = lexed.tokens.iter().find(|t| t.is_ident("foo")).unwrap();
        let bar = lexed.tokens.iter().find(|t| t.is_ident("bar")).unwrap();
        assert_eq!(foo.line, 4);
        assert_eq!(bar.line, 7);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
    }

    #[test]
    fn numbers_keep_their_text() {
        let lexed = lex("let x = 1_000.5e-3f64 + 0.3 + 2f64;");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["1_000.5e-3f64", "0.3", "2f64"]);
        assert_eq!(literal_value("1_000.5e-3f64"), Some(1.0005));
        assert_eq!(literal_value("0.3"), Some(0.3));
        assert_eq!(literal_value("2f64"), Some(2.0));
        assert_eq!(literal_value("0xff"), None);
    }

    #[test]
    fn allow_comments_are_collected() {
        let src = "foo();\n// analyzer: allow(unwrap-in-lib, bare-physical-f64)\nbar();\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.allows,
            vec![Allow {
                line: 2,
                lints: vec!["unwrap-in-lib".into(), "bare-physical-f64".into()],
            }]
        );
    }

    #[test]
    fn trust_comments_require_a_justification() {
        let src = "\
// analyzer: trust(clock): trace timestamps never feed results\n\
// analyzer: trust(env)\n\
// analyzer: trust(io, env): cache reads verify their key\n\
// analyzer: trust(): empty kinds\n";
        let lexed = lex(src);
        assert_eq!(
            lexed.trusts,
            vec![
                Trust {
                    line: 1,
                    kinds: vec!["clock".into()],
                    justification: "trace timestamps never feed results".into(),
                },
                Trust {
                    line: 3,
                    kinds: vec!["io".into(), "env".into()],
                    justification: "cache reads verify their key".into(),
                },
            ]
        );
    }

    #[test]
    fn method_call_after_float_is_not_part_of_the_number() {
        let lexed = lex("1.0f64.max(2.0); x.partial_cmp(y)");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("max")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("partial_cmp")));
    }
}
