//! Workspace-wide call graph, built from the per-file token streams.
//!
//! No name resolution beyond what tokens give us: calls are resolved by
//! name within the defining crate (same file preferred for free
//! functions, so sibling `src/bin/*.rs` targets cannot alias each
//! other) and across crates through the file's `use` declarations.
//! Method calls (`.name(`) are over-approximated to every workspace
//! method of that name in the own crate plus every `use`-reachable
//! crate — for a determinism *gate* an extra edge is safe, a missing
//! edge is not.
//!
//! Besides edges, extraction records per function:
//!
//! * **taint sinks** — clock reads, `std::env`, filesystem/process IO,
//!   unseeded RNG construction, hash-order iteration (see
//!   [`crate::purity`] for the lattice);
//! * **lock acquisitions** — direct `.lock()` / zero-arg `.read()` /
//!   `.write()` calls with their guard scopes, feeding the lock-order
//!   lint;
//! * **deterministic-root evidence** — call sites inside
//!   `par_map`/`par_map_indexed`/`par_chunks` closures and inside
//!   `get_or_compute` argument groups.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::lexer::{LexedFile, Token, TokenKind, Trust};
use crate::lints::FileContext;
use crate::purity::{taint_bit, CLOCK, ENV, HASH_ITER, IO, RNG};
use crate::sig::{parse_all_fns, parse_use_decls, test_region_mask};

/// Why a function is a deterministic root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RootKind {
    /// The trap-kinetics kernel entry point (`TrapBank::advance_all`).
    Kernel,
    /// Invoked inside a `par_map`/`par_map_indexed`/`par_chunks`
    /// argument group (closure body or bare fn reference).
    ParClosure,
    /// Invoked inside a `get_or_compute` argument group — its result
    /// flows into a content-addressed cache namespace.
    CacheFeed,
}

impl RootKind {
    /// Human phrasing used in findings.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            RootKind::Kernel => "the trap-kinetics kernel entry point",
            RootKind::ParClosure => "invoked inside a par_map/par_chunks closure",
            RootKind::CacheFeed => "feeds a content-addressed cache namespace",
        }
    }
}

/// One function node of the workspace call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Package name of the defining crate.
    pub crate_name: String,
    /// Workspace-relative path of the defining file.
    pub file: PathBuf,
    /// `Type::name`-qualified function name.
    pub qualified: String,
    /// Source line of the `fn` keyword.
    pub line: u32,
    /// Taint kinds this function's own body touches (bitset).
    pub own_taint: u8,
    /// Taint kinds exempted by a `// analyzer: trust(...)` annotation.
    pub trusted: u8,
    /// True when the body draws randomness through the `SeedSequence`
    /// contract (`.rng(`, `seed_from_u64`, `SeedSequence`).
    pub seeded: bool,
    /// Per-sink evidence: (taint bit, construct, line) — used to print
    /// the tail of a tainted call path.
    pub sink_notes: Vec<(u8, String, u32)>,
    /// Direct lock acquisitions in body order.
    pub locks: Vec<LockAcquire>,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// Source line of the call site.
    pub line: u32,
    /// Token position of the call site inside the caller's file.
    pub pos: usize,
    /// The root group the call site sits in, if any.
    pub root: Option<RootKind>,
}

/// A direct `Mutex`/`RwLock` acquisition inside one function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAcquire {
    /// The lock's name (nearest base identifier before the call).
    pub name: String,
    /// Source line of the acquisition.
    pub line: u32,
    /// Token position of the acquisition.
    pub pos: usize,
    /// Token position where the guard's enclosing block closes — the
    /// conservative end of the held region.
    pub scope_end: usize,
}

/// The assembled workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test function nodes, in (file, line) order.
    pub nodes: Vec<FnNode>,
    /// Out-edges per node, deduplicated by callee.
    pub edges: Vec<Vec<Edge>>,
    /// Root node indices with the strongest reason each qualified.
    pub roots: BTreeMap<usize, RootKind>,
}

/// Per-file artifacts the graph is assembled from.
#[derive(Debug)]
pub struct FileGraph {
    rel: PathBuf,
    crate_name: String,
    fns: Vec<RawFn>,
    uses: Vec<(String, String)>, // local name -> path root segment
    trusts: Vec<Trust>,
}

/// One function with unresolved call sites.
#[derive(Debug)]
struct RawFn {
    qualified: String,
    line: u32,
    end_line: u32,
    in_test_region: bool,
    own_taint: u8,
    seeded: bool,
    sink_notes: Vec<(u8, String, u32)>,
    locks: Vec<LockAcquire>,
    calls: Vec<RawCall>,
}

/// An unresolved call site.
#[derive(Debug)]
struct RawCall {
    /// Path segments; a method call or bare name has exactly one.
    segments: Vec<String>,
    /// True for `.name(` receiver calls.
    is_method: bool,
    line: u32,
    pos: usize,
    root: Option<RootKind>,
}

/// Functions whose argument groups mark deterministic roots.
const PAR_ENTRY_FNS: [&str; 3] = ["par_map", "par_map_indexed", "par_chunks"];

/// `std::env` accessors that make a function env-tainted.
const ENV_FNS: [&str; 9] = [
    "var", "vars", "var_os", "args", "args_os", "current_dir", "temp_dir", "set_var", "remove_var",
];

/// Socket-surface method calls that make a function io-tainted: the
/// accept/read/write primitives the fleet transport funnels through its
/// single trusted chokepoint. Matched only as method calls (`.name(`),
/// so free functions with these names stay clean.
const SOCKET_METHOD_SINKS: [&str; 3] = ["accept", "read_exact", "write_all"];

/// Extracts one file's graph contribution from its lexed form.
#[must_use]
pub fn extract_file(rel: &std::path::Path, lexed: &LexedFile, ctx: &FileContext) -> FileGraph {
    let tokens = &lexed.tokens;
    let mask = test_region_mask(tokens);
    let parsed = parse_all_fns(tokens, &mask);
    let uses = parse_use_decls(tokens)
        .into_iter()
        .map(|b| (b.local, b.root))
        .collect();
    let file_has_rwlock = tokens.iter().any(|t| t.is_ident("RwLock"));

    let mut fns = Vec::new();
    for pf in &parsed {
        if pf.in_test_region {
            continue;
        }
        let body = pf.body_start..pf.body_end;
        let root_groups = root_group_ranges(tokens, body.clone());
        let (own_taint, seeded, sink_notes) = scan_sinks(tokens, body.clone());
        let locks = scan_locks(tokens, body.clone(), file_has_rwlock);
        let calls = scan_calls(tokens, body, &root_groups);
        fns.push(RawFn {
            qualified: pf.qualified.clone(),
            line: pf.line,
            end_line: pf.end_line,
            in_test_region: pf.in_test_region,
            own_taint,
            seeded,
            sink_notes,
            locks,
            calls,
        });
    }
    FileGraph {
        rel: rel.to_path_buf(),
        crate_name: ctx.crate_name.clone(),
        fns,
        uses,
        trusts: lexed.trusts.clone(),
    }
}

/// Finds `par_map(`/`par_chunks(`/`get_or_compute(` argument-group
/// token ranges inside `body`, tagged with the root kind they induce.
fn root_group_ranges(
    tokens: &[Token],
    body: std::ops::Range<usize>,
) -> Vec<(std::ops::Range<usize>, RootKind)> {
    let mut groups = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let t = &tokens[i];
        let kind = if t.kind == TokenKind::Ident && PAR_ENTRY_FNS.contains(&t.text.as_str()) {
            Some(RootKind::ParClosure)
        } else if t.is_ident("get_or_compute") {
            Some(RootKind::CacheFeed)
        } else {
            None
        };
        if let Some(kind) = kind {
            if tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                let close = matching_close(tokens, i + 1, body.end);
                groups.push((i + 2..close, kind));
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    groups
}

/// Index of the token closing the group opened at `open` (exclusive cap
/// at `limit`). Tracks all bracket shapes so nested closures are safe.
fn matching_close(tokens: &[Token], open: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < limit {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    limit
}

/// Scans a body for taint sinks and the seeded-RNG marker.
fn scan_sinks(
    tokens: &[Token],
    body: std::ops::Range<usize>,
) -> (u8, bool, Vec<(u8, String, u32)>) {
    let mut taint = 0u8;
    let mut seeded = false;
    let mut notes: Vec<(u8, String, u32)> = Vec::new();
    let mut note = |bit: u8, what: String, line: u32, taint: &mut u8| {
        if notes.iter().all(|(b, w, _)| *b != bit || *w != what) {
            notes.push((bit, what, line));
        }
        *taint |= bit;
    };
    let path2 = |i: usize, a: &str, b: &str| -> bool {
        tokens[i].is_ident(a)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.is_ident(b))
    };
    for i in body.clone() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // Clock.
        if path2(i, "Instant", "now") || path2(i, "SystemTime", "now") {
            note(CLOCK, format!("{}::now", t.text), t.line, &mut taint);
        }
        // Environment.
        if t.is_ident("env")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|n| ENV_FNS.iter().any(|f| n.is_ident(f)))
        {
            note(
                ENV,
                format!("env::{}", tokens[i + 3].text),
                t.line,
                &mut taint,
            );
        }
        // Filesystem / process / network IO.
        if t.is_ident("fs")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.kind == TokenKind::Ident)
        {
            note(
                IO,
                format!("fs::{}", tokens[i + 3].text),
                t.line,
                &mut taint,
            );
        }
        if path2(i, "File", "open") || path2(i, "File", "create") || path2(i, "Command", "new") {
            note(
                IO,
                format!("{}::{}", t.text, tokens[i + 3].text),
                t.line,
                &mut taint,
            );
        }
        if t.is_ident("OpenOptions")
            || t.is_ident("TcpStream")
            || t.is_ident("UdpSocket")
            || t.is_ident("TcpListener")
        {
            note(IO, t.text.clone(), t.line, &mut taint);
        }
        // Socket transfer methods (`.accept(` / `.read_exact(` /
        // `.write_all(`): the network read/write surface itself, caught
        // even through generic `impl Read`/`impl Write` parameters that
        // never name a socket type.
        if SOCKET_METHOD_SINKS.iter().any(|m| t.is_ident(m))
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            note(IO, format!(".{}", t.text), t.line, &mut taint);
        }
        // Unseeded RNG.
        if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("OsRng") {
            note(RNG, t.text.clone(), t.line, &mut taint);
        }
        if t.is_ident("random")
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("rand")
        {
            note(RNG, "rand::random".to_string(), t.line, &mut taint);
        }
        // Hash-order iteration: an order-exposing method on a hash
        // collection constructed in the same body.
        if (t.is_ident("HashMap") || t.is_ident("HashSet"))
            && body.contains(&(i + 1))
        {
            note(HASH_ITER, t.text.clone(), t.line, &mut taint);
        }
        // Seeded-RNG marker (classification only, never a taint).
        if t.is_ident("SeedSequence") || t.is_ident("seed_from_u64") {
            seeded = true;
        }
        if t.is_ident("rng")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            seeded = true;
        }
    }
    (taint, seeded, notes)
}

/// Scans a body for direct lock acquisitions: `.lock()` always,
/// zero-arg `.read()`/`.write()` only in files that mention `RwLock`.
fn scan_locks(
    tokens: &[Token],
    body: std::ops::Range<usize>,
    file_has_rwlock: bool,
) -> Vec<LockAcquire> {
    let mut out = Vec::new();
    for i in body.clone() {
        let t = &tokens[i];
        let is_lock = t.is_ident("lock");
        let is_rw = file_has_rwlock && (t.is_ident("read") || t.is_ident("write"));
        if !(is_lock || is_rw) {
            continue;
        }
        // `. name ( )` — zero-arg method call.
        if !(i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(')')))
        {
            continue;
        }
        let Some(name) = lock_base_name(tokens, i - 1) else {
            continue;
        };
        out.push(LockAcquire {
            name,
            line: t.line,
            pos: i,
            scope_end: enclosing_block_end(tokens, i, body.end),
        });
    }
    out
}

/// The base identifier before the `.` at `dot`: skips one trailing
/// index/call group (`queues[i].lock()`), then takes the identifier.
fn lock_base_name(tokens: &[Token], dot: usize) -> Option<String> {
    let mut k = dot;
    if k > 0 && (tokens[k - 1].is_punct(']') || tokens[k - 1].is_punct(')')) {
        // Walk back over the balanced group.
        let mut depth = 0i32;
        while k > 0 {
            let t = &tokens[k - 1];
            if t.is_punct(']') || t.is_punct(')') {
                depth += 1;
            } else if t.is_punct('[') || t.is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    k -= 1;
                    break;
                }
            }
            k -= 1;
        }
    }
    let t = tokens.get(k.checked_sub(1)?)?;
    (t.kind == TokenKind::Ident && !t.is_ident("self")).then(|| t.text.clone())
}

/// Token index where the block enclosing `pos` closes (conservative
/// guard-scope end; capped at the body end).
fn enclosing_block_end(tokens: &[Token], pos: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = pos;
    while i < limit {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        }
        i += 1;
    }
    limit
}

/// Scans a body for call sites (paths, methods, and — inside root
/// groups — bare fn references).
fn scan_calls(
    tokens: &[Token],
    body: std::ops::Range<usize>,
    root_groups: &[(std::ops::Range<usize>, RootKind)],
) -> Vec<RawCall> {
    let group_of = |i: usize| -> Option<RootKind> {
        root_groups
            .iter()
            .find(|(r, _)| r.contains(&i))
            .map(|(_, k)| *k)
    };
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Macro invocation: the name itself is not a call (its argument
        // tokens still get scanned and may contain real calls).
        if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            i += 2;
            continue;
        }
        // `fn name` — a nested definition, not a call.
        if i > 0 && tokens[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        let called = call_paren(tokens, i + 1, body.end);
        let is_method = i > 0 && tokens[i - 1].is_punct('.');
        let after_path = tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'));
        if let Some(_open) = called {
            if is_method {
                out.push(RawCall {
                    segments: vec![t.text.clone()],
                    is_method: true,
                    line: t.line,
                    pos: i,
                    root: group_of(i),
                });
            } else if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
                // Tail of a `a::b::name(` path: walk the segments back.
                let segments = path_segments_back(tokens, i);
                out.push(RawCall {
                    segments,
                    is_method: false,
                    line: t.line,
                    pos: i,
                    root: group_of(i),
                });
            } else {
                out.push(RawCall {
                    segments: vec![t.text.clone()],
                    is_method: false,
                    line: t.line,
                    pos: i,
                    root: group_of(i),
                });
            }
            i += 1;
            continue;
        }
        // Bare fn reference inside a root group (`par_map(items, mix)`).
        if group_of(i).is_some() && !is_method && !after_path {
            let prev_path = i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':');
            let next_ok = tokens
                .get(i + 1)
                .is_some_and(|n| n.is_punct(',') || n.is_punct(')'));
            if !prev_path && next_ok {
                out.push(RawCall {
                    segments: vec![t.text.clone()],
                    is_method: false,
                    line: t.line,
                    pos: i,
                    root: group_of(i),
                });
            }
        }
        i += 1;
    }
    out
}

/// If the tokens at `at` open a call's argument list — `(` directly, or
/// a `::<T>(` turbofish — returns the index of the `(`.
fn call_paren(tokens: &[Token], at: usize, limit: usize) -> Option<usize> {
    if tokens.get(at).is_some_and(|t| t.is_punct('(')) {
        return Some(at);
    }
    if tokens.get(at).is_some_and(|t| t.is_punct(':'))
        && tokens.get(at + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(at + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0i32;
        let mut i = at + 2;
        while i < limit {
            let t = &tokens[i];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    return tokens.get(i + 1).filter(|n| n.is_punct('(')).map(|_| i + 1);
                }
            }
            i += 1;
        }
    }
    None
}

/// Walks `a :: b :: name` backwards from the final segment at `last`,
/// returning the segments in source order.
fn path_segments_back(tokens: &[Token], last: usize) -> Vec<String> {
    let mut segments = vec![tokens[last].text.clone()];
    let mut k = last;
    while k >= 3
        && tokens[k - 1].is_punct(':')
        && tokens[k - 2].is_punct(':')
        && tokens[k - 3].kind == TokenKind::Ident
    {
        segments.push(tokens[k - 3].text.clone());
        k -= 3;
    }
    segments.reverse();
    segments
}

/// Assembles the workspace graph from per-file contributions.
///
/// `crate_names` is the set of workspace package names; `use` roots are
/// matched against it with `_` → `-` normalization.
#[must_use]
pub fn build(files: &[FileGraph], crate_names: &BTreeSet<String>) -> CallGraph {
    // Node table.
    let mut nodes = Vec::new();
    let mut fn_meta: Vec<(usize, usize)> = Vec::new(); // (file idx, raw fn idx)
    for (fi, file) in files.iter().enumerate() {
        for (ri, raw) in file.fns.iter().enumerate() {
            debug_assert!(!raw.in_test_region);
            nodes.push(FnNode {
                crate_name: file.crate_name.clone(),
                file: file.rel.clone(),
                qualified: raw.qualified.clone(),
                line: raw.line,
                own_taint: raw.own_taint,
                trusted: 0,
                seeded: raw.seeded,
                sink_notes: raw.sink_notes.clone(),
                locks: raw.locks.clone(),
            });
            fn_meta.push((fi, ri));
        }
    }

    // Apply trust annotations: each attaches to the innermost fn whose
    // line range contains it, else the next fn below it in the file.
    for (idx, &(fi, _)) in fn_meta.iter().enumerate() {
        let file = &files[fi];
        for trust in &file.trusts {
            let raw = {
                let (_, ri) = fn_meta[idx];
                &file.fns[ri]
            };
            let contains = raw.line <= trust.line && trust.line <= raw.end_line;
            let is_innermost = contains
                && file.fns.iter().all(|other| {
                    !(other.line <= trust.line
                        && trust.line <= other.end_line
                        && other.line > raw.line)
                });
            let is_next_below = !contains
                && raw.line > trust.line
                && file.fns.iter().all(|other| {
                    // no fn between the comment and this one, and the
                    // comment is not inside any fn
                    !(other.line <= trust.line && trust.line <= other.end_line)
                        && !(trust.line < other.line && other.line < raw.line)
                });
            if is_innermost || is_next_below {
                for kind in &trust.kinds {
                    if let Some(bit) = taint_bit(kind) {
                        nodes[idx].trusted |= bit;
                    }
                }
            }
        }
    }

    // Resolution indices.
    let underscore_to_crate: BTreeMap<String, String> = crate_names
        .iter()
        .map(|c| (c.replace('-', "_"), c.clone()))
        .collect();
    // (crate, qualified) -> node indices.
    let mut by_qualified: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    // (crate, method name) -> node indices (any `Type::name`).
    let mut by_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    // (file idx, name) -> node indices (same-file free fns).
    let mut by_file_free: BTreeMap<(usize, &str), Vec<usize>> = BTreeMap::new();
    for (idx, node) in nodes.iter().enumerate() {
        by_qualified
            .entry((node.crate_name.as_str(), node.qualified.as_str()))
            .or_default()
            .push(idx);
        if let Some((_, method)) = node.qualified.rsplit_once("::") {
            by_method
                .entry((node.crate_name.as_str(), method))
                .or_default()
                .push(idx);
        } else {
            let (fi, _) = fn_meta[idx];
            by_file_free
                .entry((fi, node.qualified.as_str()))
                .or_default()
                .push(idx);
        }
    }

    // Per-file use maps: local name -> workspace crate.
    let own_roots = ["crate", "self", "super"];
    let file_use_map: Vec<BTreeMap<&str, &str>> = files
        .iter()
        .map(|file| {
            file.uses
                .iter()
                .filter_map(|(local, root)| {
                    let target = if own_roots.contains(&root.as_str()) {
                        Some(file.crate_name.as_str())
                    } else {
                        underscore_to_crate.get(root).map(String::as_str)
                    };
                    target.map(|t| (local.as_str(), t))
                })
                .collect()
        })
        .collect();

    // Resolve calls into edges.
    let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
    let mut roots: BTreeMap<usize, RootKind> = BTreeMap::new();
    for (idx, &(fi, ri)) in fn_meta.iter().enumerate() {
        let file = &files[fi];
        let raw = &file.fns[ri];
        let own_crate = file.crate_name.as_str();
        let use_map = &file_use_map[fi];
        for call in &raw.calls {
            let mut targets: Vec<usize> = Vec::new();
            if call.is_method {
                let name = call.segments[0].as_str();
                let mut crates: BTreeSet<&str> = use_map.values().copied().collect();
                crates.insert(own_crate);
                for c in crates {
                    if let Some(v) = by_method.get(&(c, name)) {
                        targets.extend(v);
                    }
                }
            } else if call.segments.len() == 1 {
                let name = call.segments[0].as_str();
                if let Some(v) = by_file_free.get(&(fi, name)) {
                    targets.extend(v);
                } else if let Some(v) = by_qualified.get(&(own_crate, name)) {
                    targets.extend(v);
                } else if let Some(&c) = use_map.get(name) {
                    if let Some(v) = by_qualified.get(&(c, name)) {
                        targets.extend(v);
                    }
                }
            } else {
                // Path call: determine the crate, then try
                // `Type::name`, falling back to the free `name`.
                let mut segs: Vec<&str> = call.segments.iter().map(String::as_str).collect();
                while segs.len() > 1 && own_roots.contains(&segs[0]) {
                    segs.remove(0);
                }
                let target_crate = use_map
                    .get(segs[0])
                    .copied()
                    .or_else(|| underscore_to_crate.get(segs[0]).map(String::as_str));
                let (in_crate, external_root) = match target_crate {
                    Some(c) => {
                        // The first segment names the crate (or a
                        // module/type alias from it): drop it when more
                        // segments remain.
                        if segs.len() > 1
                            && underscore_to_crate.contains_key(segs[0])
                            || own_roots.contains(&segs[0])
                        {
                            segs.remove(0);
                        } else if segs.len() > 2 && use_map.contains_key(segs[0]) {
                            // `telemetry::metrics::f` — alias + module.
                            segs.remove(0);
                        }
                        (c, false)
                    }
                    None => (own_crate, !segs.is_empty() && is_external_root(segs[0])),
                };
                if !external_root {
                    let name = *segs.last().unwrap_or(&"");
                    if segs.len() >= 2 {
                        let qualified = format!("{}::{name}", segs[segs.len() - 2]);
                        if let Some(v) = by_qualified.get(&(in_crate, qualified.as_str())) {
                            targets.extend(v);
                        }
                    }
                    if targets.is_empty() {
                        if let Some(v) = by_qualified.get(&(in_crate, name)) {
                            targets.extend(v);
                        }
                    }
                }
            }
            targets.sort_unstable();
            targets.dedup();
            for to in targets {
                if to == idx {
                    continue;
                }
                if !edges[idx].iter().any(|e| e.to == to) {
                    edges[idx].push(Edge {
                        to,
                        line: call.line,
                        pos: call.pos,
                        root: call.root,
                    });
                }
                if let Some(kind) = call.root {
                    let entry = roots.entry(to).or_insert(kind);
                    *entry = (*entry).min(kind);
                }
            }
        }
    }

    // The kernel root is declared, not discovered.
    for (idx, node) in nodes.iter().enumerate() {
        if node.qualified == "TrapBank::advance_all" {
            roots.insert(idx, RootKind::Kernel);
        }
    }

    CallGraph {
        nodes,
        edges,
        roots,
    }
}

/// Roots that are definitely not workspace crates (std & vendored).
fn is_external_root(seg: &str) -> bool {
    matches!(
        seg,
        "std" | "core" | "alloc" | "rand" | "serde" | "serde_json" | "proptest" | "criterion"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::Path;

    fn file(rel: &str, crate_name: &str, src: &str) -> FileGraph {
        extract_file(
            Path::new(rel),
            &lex(src),
            &FileContext::lib(crate_name),
        )
    }

    fn node_idx(g: &CallGraph, qualified: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qualified == qualified)
            .unwrap_or_else(|| panic!("no node {qualified}"))
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let f = node_idx(g, from);
        let t = node_idx(g, to);
        g.edges[f].iter().any(|e| e.to == t)
    }

    #[test]
    fn same_crate_calls_resolve_free_method_and_path() {
        let a = file(
            "crates/x/src/lib.rs",
            "x",
            r"
            pub fn entry() { helper(); Engine::ignite(); }
            fn helper() {}
            pub struct Engine;
            impl Engine {
                pub fn ignite() { self.spin(); }
                fn spin(&self) {}
            }
            ",
        );
        let g = build(&[a], &["x".to_string()].into_iter().collect());
        assert!(has_edge(&g, "entry", "helper"));
        assert!(has_edge(&g, "entry", "Engine::ignite"));
        assert!(has_edge(&g, "Engine::ignite", "Engine::spin"));
    }

    #[test]
    fn cross_crate_calls_resolve_through_use() {
        let caller = file(
            "crates/a/src/lib.rs",
            "crate-a",
            r"
            use crate_b::{Pool, run_free};
            pub fn go(p: &Pool) { p.par_map(); run_free(); }
            ",
        );
        let callee = file(
            "crates/b/src/lib.rs",
            "crate-b",
            r"
            pub struct Pool;
            impl Pool { pub fn par_map(&self) {} }
            pub fn run_free() {}
            ",
        );
        let crates = ["crate-a".to_string(), "crate-b".to_string()]
            .into_iter()
            .collect();
        let g = build(&[caller, callee], &crates);
        assert!(has_edge(&g, "go", "Pool::par_map"));
        assert!(has_edge(&g, "go", "run_free"));
    }

    #[test]
    fn par_map_closure_callees_become_roots() {
        let a = file(
            "crates/x/src/lib.rs",
            "x",
            r"
            pub fn driver(pool: &Pool, items: Vec<u64>) {
                pool.par_map(items, mix);
                pool.par_map_indexed(items, |i, x| work(i, x));
            }
            pub fn mix(x: u64) -> u64 { x }
            pub fn work(i: usize, x: u64) -> u64 { x }
            pub fn bystander() {}
            ",
        );
        let g = build(&[a], &["x".to_string()].into_iter().collect());
        let mix = node_idx(&g, "mix");
        let work = node_idx(&g, "work");
        let bystander = node_idx(&g, "bystander");
        assert_eq!(g.roots.get(&mix), Some(&RootKind::ParClosure));
        assert_eq!(g.roots.get(&work), Some(&RootKind::ParClosure));
        assert!(!g.roots.contains_key(&bystander));
        // The enclosing driver is NOT a root merely for calling par_map.
        assert!(!g.roots.contains_key(&node_idx(&g, "driver")));
    }

    #[test]
    fn cache_closure_callees_are_cache_feed_roots() {
        let a = file(
            "crates/x/src/lib.rs",
            "x",
            r#"
            pub fn run_cached(cache: &ResultCache) -> f64 {
                cache.get_or_compute("ns", 1, "k", || expensive()).0
            }
            pub fn expensive() -> f64 { 1.0 }
            "#,
        );
        let g = build(&[a], &["x".to_string()].into_iter().collect());
        let idx = node_idx(&g, "expensive");
        assert_eq!(g.roots.get(&idx), Some(&RootKind::CacheFeed));
    }

    #[test]
    fn kernel_entry_is_always_a_root() {
        let a = file(
            "crates/bti/src/lib.rs",
            "selfheal-bti",
            "pub struct TrapBank; impl TrapBank { pub fn advance_all(&mut self) {} }",
        );
        let g = build(&[a], &["selfheal-bti".to_string()].into_iter().collect());
        let idx = node_idx(&g, "TrapBank::advance_all");
        assert_eq!(g.roots.get(&idx), Some(&RootKind::Kernel));
    }

    #[test]
    fn sinks_are_detected_per_function() {
        let a = file(
            "crates/x/src/lib.rs",
            "x",
            r#"
            pub fn clocky() { let t = Instant::now(); }
            pub fn envy() -> bool { std::env::var("X").is_ok() }
            pub fn io_heavy(p: &Path) { std::fs::write(p, "x").ok(); }
            pub fn seeded_fn(seeds: &SeedSequence) -> f64 { seeds.rng(0).gen() }
            pub fn clean(x: f64) -> f64 { x * 2.0 }
            "#,
        );
        let g = build(&[a], &["x".to_string()].into_iter().collect());
        assert_eq!(g.nodes[node_idx(&g, "clocky")].own_taint, CLOCK);
        assert_eq!(g.nodes[node_idx(&g, "envy")].own_taint, ENV);
        assert_eq!(g.nodes[node_idx(&g, "io_heavy")].own_taint, IO);
        let seeded = &g.nodes[node_idx(&g, "seeded_fn")];
        assert_eq!(seeded.own_taint, 0);
        assert!(seeded.seeded);
        assert_eq!(g.nodes[node_idx(&g, "clean")].own_taint, 0);
    }

    #[test]
    fn trust_annotations_attach_inside_and_above() {
        let a = file(
            "crates/x/src/lib.rs",
            "x",
            r#"
            pub fn inside() {
                // analyzer: trust(clock): trace timestamps never feed results
                let t = Instant::now();
            }
            // analyzer: trust(env): worker count cannot change results
            pub fn above() -> bool { std::env::var("T").is_ok() }
            pub fn unrelated() { let t = Instant::now(); }
            "#,
        );
        let g = build(&[a], &["x".to_string()].into_iter().collect());
        assert_eq!(g.nodes[node_idx(&g, "inside")].trusted, CLOCK);
        assert_eq!(g.nodes[node_idx(&g, "above")].trusted, ENV);
        assert_eq!(g.nodes[node_idx(&g, "unrelated")].trusted, 0);
    }

    #[test]
    fn locks_record_names_and_order() {
        let a = file(
            "crates/x/src/lib.rs",
            "x",
            r"
            pub fn two_locks(&self) {
                let a = self.park.lock();
                let b = self.queues[0].lock();
            }
            ",
        );
        let names: Vec<String> = a.fns[0].locks.iter().map(|l| l.name.clone()).collect();
        assert_eq!(names, vec!["park", "queues"]);
    }

    #[test]
    fn test_region_fns_are_excluded_from_the_graph() {
        let a = file(
            "crates/x/src/lib.rs",
            "x",
            "pub fn live() {}\n#[cfg(test)]\nmod tests { fn helper() { std::fs::write(1,2); } }",
        );
        let g = build(&[a], &["x".to_string()].into_iter().collect());
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.nodes[0].qualified, "live");
    }
}
