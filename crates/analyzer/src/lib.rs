//! `selfheal-analyzer` — domain-aware static analysis for the
//! self-healing workspace.
//!
//! The physics crates encode their domain rules in the type system
//! (`selfheal-units`), but nothing stops a new API from taking a bare
//! `f64` volt count, sorting floats through `partial_cmp().unwrap()`,
//! or hard-coding a 12 V supply. This crate is the gate that does: a
//! token-level static-analysis pass with five lints —
//!
//! | id | severity | rule |
//! |----|----------|------|
//! | `bare-physical-f64` | warning | `pub fn` params/returns naming physical quantities must use units newtypes |
//! | `nan-unsafe-ordering` | error | no `partial_cmp().unwrap()`, no bare `f64::max`/`min` reduction keys |
//! | `unwrap-in-lib` | error | no `.unwrap()`/`.expect()` in model-crate library code |
//! | `suspicious-physical-literal` | warning | `Volts::new`/`Celsius::new` literals must be physically plausible |
//! | `missing-must-use` | warning | pure unit-returning accessors need `#[must_use]` |
//!
//! Run it as `cargo analyzer check` (alias in `.cargo/config.toml`) or
//! `cargo run -p selfheal-analyzer -- check [--json] [--baseline <file>]`.
//! Existing debt is ratcheted through a baseline file
//! (`analyzer-baseline.txt`); only *new* findings fail the gate.
//! Individual sites can opt out with a `// analyzer: allow(<lint-id>)`
//! comment on the offending line or the line above.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod findings;
pub mod graph;
pub mod lexer;
pub mod lints;
pub mod purity;
pub mod sig;
pub mod walk;

use std::collections::BTreeSet;
use std::io;
use std::path::Path;

pub use findings::{Finding, Lint, Severity, ALL_LINTS};
pub use lints::FileContext;
pub use purity::Dataflow;

/// Analyzes one source file under the given context.
#[must_use]
pub fn analyze_source(rel_path: &Path, source: &str, ctx: &FileContext) -> Vec<Finding> {
    lints::run_all(rel_path, &lexer::lex(source), ctx)
}

/// Analyzes every discoverable file in the workspace at `root`: the
/// per-file token lints plus the workspace-wide dataflow pass
/// (`tainted-root`, `lock-order`).
///
/// Findings are sorted by (file, line, lint). Unreadable files are an
/// error — the gate must never silently skip what it claims to cover.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let (mut findings, flow) = analyze_workspace_full(root)?;
    findings.extend(flow.findings.iter().cloned());
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint))
    });
    Ok(findings)
}

/// Runs the workspace-wide dataflow pass alone (call graph + purity).
pub fn workspace_dataflow(root: &Path) -> io::Result<Dataflow> {
    Ok(analyze_workspace_full(root)?.1)
}

/// One walk over the workspace producing both the per-file findings
/// (unsorted) and the completed dataflow pass.
fn analyze_workspace_full(root: &Path) -> io::Result<(Vec<Finding>, Dataflow)> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    let mut crates = BTreeSet::new();
    for item in walk::discover(root)? {
        let source = std::fs::read_to_string(&item.abs)?;
        let lexed = lexer::lex(&source);
        findings.extend(lints::run_all(&item.rel, &lexed, &item.ctx));
        crates.insert(item.ctx.crate_name.clone());
        files.push(graph::extract_file(&item.rel, &lexed, &item.ctx));
    }
    let flow = purity::analyze(graph::build(&files, &crates));
    Ok((findings, flow))
}

/// Crate version, for `--version` style output.
#[must_use]
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}
