//! Workspace discovery: which `.rs` files to analyze, with what
//! [`FileContext`].
//!
//! Coverage is deliberate, not exhaustive:
//!
//! * `crates/*/src/**` and the root `src/**` — library code;
//! * `crates/*/examples/**` and root `examples/**` — shipped examples
//!   (held to the NaN and physical-range lints, not the lib-only ones);
//! * `tests/` and `benches/` targets are **skipped** — every lint either
//!   exempts test code or applies only to library code;
//! * `vendor/` (offline dependency stand-ins) and `target/` are skipped.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lints::FileContext;

/// One file scheduled for analysis.
#[derive(Debug, Clone)]
pub struct WorkItem {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Workspace-relative path used in reports.
    pub rel: PathBuf,
    /// Lint-applicability context.
    pub ctx: FileContext,
}

/// Discovers all analyzable files under the workspace `root`, sorted by
/// relative path.
pub fn discover(root: &Path) -> io::Result<Vec<WorkItem>> {
    let mut items = Vec::new();

    // Root package.
    let root_name = package_name(&root.join("Cargo.toml")).unwrap_or_else(|| "root".to_string());
    push_tree(&mut items, root, &root.join("src"), &FileContext::lib(&root_name))?;
    push_tree(
        &mut items,
        root,
        &root.join("examples"),
        &FileContext::example(&root_name),
    )?;

    // Member crates.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let Some(name) = package_name(&dir.join("Cargo.toml")) else {
                continue;
            };
            push_tree(&mut items, root, &dir.join("src"), &FileContext::lib(&name))?;
            push_tree(
                &mut items,
                root,
                &dir.join("examples"),
                &FileContext::example(&name),
            )?;
        }
    }

    items.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(items)
}

/// Recursively collects `.rs` files under `dir` (if it exists).
fn push_tree(
    items: &mut Vec<WorkItem>,
    root: &Path,
    dir: &Path,
    ctx: &FileContext,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            push_tree(items, root, &path, ctx)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            items.push(WorkItem {
                abs: path,
                rel,
                ctx: ctx.clone(),
            });
        }
    }
    Ok(())
}

/// Extracts `name = "..."` from a Cargo.toml's `[package]` section.
///
/// A real TOML parser is unavailable offline; this handles the layout
/// cargo itself writes (section headers on their own line, `name` as a
/// plain string key).
#[must_use]
pub fn package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return Some(rest.trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Walks upward from `start` to the first directory whose Cargo.toml
/// declares `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_reads_package_section_only() {
        let dir = std::env::temp_dir().join("selfheal-analyzer-test-manifest");
        fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("Cargo.toml");
        fs::write(
            &manifest,
            "[package]\nname = \"demo-crate\"\n\n[[bin]]\nname = \"other\"\n",
        )
        .unwrap();
        assert_eq!(package_name(&manifest), Some("demo-crate".to_string()));
        fs::remove_file(&manifest).ok();
    }

    #[test]
    fn discover_finds_this_workspace() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let items = discover(&root).unwrap();
        // The analyzer's own lib.rs must be among the discovered files.
        assert!(items
            .iter()
            .any(|i| i.rel.ends_with("crates/analyzer/src/lib.rs")));
        // Vendor stubs and test targets must not be.
        assert!(!items.iter().any(|i| i.rel.starts_with("vendor")));
        assert!(!items.iter().any(|i| i.rel.starts_with("tests")));
    }
}
