//! The six domain lints, implemented over the token stream.

use std::path::Path;

use crate::findings::{Finding, Lint};
use crate::lexer::{literal_value, LexedFile, Token, TokenKind};
use crate::sig::{
    parse_pub_fns, parse_pub_struct_fields, test_region_mask, FnSig, SelfKind, StructField,
};

/// Where a file sits in the workspace; drives lint applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContext {
    /// Package name of the owning crate (`selfheal-bti`, `selfheal`, ...).
    pub crate_name: String,
    /// True for files under a crate's `src/` (library code).
    pub is_lib: bool,
    /// True for files under `tests/` or `benches/` (test-only targets).
    pub is_test_target: bool,
}

impl FileContext {
    /// Context for library code of the named crate.
    #[must_use]
    pub fn lib(crate_name: &str) -> Self {
        FileContext {
            crate_name: crate_name.to_string(),
            is_lib: true,
            is_test_target: false,
        }
    }

    /// Context for an example binary of the named crate.
    #[must_use]
    pub fn example(crate_name: &str) -> Self {
        FileContext {
            crate_name: crate_name.to_string(),
            is_lib: false,
            is_test_target: false,
        }
    }

    /// Context for an integration-test or bench target.
    #[must_use]
    pub fn test_target(crate_name: &str) -> Self {
        FileContext {
            crate_name: crate_name.to_string(),
            is_lib: false,
            is_test_target: true,
        }
    }
}

/// Crates whose library code is held to the no-unwrap rule.
const UNWRAP_GATED_CRATES: [&str; 5] = [
    "selfheal-bti",
    "selfheal-fpga",
    "selfheal",
    "selfheal-multicore",
    "selfheal-fleet",
];

/// Crates allowed to spawn OS threads directly: the execution runtime
/// (which owns the worker pool), the telemetry layer (whose sinks are
/// thread-aware by design), and the fleet service (whose blocking
/// worker-accept loop *is* its transport — fleet state still advances
/// on the pool). Everyone else goes through the pool, which preserves
/// determinism and keeps spans/metrics flowing.
const THREAD_SPAWN_EXEMPT_CRATES: [&str; 3] =
    ["selfheal-runtime", "selfheal-telemetry", "selfheal-fleet"];

/// The selfheal-units newtypes (plus `Self` constructors excluded).
const UNIT_TYPES: [&str; 17] = [
    "Volts",
    "Millivolts",
    "PerVolt",
    "PerSecond",
    "ElectronVolts",
    "Celsius",
    "Kelvin",
    "Seconds",
    "Hours",
    "Minutes",
    "Nanoseconds",
    "Hertz",
    "Megahertz",
    "Fraction",
    "Percent",
    "Ratio",
    "DutyCycle",
];

/// Substrings of parameter/function names that imply a physical unit,
/// with the newtype the API should use instead.
const PHYSICAL_NAME_HINTS: [(&str, &str); 11] = [
    ("vdd", "Volts"),
    ("volt", "Volts or Millivolts"),
    ("celsius", "Celsius"),
    ("kelvin", "Kelvin"),
    ("temp", "Celsius"),
    ("sec", "Seconds"),
    ("hour", "Hours"),
    ("freq", "Hertz or Megahertz"),
    ("alpha", "DutyCycle or Fraction"),
    ("margin", "Millivolts"),
    ("_mv", "Millivolts"),
];

/// Runs every applicable lint over one lexed file.
#[must_use]
pub fn run_all(path: &Path, lexed: &LexedFile, ctx: &FileContext) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mask = test_region_mask(tokens);
    let mut findings = Vec::new();

    let non_test_code = !ctx.is_test_target;
    if non_test_code {
        findings.extend(nan_unsafe_ordering(path, tokens, &mask));
        findings.extend(suspicious_physical_literal(path, tokens, &mask));
        findings.extend(unseeded_rng(path, tokens, &mask));
        if !THREAD_SPAWN_EXEMPT_CRATES.contains(&ctx.crate_name.as_str()) {
            findings.extend(raw_thread_spawn(path, tokens, &mask));
        }
    }
    if ctx.is_lib {
        findings.extend(nondeterministic_iteration(path, tokens, &mask));
    }
    if ctx.is_lib {
        let sigs = parse_pub_fns(tokens, &mask);
        if ctx.crate_name != "selfheal-units" {
            findings.extend(bare_physical_f64(path, &sigs));
            let fields = parse_pub_struct_fields(tokens, &mask);
            findings.extend(bare_physical_f64_fields(path, &fields));
        }
        findings.extend(missing_must_use(path, &sigs));
        if UNWRAP_GATED_CRATES.contains(&ctx.crate_name.as_str()) {
            findings.extend(unwrap_in_lib(path, tokens, &mask));
        }
    }

    // Apply `// analyzer: allow(...)` suppressions: an allow comment
    // silences matching findings on its own line and the next line.
    findings.retain(|f| {
        !lexed.allows.iter().any(|a| {
            (a.line == f.line || a.line + 1 == f.line)
                && a.lints.iter().any(|l| l == f.lint.id())
        })
    });
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

/// Matches the hint table against a snake_case name.
fn physical_hint(name: &str) -> Option<(&'static str, &'static str)> {
    let lower = name.to_ascii_lowercase();
    PHYSICAL_NAME_HINTS
        .into_iter()
        .find(|(needle, _)| lower.contains(needle))
}

/// Lint: `pub fn` parameters/returns passing physical quantities as
/// bare `f64`.
fn bare_physical_f64(path: &Path, sigs: &[FnSig]) -> Vec<Finding> {
    let mut out = Vec::new();
    for sig in sigs.iter().filter(|s| !s.in_test_region) {
        for param in &sig.params {
            if param.ty != "f64" {
                continue;
            }
            if let Some((needle, suggestion)) = physical_hint(&param.name) {
                out.push(Finding {
                    lint: Lint::BarePhysicalF64,
                    file: path.to_path_buf(),
                    line: param.line,
                    message: format!(
                        "parameter `{}: f64` of `pub fn {}` names a physical quantity (`{}`); take {} instead",
                        param.name, sig.name, needle, suggestion
                    ),
                    snippet: format!("{}: f64", param.name),
                    call_path: Vec::new(),
                });
            }
        }
        if sig.ret == ["f64"] {
            if let Some((needle, suggestion)) = physical_hint(&sig.name) {
                out.push(Finding {
                    lint: Lint::BarePhysicalF64,
                    file: path.to_path_buf(),
                    line: sig.line,
                    message: format!(
                        "`pub fn {}` returns a physical quantity (`{}`) as bare f64; return {} instead",
                        sig.name, needle, suggestion
                    ),
                    snippet: format!("fn {} -> f64", sig.name),
                    call_path: Vec::new(),
                });
            }
        }
    }
    out
}

/// Lint: `pub struct` fields storing physical quantities as bare `f64`
/// (or homogeneous `f64` containers).
fn bare_physical_f64_fields(path: &Path, fields: &[StructField]) -> Vec<Finding> {
    let mut out = Vec::new();
    for field in fields.iter().filter(|f| !f.in_test_region) {
        let container = match field.ty.as_str() {
            "f64" => "f64",
            "Vec < f64 >" => "Vec<f64>",
            "Option < f64 >" => "Option<f64>",
            _ => continue,
        };
        if let Some((needle, suggestion)) = physical_hint(&field.name) {
            out.push(Finding {
                lint: Lint::BarePhysicalF64,
                file: path.to_path_buf(),
                line: field.line,
                message: format!(
                    "field `{}: {container}` of `pub struct {}` names a physical quantity (`{}`); store {} instead",
                    field.name, field.struct_name, needle, suggestion
                ),
                snippet: format!("{}: {container}", field.name),
                call_path: Vec::new(),
            });
        }
    }
    out
}

/// Lint: NaN-unsafe float orderings.
fn nan_unsafe_ordering(path: &Path, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        // `.partial_cmp(` — NaN-partial comparison.
        if t.is_ident("partial_cmp")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let after = skip_call(tokens, i + 1);
            let (message, followup) = match followup_method(tokens, after) {
                Some(m @ ("unwrap" | "expect")) => (
                    format!(
                        "partial_cmp().{m}() panics when either operand is NaN; use f64::total_cmp",
                    ),
                    format!(".partial_cmp().{m}()"),
                ),
                Some(m @ ("unwrap_or" | "unwrap_or_else")) => (
                    format!(
                        "partial_cmp().{m}(..) silently misorders NaN operands; use f64::total_cmp or reject NaN first",
                    ),
                    format!(".partial_cmp().{m}(..)"),
                ),
                _ => (
                    "partial_cmp yields None for NaN operands; use f64::total_cmp or reject NaN first"
                        .to_string(),
                    ".partial_cmp()".to_string(),
                ),
            };
            out.push(Finding {
                lint: Lint::NanUnsafeOrdering,
                file: path.to_path_buf(),
                line: t.line,
                message,
                snippet: followup,
                call_path: Vec::new(),
            });
        }
        // Bare `f64::max` / `f64::min` function references (fold/reduce
        // keys). A direct call `f64::max(a, b)` is fine — NaN handling
        // is the caller's explicit choice there — but as a reduction
        // key it silently absorbs NaN.
        if (t.is_ident("f64") || t.is_ident("f32"))
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens
                .get(i + 3)
                .is_some_and(|n| n.is_ident("max") || n.is_ident("min"))
            && !tokens.get(i + 4).is_some_and(|n| n.is_punct('('))
        {
            let which = &tokens[i + 3].text;
            out.push(Finding {
                lint: Lint::NanUnsafeOrdering,
                file: path.to_path_buf(),
                line: t.line,
                message: format!(
                    "`{}::{which}` as a reduction key silently discards NaN; use selfheal_units::float::{which}_total or handle NaN explicitly",
                    t.text,
                ),
                snippet: format!("{}::{which}", t.text),
                call_path: Vec::new(),
            });
        }
    }
    out
}

/// Returns the index just past the `( ... )` group opening at `open`.
fn skip_call(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct('(') {
            depth += 1;
        } else if tokens[i].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// If the tokens at `i` are `.method(`, returns the method name.
fn followup_method<'a>(tokens: &'a [Token], i: usize) -> Option<&'a str> {
    if tokens.get(i).is_some_and(|t| t.is_punct('.'))
        && tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
        && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
    {
        Some(&tokens[i + 1].text)
    } else {
        None
    }
}

/// Lint: `.unwrap()` / `.expect()` in non-test library code.
fn unwrap_in_lib(path: &Path, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let is_unwrap = t.is_ident("unwrap");
        let is_expect = t.is_ident("expect");
        if (is_unwrap || is_expect)
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            // `partial_cmp(..).unwrap()` is nan-unsafe-ordering's case,
            // reported there with a sharper message; skip it here.
            if receiver_is_partial_cmp(tokens, i - 1) {
                continue;
            }
            let method = &t.text;
            out.push(Finding {
                lint: Lint::UnwrapInLib,
                file: path.to_path_buf(),
                line: t.line,
                message: format!(
                    ".{method}() in library code turns data bugs into panics; return Result/Option, pattern-match, or document the invariant with an explicit panic!",
                ),
                snippet: format!(".{method}()"),
                call_path: Vec::new(),
            });
        }
    }
    out
}

/// True when the expression ending just before the `.` at `dot` is a
/// `partial_cmp(...)` call.
fn receiver_is_partial_cmp(tokens: &[Token], dot: usize) -> bool {
    if dot == 0 || !tokens[dot - 1].is_punct(')') {
        return false;
    }
    // Walk back to the matching `(`.
    let mut depth = 0i32;
    let mut k = dot - 1;
    loop {
        if tokens[k].is_punct(')') {
            depth += 1;
        } else if tokens[k].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if k == 0 {
            return false;
        }
        k -= 1;
    }
    k > 0 && tokens[k - 1].is_ident("partial_cmp")
}

/// Lint: `std::thread::spawn` (or `thread::spawn`) outside the crates
/// that own threading. Raw threads bypass the deterministic pool's
/// seed-splitting and job ordering and silently drop their phase-ledger
/// spans, so parallel work must go through `selfheal-runtime`.
fn raw_thread_spawn(path: &Path, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        if t.is_ident("thread")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.is_ident("spawn"))
        {
            out.push(Finding {
                lint: Lint::RawThreadSpawn,
                file: path.to_path_buf(),
                line: t.line,
                message: "std::thread::spawn bypasses the deterministic work-stealing pool (seed splitting, span draining, panic isolation); use selfheal_runtime::par_map or Pool".to_string(),
                snippet: "thread::spawn".to_string(),
                call_path: Vec::new(),
            });
        }
    }
    out
}

/// Plausible silicon operating ranges for literal constructor args.
const LITERAL_RANGES: [(&str, f64, f64, &str); 2] = [
    ("Volts", -0.5, 1.5, "V"),
    ("Celsius", -55.0, 150.0, "°C"),
];

/// Lint: `Volts::new(<lit>)` / `Celsius::new(<lit>)` outside plausible
/// physical ranges, in non-test code.
fn suspicious_physical_literal(path: &Path, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some((unit, lo, hi, sym)) = LITERAL_RANGES
            .into_iter()
            .find(|(name, ..)| t.is_ident(name))
        else {
            continue;
        };
        // Match `Unit :: new ( [-] <number> )` exactly: only literal
        // arguments are checkable without type inference.
        if !(tokens.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|n| n.is_ident("new"))
            && tokens.get(i + 4).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        let mut j = i + 5;
        let mut neg = false;
        if tokens.get(j).is_some_and(|n| n.is_punct('-')) {
            neg = true;
            j += 1;
        }
        let Some(num) = tokens.get(j).filter(|n| n.kind == TokenKind::Number) else {
            continue;
        };
        if !tokens.get(j + 1).is_some_and(|n| n.is_punct(')')) {
            continue;
        }
        let Some(mut value) = literal_value(&num.text) else {
            continue;
        };
        if neg {
            value = -value;
        }
        if value < lo || value > hi {
            out.push(Finding {
                lint: Lint::SuspiciousPhysicalLiteral,
                file: path.to_path_buf(),
                line: t.line,
                message: format!(
                    "{unit}::new({value}) lies outside the plausible silicon range [{lo}, {hi}] {sym}; check units and intent",
                ),
                snippet: format!("{unit}::new({value})"),
                call_path: Vec::new(),
            });
        }
    }
    out
}

/// RNG constructors that seed from the environment instead of a
/// `SeedSequence` stream — each silently breaks reproducibility.
const UNSEEDED_RNG_CONSTRUCTORS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];

/// Lint: RNG construction not derived from a `SeedSequence`.
///
/// Flags `thread_rng()`, `SeedableRng::from_entropy`, `OsRng` and
/// `rand::random` in non-test code. Seeded construction
/// (`SeedSequence::rng`, `seed_from_u64`) is the sanctioned path.
fn unseeded_rng(path: &Path, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let flagged = if UNSEEDED_RNG_CONSTRUCTORS.iter().any(|c| t.is_ident(c)) {
            Some(t.text.clone())
        } else if t.is_ident("random")
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("rand")
        {
            Some("rand::random".to_string())
        } else {
            None
        };
        if let Some(snippet) = flagged {
            out.push(Finding {
                lint: Lint::UnseededRng,
                file: path.to_path_buf(),
                line: t.line,
                message: format!(
                    "`{snippet}` draws entropy outside the SeedSequence contract; derive a per-item StdRng from SeedSequence::rng instead",
                ),
                snippet,
                call_path: Vec::new(),
            });
        }
    }
    out
}

/// Methods whose visit order leaks hash-table layout into results.
const HASH_ORDER_METHODS: [&str; 6] = ["iter", "keys", "values", "into_iter", "drain", "retain"];

/// Lint: iteration over `HashMap`/`HashSet` bindings (any order-exposed
/// method or a `for` loop), plus `BTreeSet::retain` (order-dependent
/// mutation during the sweep), in library code.
fn nondeterministic_iteration(path: &Path, tokens: &[Token], mask: &[bool]) -> Vec<Finding> {
    // Pass 1: collect idents bound or typed as hash collections
    // (`x: HashMap<..>`, `let [mut] x = HashMap::new()`), and the same
    // for BTreeSet (whose only flagged method is `retain`).
    let mut hash_bound = Vec::new();
    let mut btree_set_bound = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        let is_hash = t.is_ident("HashMap") || t.is_ident("HashSet");
        let is_btree_set = t.is_ident("BTreeSet");
        if !(is_hash || is_btree_set) {
            continue;
        }
        // Walk back over `&`, `mut` and lifetimes so `x: &mut HashMap`
        // still reaches the `:`.
        let mut k = i;
        while k > 0
            && (tokens[k - 1].is_punct('&')
                || tokens[k - 1].is_ident("mut")
                || tokens[k - 1].kind == TokenKind::Lifetime)
        {
            k -= 1;
        }
        let bound = if k >= 2 && tokens[k - 1].is_punct(':') && !tokens[k - 2].is_punct(':') {
            // `name : [&mut] HashMap` type ascription (param, field, let).
            (tokens[k - 2].kind == TokenKind::Ident).then(|| tokens[k - 2].text.clone())
        } else if k >= 2 && tokens[k - 1].is_punct('=') {
            // `let [mut] name = HashMap::...`.
            (tokens[k - 2].kind == TokenKind::Ident).then(|| tokens[k - 2].text.clone())
        } else {
            None
        };
        if let Some(name) = bound {
            if is_hash {
                hash_bound.push(name);
            } else {
                btree_set_bound.push(name);
            }
        }
    }
    if hash_bound.is_empty() && btree_set_bound.is_empty() {
        return Vec::new();
    }

    // Pass 2: flag order-exposing uses of those bindings.
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) || t.kind != TokenKind::Ident {
            continue;
        }
        let is_hash = hash_bound.iter().any(|n| n == &t.text);
        let is_bset = btree_set_bound.iter().any(|n| n == &t.text);
        if !(is_hash || is_bset) {
            continue;
        }
        // `name . method (` where method exposes order.
        if tokens.get(i + 1).is_some_and(|n| n.is_punct('.'))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct('('))
        {
            let method = &tokens[i + 2];
            let order_exposed = if is_hash {
                HASH_ORDER_METHODS.iter().any(|m| method.is_ident(m))
            } else {
                method.is_ident("retain")
            };
            if order_exposed {
                out.push(Finding {
                    lint: Lint::NondeterministicIteration,
                    file: path.to_path_buf(),
                    line: t.line,
                    message: if is_hash {
                        format!(
                            "`{}.{}()` visits hash-table order, which varies per process; use BTreeMap/BTreeSet or collect-and-sort first",
                            t.text, method.text,
                        )
                    } else {
                        format!(
                            "`{}.retain()` mutates the set during an order-dependent sweep; filter into a fresh BTreeSet instead",
                            t.text,
                        )
                    },
                    snippet: format!("{}.{}()", t.text, method.text),
                    call_path: Vec::new(),
                });
            }
            continue;
        }
        // `for x in [&[mut]] name` — direct iteration.
        if is_hash {
            let mut k = i;
            // Walk back over `&` / `mut`.
            while k > 0 && (tokens[k - 1].is_punct('&') || tokens[k - 1].is_ident("mut")) {
                k -= 1;
            }
            if k > 0 && tokens[k - 1].is_ident("in") && k > 1 && tokens_contain_for(tokens, k - 1) {
                out.push(Finding {
                    lint: Lint::NondeterministicIteration,
                    file: path.to_path_buf(),
                    line: t.line,
                    message: format!(
                        "`for .. in {}` visits hash-table order, which varies per process; use BTreeMap/BTreeSet or collect-and-sort first",
                        t.text,
                    ),
                    snippet: format!("for .. in {}", t.text),
                    call_path: Vec::new(),
                });
            }
        }
    }
    out
}

/// True when the `in` at index `at` belongs to a `for` loop (a `for`
/// ident appears before it with only a pattern in between — approximated
/// by looking back a bounded window with no `;`/`{`/`}`).
fn tokens_contain_for(tokens: &[Token], at: usize) -> bool {
    let lo = at.saturating_sub(12);
    for k in (lo..at).rev() {
        let t = &tokens[k];
        if t.is_ident("for") {
            return true;
        }
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return false;
        }
    }
    false
}

/// Lint: pure unit-returning accessors missing `#[must_use]`.
///
/// A "pure accessor" here is a `pub fn` taking `self` or `&self` whose
/// return type is exactly one selfheal-units newtype. Ignoring such a
/// value is always a bug — the call has no side effects.
fn missing_must_use(path: &Path, sigs: &[FnSig]) -> Vec<Finding> {
    let mut out = Vec::new();
    for sig in sigs.iter().filter(|s| !s.in_test_region) {
        if !matches!(sig.self_kind, SelfKind::Ref | SelfKind::Value) {
            continue;
        }
        let [ret] = sig.ret.as_slice() else { continue };
        if !UNIT_TYPES.contains(&ret.as_str()) {
            continue;
        }
        if sig.attr_idents.iter().any(|a| a == "must_use") {
            continue;
        }
        out.push(Finding {
            lint: Lint::MissingMustUse,
            file: path.to_path_buf(),
            line: sig.line,
            message: format!(
                "`pub fn {}` is a pure accessor returning {ret}; add #[must_use]",
                sig.name
            ),
            snippet: format!("fn {}(..) -> {ret}", sig.name),
            call_path: Vec::new(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use std::path::PathBuf;

    fn run(src: &str, ctx: &FileContext) -> Vec<Finding> {
        run_all(&PathBuf::from("x.rs"), &lex(src), ctx)
    }

    fn lint_ids(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint.id()).collect()
    }

    #[test]
    fn partial_cmp_unwrap_is_an_error() {
        let f = run(
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
            &FileContext::lib("selfheal"),
        );
        assert_eq!(lint_ids(&f), vec!["nan-unsafe-ordering"]);
        assert!(f[0].message.contains("panics"));
    }

    #[test]
    fn total_cmp_is_clean() {
        let f = run(
            "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }",
            &FileContext::lib("selfheal"),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn bare_fold_key_is_flagged_but_direct_call_is_not() {
        let f = run(
            "fn f(v: &[f64]) -> f64 { let a = v.iter().copied().fold(f64::MIN, f64::max); f64::max(a, 0.0) }",
            &FileContext::lib("selfheal"),
        );
        assert_eq!(lint_ids(&f), vec!["nan-unsafe-ordering"]);
        assert!(f[0].snippet.contains("f64::max"));
    }

    #[test]
    fn unwrap_only_gated_in_model_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert_eq!(
            lint_ids(&run(src, &FileContext::lib("selfheal-bti"))),
            vec!["unwrap-in-lib"]
        );
        assert!(run(src, &FileContext::lib("selfheal-units")).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = run(
            "fn f(x: Option<u8>) -> u8 { x.unwrap_or(3) }",
            &FileContext::lib("selfheal-bti"),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_mod_is_fine() {
        let f = run(
            "#[cfg(test)] mod tests { fn f(x: Option<u8>) -> u8 { x.unwrap() } }",
            &FileContext::lib("selfheal-bti"),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn physical_literals_out_of_range() {
        let f = run(
            "fn f() { let v = Volts::new(12.0); let t = Celsius::new(-60.0); let ok = Volts::new(-0.3); }",
            &FileContext::example("selfheal"),
        );
        assert_eq!(
            lint_ids(&f),
            vec!["suspicious-physical-literal", "suspicious-physical-literal"]
        );
        assert!(f[0].message.contains("12"));
        assert!(f[1].message.contains("-60"));
    }

    #[test]
    fn bare_physical_param_and_return() {
        let f = run(
            "pub fn plan(vdd_volts: f64, count: f64) -> f64 { vdd_volts }\npub fn margin_mv(&self) -> f64 { 0.0 }",
            &FileContext::lib("selfheal"),
        );
        assert_eq!(
            lint_ids(&f),
            vec!["bare-physical-f64", "bare-physical-f64"]
        );
        assert!(f[0].message.contains("vdd_volts"));
        assert!(f[1].message.contains("margin_mv"));
    }

    #[test]
    fn bare_physical_struct_fields_are_flagged() {
        let f = run(
            "pub struct Report { pub worst_mv: f64, pub per_core_mv: Vec<f64>, pub count: usize }",
            &FileContext::lib("selfheal-multicore"),
        );
        assert_eq!(
            lint_ids(&f),
            vec!["bare-physical-f64", "bare-physical-f64"]
        );
        assert!(f[0].message.contains("worst_mv"));
        assert!(f[1].message.contains("per_core_mv"));
    }

    #[test]
    fn typed_and_private_struct_fields_are_clean() {
        let f = run(
            "pub struct Report { pub worst_mv: Millivolts, setpoint_mv: f64 }",
            &FileContext::lib("selfheal-multicore"),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn struct_field_allow_comment_suppresses() {
        let src = "pub struct S {\n    // analyzer: allow(bare-physical-f64)\n    pub served_core_seconds: f64,\n}";
        assert!(run(src, &FileContext::lib("selfheal-multicore")).is_empty());
    }

    #[test]
    fn typed_params_are_clean() {
        let f = run(
            "pub fn plan(vdd: Volts, temp: Celsius) -> Millivolts { Millivolts::new(0.0) }",
            &FileContext::lib("selfheal"),
        );
        // The unit return needs #[must_use] only for self-taking fns;
        // free fns are not flagged.
        assert!(f.is_empty());
    }

    #[test]
    fn must_use_missing_and_present() {
        let src = "impl X { pub fn margin(&self) -> Millivolts { self.m } }";
        let f = run(src, &FileContext::lib("selfheal"));
        assert_eq!(lint_ids(&f), vec!["missing-must-use"]);

        let src_ok = "impl X { #[must_use] pub fn margin(&self) -> Millivolts { self.m } }";
        assert!(run(src_ok, &FileContext::lib("selfheal")).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_next_line() {
        let src = "// analyzer: allow(unwrap-in-lib)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
        assert!(run(src, &FileContext::lib("selfheal-bti")).is_empty());
    }

    #[test]
    fn raw_thread_spawn_flagged_outside_runtime_crates() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(
            lint_ids(&run(src, &FileContext::lib("selfheal-bti"))),
            vec!["raw-thread-spawn"]
        );
        // Short-path form is the same construct.
        let short = "use std::thread;\nfn f() { thread::spawn(|| {}); }";
        assert_eq!(
            lint_ids(&run(short, &FileContext::lib("selfheal-bench"))),
            vec!["raw-thread-spawn"]
        );
    }

    #[test]
    fn runtime_and_telemetry_may_spawn_threads() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        assert!(run(src, &FileContext::lib("selfheal-runtime")).is_empty());
        assert!(run(src, &FileContext::lib("selfheal-telemetry")).is_empty());
    }

    #[test]
    fn thread_spawn_in_test_region_is_fine() {
        let src = "#[cfg(test)] mod tests { fn f() { std::thread::spawn(|| {}); } }";
        assert!(run(src, &FileContext::lib("selfheal-bti")).is_empty());
    }

    #[test]
    fn test_targets_skip_ordering_and_literal_lints() {
        let src = "fn f(v: &[f64]) -> f64 { v.iter().copied().fold(f64::MIN, f64::max) }";
        assert!(run(src, &FileContext::test_target("selfheal-repro")).is_empty());
    }

    #[test]
    fn unseeded_rng_constructors_are_flagged() {
        let src = "fn f() -> f64 { let mut r = rand::thread_rng(); r.gen() }";
        assert_eq!(
            lint_ids(&run(src, &FileContext::lib("selfheal-bti"))),
            vec!["unseeded-rng"]
        );
        let entropy = "fn f() { let r = StdRng::from_entropy(); }";
        assert_eq!(
            lint_ids(&run(entropy, &FileContext::example("selfheal"))),
            vec!["unseeded-rng"]
        );
    }

    #[test]
    fn seeded_rng_is_clean_and_tests_may_use_entropy() {
        let seeded = "fn f(seeds: &SeedSequence) { let r = seeds.rng(3); let s = StdRng::seed_from_u64(9); }";
        assert!(run(seeded, &FileContext::lib("selfheal-bti")).is_empty());
        let test_src = "#[cfg(test)] mod tests { fn f() { let r = rand::thread_rng(); } }";
        assert!(run(test_src, &FileContext::lib("selfheal-bti")).is_empty());
    }

    #[test]
    fn hash_iteration_is_flagged_in_lib_code() {
        let src = "fn f(m: HashMap<String, f64>) -> Vec<f64> { m.values().copied().collect() }";
        assert_eq!(
            lint_ids(&run(src, &FileContext::lib("selfheal"))),
            vec!["nondeterministic-iteration"]
        );
        let for_loop = "fn f() { let mut s = HashSet::new(); for x in &s { use_it(x); } }";
        assert_eq!(
            lint_ids(&run(for_loop, &FileContext::lib("selfheal"))),
            vec!["nondeterministic-iteration"]
        );
    }

    #[test]
    fn btree_collections_are_clean_except_set_retain() {
        let clean = "fn f(m: BTreeMap<String, f64>) -> Vec<f64> { m.values().copied().collect() }";
        assert!(run(clean, &FileContext::lib("selfheal")).is_empty());
        let retain = "fn f(s: &mut BTreeSet<u64>) { s.retain(|x| x % 2 == 0); }";
        assert_eq!(
            lint_ids(&run(retain, &FileContext::lib("selfheal"))),
            vec!["nondeterministic-iteration"]
        );
        // BTreeSet iteration is sorted — not flagged.
        let iter = "fn f(s: &BTreeSet<u64>) -> Vec<u64> { s.iter().copied().collect() }";
        assert!(run(iter, &FileContext::lib("selfheal")).is_empty());
    }

    #[test]
    fn hash_iteration_ignored_outside_lib_code() {
        let src = "fn f(m: HashMap<String, f64>) -> Vec<f64> { m.values().copied().collect() }";
        assert!(run(src, &FileContext::example("selfheal")).is_empty());
    }
}
