//! Fixture for the raw-thread-spawn lint. Checked as library code of a
//! non-exempt crate; every line the analyzer must flag carries a
//! trailing `//~ raw-thread-spawn` marker.

use std::thread;

fn fully_qualified() {
    std::thread::spawn(|| {}); //~ raw-thread-spawn
}

fn short_path() {
    let handle = thread::spawn(|| 42); //~ raw-thread-spawn
    let _ = handle.join();
}

fn builder_is_a_different_construct() {
    // `thread::Builder` is not matched — the runtime crate names its
    // workers through it, and copying that pattern elsewhere still reads
    // as deliberate; the lint targets the fire-and-forget form.
    let _ = thread::Builder::new();
}

fn sleeping_is_not_spawning() {
    thread::sleep(std::time::Duration::from_millis(1));
}

fn suppressed() {
    // analyzer: allow(raw-thread-spawn)
    std::thread::spawn(|| {});
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_spawn_helpers() {
        let handle = std::thread::spawn(|| 1);
        assert_eq!(handle.join().unwrap(), 1);
    }
}
