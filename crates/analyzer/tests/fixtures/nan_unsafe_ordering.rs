//! Fixture for the `nan-unsafe-ordering` lint. Offending lines carry a
//! `//~ <lint-id>` marker; unmarked lines are deliberate true negatives.

pub fn sort_scores(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ nan-unsafe-ordering
}

pub fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::MIN, f64::max) //~ nan-unsafe-ordering
}

pub fn worst(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::MAX, f64::min) //~ nan-unsafe-ordering
}

pub fn silently_misordered(xs: &mut Vec<f64>) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); //~ nan-unsafe-ordering
}

pub fn clamped(x: f64) -> f64 {
    // True negative: a direct call chooses its NaN handling explicitly.
    f64::max(x, 0.0)
}

pub fn ordered(a: f64, b: f64) -> std::cmp::Ordering {
    // True negative: total ordering is what the lint asks for.
    a.total_cmp(&b)
}

pub fn sorted(xs: &mut Vec<f64>) {
    // True negative: NaN-total sort.
    xs.sort_by(f64::total_cmp);
}

#[cfg(test)]
mod tests {
    // True negative: test regions are exempt from the ordering lints.
    pub fn sloppy(xs: &mut Vec<f64>) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
