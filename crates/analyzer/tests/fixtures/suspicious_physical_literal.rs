//! Fixture for the `suspicious-physical-literal` lint. Offending lines
//! carry a `//~ <lint-id>` marker; unmarked lines are true negatives.

fn main() {
    let nominal = Volts::new(1.2);
    let chamber = Celsius::new(110.0);
    let reverse = Volts::new(-0.3);
    let cold_spec = Celsius::new(-55.0);
    let wallwart = Volts::new(12.0); //~ suspicious-physical-literal
    let nitrogen = Celsius::new(-196.0); //~ suspicious-physical-literal
    let molten = Celsius::new(400.0); //~ suspicious-physical-literal
    let reversed_rail = Volts::new(-5.0); //~ suspicious-physical-literal
    // analyzer: allow(suspicious-physical-literal)
    let chamber_capability = Celsius::new(180.0);
    let computed = Volts::new(2.0 * 0.6);
    let from_variable = Volts::new(nominal_vdd);
}
