//! Fixture for the `missing-must-use` lint. Offending lines carry a
//! `//~ <lint-id>` marker; unmarked lines are deliberate true negatives.

pub struct Sensor {
    last: Millivolts,
}

impl Sensor {
    pub fn last_reading(&self) -> Millivolts { //~ missing-must-use
        self.last
    }

    pub fn into_reading(self) -> Millivolts { //~ missing-must-use
        self.last
    }

    // True negative: already annotated.
    #[must_use]
    pub fn calibrated(&self) -> Millivolts {
        self.last
    }

    // True negative: `&mut self` methods may be called for their effect.
    pub fn drain(&mut self) -> Millivolts {
        self.last
    }

    // True negative: non-unit return types are out of scope.
    pub fn label(&self) -> String {
        String::new()
    }
}

// True negative: free functions take no `self`.
pub fn convert(reading: Millivolts) -> Millivolts {
    reading
}
