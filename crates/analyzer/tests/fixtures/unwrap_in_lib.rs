//! Fixture for the `unwrap-in-lib` lint. Offending lines carry a
//! `//~ <lint-id>` marker; unmarked lines are deliberate true negatives.

pub fn parse_count(text: &str) -> usize {
    text.trim().parse().unwrap() //~ unwrap-in-lib
}

pub fn first_key(map: &std::collections::BTreeMap<u32, u32>) -> u32 {
    *map.keys().next().expect("map must not be empty") //~ unwrap-in-lib
}

pub fn documented_invariant(xs: &[f64]) -> f64 {
    // True negative: pattern-match + explicit panic documents the invariant.
    match xs.first() {
        Some(first) => *first,
        None => panic!("caller guarantees a non-empty slice"),
    }
}

pub fn tolerated(text: &str) -> usize {
    // analyzer: allow(unwrap-in-lib)
    text.len().checked_mul(2).unwrap()
}

#[cfg(test)]
mod tests {
    // True negative: unwrap in tests is idiomatic.
    pub fn assert_roundtrip(text: &str) {
        let n: usize = text.parse().unwrap();
        assert!(n > 0);
    }
}
