//! Fixture for the `bare-physical-f64` lint. Offending lines carry a
//! `//~ <lint-id>` marker; unmarked lines are deliberate true negatives.

pub struct Regulator {
    setpoint_mv: f64,
}

impl Regulator {
    pub fn program(&mut self, vdd_volts: f64) { //~ bare-physical-f64
        self.setpoint_mv = 1000.0 * vdd_volts;
    }

    pub fn margin_mv(&self) -> f64 { //~ bare-physical-f64
        self.setpoint_mv
    }
}

pub fn schedule(temp_celsius: f64, weight: f64) -> f64 { //~ bare-physical-f64
    temp_celsius * weight
}

// True negative: private functions are not part of the API contract.
fn helper(vdd_volts: f64) -> f64 {
    vdd_volts
}

// True negative: the typed signature this lint pushes toward.
pub fn plan(vdd: Volts, temp: Celsius) -> Millivolts {
    Millivolts::new(vdd.get() * temp.get())
}

#[cfg(test)]
mod tests {
    // True negative: test-region signatures are exempt.
    pub fn stress(vdd_volts: f64) -> f64 {
        vdd_volts
    }
}
