//! Fixture for the `bare-physical-f64` lint. Offending lines carry a
//! `//~ <lint-id>` marker; unmarked lines are deliberate true negatives.

pub struct Regulator {
    // True negative: private fields are not API surface.
    setpoint_mv: f64,
}

pub struct Readout {
    pub shift_mv: f64, //~ bare-physical-f64
    pub per_core_mv: Vec<f64>, //~ bare-physical-f64
    pub margin: Option<f64>, //~ bare-physical-f64
    // True negative: typed field, the shape this lint pushes toward.
    pub worst: Millivolts,
    // True negative: no physical-name hint.
    pub samples: Vec<f64>,
    // analyzer: allow(bare-physical-f64) -- compound unit (core-seconds)
    pub served_core_seconds: f64,
}

impl Regulator {
    pub fn program(&mut self, vdd_volts: f64) { //~ bare-physical-f64
        self.setpoint_mv = 1000.0 * vdd_volts;
    }

    pub fn margin_mv(&self) -> f64 { //~ bare-physical-f64
        self.setpoint_mv
    }
}

pub fn schedule(temp_celsius: f64, weight: f64) -> f64 { //~ bare-physical-f64
    temp_celsius * weight
}

// True negative: private functions are not part of the API contract.
fn helper(vdd_volts: f64) -> f64 {
    vdd_volts
}

// True negative: the typed signature this lint pushes toward.
pub fn plan(vdd: Volts, temp: Celsius) -> Millivolts {
    Millivolts::new(vdd.get() * temp.get())
}

#[cfg(test)]
mod tests {
    // True negative: test-region signatures are exempt.
    pub fn stress(vdd_volts: f64) -> f64 {
        vdd_volts
    }
}
