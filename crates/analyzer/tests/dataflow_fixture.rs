//! End-to-end dataflow fixtures: a synthetic on-disk mini workspace
//! with a known tainted chain, checked down to the exact reported call
//! path, plus a property test that taint propagation is monotone under
//! edge insertion.

use std::path::{Path, PathBuf};

use proptest::{collection, proptest};
use selfheal_analyzer::purity::propagate;
use selfheal_analyzer::{workspace_dataflow, Lint};

/// Materializes a mini workspace (root manifest + one member crate)
/// under a scratch dir and returns its root.
fn mini_workspace(tag: &str, lib_source: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!(
        "selfheal-analyzer-dataflow-{tag}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&root).ok();
    let src_dir = root.join("crates/mini/src");
    std::fs::create_dir_all(&src_dir).expect("test value");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/mini\"]\n")
        .expect("test value");
    std::fs::write(
        root.join("crates/mini/Cargo.toml"),
        "[package]\nname = \"mini\"\n",
    )
    .expect("test value");
    std::fs::write(src_dir.join("lib.rs"), lib_source).expect("test value");
    root
}

/// The known tainted chain: a cache-fed root (`cell`) reaching a clock
/// sink two hops down (`cell` → `helper` → `Instant::now`).
///
/// Line numbers in the expectations below index into this literal — the
/// `fn` keywords sit on lines 2, 5, and 8, the sink on line 9.
const TAINTED_CHAIN: &str = "\
use std::time::Instant;
pub fn run(cache: &ResultCache) -> f64 {
    cache.get_or_compute(\"ns\", 1, \"k\", || cell()).0
}
pub fn cell() -> f64 {
    helper()
}
fn helper() -> f64 {
    let _t = Instant::now();
    0.0
}
";

#[test]
fn tainted_chain_reports_the_exact_call_path() {
    let root = mini_workspace("chain", TAINTED_CHAIN);
    let flow = workspace_dataflow(&root).expect("analyzable workspace");
    let tainted: Vec<_> = flow
        .findings
        .iter()
        .filter(|f| f.lint == Lint::TaintedRoot)
        .collect();
    assert_eq!(tainted.len(), 1, "findings: {:#?}", flow.findings);
    let finding = tainted[0];
    assert_eq!(finding.file, Path::new("crates/mini/src/lib.rs"));
    assert_eq!(finding.line, 5);
    assert!(
        finding.message.contains("`cell`")
            && finding.message.contains("cache")
            && finding.message.contains("clock sink"),
        "message: {}",
        finding.message
    );
    assert_eq!(
        finding.call_path,
        vec![
            "cell (crates/mini/src/lib.rs:5)".to_string(),
            "helper (crates/mini/src/lib.rs:8)".to_string(),
            "sink: Instant::now (crates/mini/src/lib.rs:9)".to_string(),
        ]
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn trust_annotation_silences_the_chain() {
    let trusted = TAINTED_CHAIN.replace(
        "fn helper() -> f64 {",
        "// analyzer: trust(clock): fixture — timestamp is discarded\nfn helper() -> f64 {",
    );
    let root = mini_workspace("trusted", &trusted);
    let flow = workspace_dataflow(&root).expect("analyzable workspace");
    assert!(
        flow.findings.iter().all(|f| f.lint != Lint::TaintedRoot),
        "findings: {:#?}",
        flow.findings
    );
    // The root is still recognized — it's exempted, not forgotten.
    assert!(!flow.graph.roots.is_empty());
    std::fs::remove_dir_all(&root).ok();
}

/// Folds a `(from, to)` edge list into the adjacency shape
/// [`propagate`] takes, dropping out-of-range endpoints.
fn adjacency(n: usize, pairs: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); n];
    for &(from, to) in pairs {
        if from < n && to < n {
            adj[from].push(to);
        }
    }
    adj
}

proptest! {
    /// Monotonicity: inserting call edges can only grow effective taint,
    /// never shrink it. This is what makes the analysis sound as an
    /// over-approximation — a resolver that reports extra candidate
    /// callees (method calls do) can produce false positives but never
    /// mask a real taint.
    #[test]
    fn taint_propagation_is_monotone_under_edge_insertion(
        own in collection::vec(0u8..32, 8..9),
        trusted in collection::vec(0u8..32, 8..9),
        edges in collection::vec((0usize..8, 0usize..8), 0..25),
        extra in (0usize..8, 0usize..8),
    ) {
        let n = own.len();
        let base = propagate(&own, &trusted, &adjacency(n, &edges));
        let mut more = edges.clone();
        more.push(extra);
        let grown = propagate(&own, &trusted, &adjacency(n, &more));
        for (node, (before, after)) in base.iter().zip(&grown).enumerate() {
            proptest::prop_assert!(
                before & !after == 0,
                "node {node}: taint shrank from {before:#07b} to {after:#07b} \
                 after inserting edge {extra:?}"
            );
        }
    }
}
