//! Fixture-driven lint tests.
//!
//! Each fixture under `tests/fixtures/` marks every line the analyzer
//! must flag with a trailing `//~ <lint-id>` comment; every unmarked
//! line is a deliberate true negative. The tests demand an *exact*
//! match between markers and findings — same lints, same lines, no
//! extras — so both false negatives and false positives fail loudly.
//!
//! The fixtures live in a subdirectory of `tests/`, which the workspace
//! walker never descends into, so they are invisible to `cargo analyzer
//! check` and never compiled by cargo.

use std::path::Path;

use selfheal_analyzer::{analyze_source, FileContext, Lint};

/// Extracts `(lint-id, line)` expectations from `//~` markers. Marker
/// text that is not a real lint id (e.g. the doc-comment explaining the
/// convention) is ignored.
fn expectations(src: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~ ") {
            let id = line[pos + 4..].split_whitespace().next().unwrap_or("");
            if Lint::from_id(id).is_some() {
                out.push((id.to_string(), (i + 1) as u32));
            }
        }
    }
    out
}

fn check(fixture_name: &str, src: &str, ctx: &FileContext) {
    let findings = analyze_source(Path::new(fixture_name), src, ctx);
    let actual: Vec<(String, u32)> = findings
        .iter()
        .map(|f| (f.lint.id().to_string(), f.line))
        .collect();
    assert_eq!(
        actual,
        expectations(src),
        "fixture {fixture_name}: findings (left) must match //~ markers (right)\n{}",
        findings
            .iter()
            .map(selfheal_analyzer::Finding::render_text)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn bare_physical_f64_fixture() {
    check(
        "bare_physical_f64.rs",
        include_str!("fixtures/bare_physical_f64.rs"),
        &FileContext::lib("selfheal"),
    );
}

#[test]
fn nan_unsafe_ordering_fixture() {
    check(
        "nan_unsafe_ordering.rs",
        include_str!("fixtures/nan_unsafe_ordering.rs"),
        &FileContext::lib("selfheal-multicore"),
    );
}

#[test]
fn unwrap_in_lib_fixture() {
    check(
        "unwrap_in_lib.rs",
        include_str!("fixtures/unwrap_in_lib.rs"),
        &FileContext::lib("selfheal-bti"),
    );
}

#[test]
fn suspicious_physical_literal_fixture() {
    check(
        "suspicious_physical_literal.rs",
        include_str!("fixtures/suspicious_physical_literal.rs"),
        &FileContext::example("selfheal"),
    );
}

#[test]
fn missing_must_use_fixture() {
    check(
        "missing_must_use.rs",
        include_str!("fixtures/missing_must_use.rs"),
        &FileContext::lib("selfheal-fpga"),
    );
}

#[test]
fn raw_thread_spawn_fixture() {
    check(
        "raw_thread_spawn.rs",
        include_str!("fixtures/raw_thread_spawn.rs"),
        &FileContext::lib("selfheal-bti"),
    );
}

#[test]
fn raw_thread_spawn_exempts_the_runtime_crates() {
    // The same source is clean inside the crates that own threading.
    let src = include_str!("fixtures/raw_thread_spawn.rs");
    for crate_name in ["selfheal-runtime", "selfheal-telemetry"] {
        let findings = analyze_source(
            Path::new("raw_thread_spawn.rs"),
            src,
            &FileContext::lib(crate_name),
        );
        assert!(
            findings.is_empty(),
            "{crate_name} must be exempt: {findings:?}"
        );
    }
}

#[test]
fn unwrap_gating_is_per_crate() {
    // The same unwrap-laden source is clean in a crate outside the
    // gated set (e.g. the bench plumbing) — the lint is a model-code
    // policy, not a blanket ban.
    let src = include_str!("fixtures/unwrap_in_lib.rs");
    let findings = analyze_source(
        Path::new("unwrap_in_lib.rs"),
        src,
        &FileContext::lib("selfheal-bench"),
    );
    assert!(
        findings.is_empty(),
        "ungated crate must not report unwrap-in-lib: {findings:?}"
    );
}

#[test]
fn test_targets_are_exempt_from_code_lints() {
    // A test target gets no findings at all from the ordering or
    // literal lints, even for blatant patterns.
    let src = include_str!("fixtures/nan_unsafe_ordering.rs");
    let findings = analyze_source(
        Path::new("nan_unsafe_ordering.rs"),
        src,
        &FileContext::test_target("selfheal-multicore"),
    );
    assert!(findings.is_empty(), "test targets are exempt: {findings:?}");
}
