//! Criterion bench: the stochastic trapping/detrapping engine — the
//! "silicon" every measurement derives from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_bti::td::{TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Hours, Volts};

fn bench_stochastic(c: &mut Criterion) {
    let params = TrapEnsembleParams::default();
    let stress = DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)));
    let heal = DeviceCondition::recovery(Environment::new(Volts::new(-0.3), Celsius::new(110.0)));

    c.bench_function("stochastic/sample_device", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| TrapEnsemble::sample(black_box(&params), &mut rng))
    });

    c.bench_function("stochastic/advance_device_one_step", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let device = TrapEnsemble::sample(&params, &mut rng);
        b.iter_batched(
            || device.clone(),
            |mut d| {
                d.advance(black_box(stress), Hours::new(24.0).into());
                d.delta_vth()
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("stochastic/stress_recover_cycle", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let device = TrapEnsemble::sample(&params, &mut rng);
        b.iter_batched(
            || device.clone(),
            |mut d| {
                d.advance(stress, Hours::new(24.0).into());
                d.advance(heal, Hours::new(6.0).into());
                d.delta_vth()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_stochastic);
criterion_main!(benches);
