//! Criterion bench: cost of the telemetry layer on an instrumented hot
//! path (the multi-core scheduling step, which emits one event, one
//! counter, one gauge and one histogram observation per call).
//!
//! Three configurations:
//!
//! * `off` — no sink, metrics disabled: every instrumentation site is a
//!   single relaxed atomic load (the <5 % no-op overhead budget);
//! * `metrics` — registry recording, no sink;
//! * `memory_sink` — full event stream into an in-process sink.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selfheal_multicore::scheduler::HeaterAware;
use selfheal_multicore::sim::{MulticoreSim, SimConfig};
use selfheal_multicore::workload::Workload;
use selfheal_telemetry as telemetry;

fn day_of_steps() -> f64 {
    let mut sim = MulticoreSim::new(
        SimConfig::default(),
        Box::new(HeaterAware::paper_default()),
        Workload::constant(6),
    );
    sim.run_days(1.0).worst_delta_vth_mv.get()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    c.bench_function("telemetry/day_of_steps_off", |b| {
        telemetry::metrics::set_enabled(false);
        b.iter(|| black_box(day_of_steps()));
    });

    c.bench_function("telemetry/day_of_steps_metrics", |b| {
        telemetry::metrics::set_enabled(true);
        b.iter(|| black_box(day_of_steps()));
        telemetry::metrics::set_enabled(false);
        telemetry::metrics::reset();
    });

    c.bench_function("telemetry/day_of_steps_memory_sink", |b| {
        let sink = telemetry::MemorySink::new();
        let guard = telemetry::install_sink(sink.clone());
        telemetry::metrics::set_enabled(true);
        b.iter(|| {
            let report = day_of_steps();
            let _ = sink.drain_current_thread();
            black_box(report)
        });
        telemetry::metrics::set_enabled(false);
        telemetry::metrics::reset();
        drop(guard);
    });
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
