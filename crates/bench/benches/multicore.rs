//! Criterion bench: the multi-core aging race — scheduling step cost and
//! month-scale simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selfheal_multicore::scheduler::{CircadianRotation, HeaterAware};
use selfheal_multicore::sim::{MulticoreSim, SimConfig};
use selfheal_multicore::workload::Workload;

fn bench_multicore(c: &mut Criterion) {
    c.bench_function("multicore/single_step_rotation", |b| {
        b.iter_batched(
            || {
                MulticoreSim::new(
                    SimConfig::default(),
                    Box::new(CircadianRotation::paper_default()),
                    Workload::constant(6),
                )
            },
            |mut sim| {
                sim.step();
                black_box(sim.now())
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("multicore/30_days_heater_aware", |b| {
        b.iter(|| {
            let mut sim = MulticoreSim::new(
                SimConfig::default(),
                Box::new(HeaterAware::paper_default()),
                Workload::diurnal(2, 8),
            );
            sim.run_days(black_box(30.0))
        })
    });
}

criterion_group!(benches, bench_multicore);
criterion_main!(benches);
