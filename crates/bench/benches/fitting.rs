//! Criterion bench: the Table 3 parameter extraction — grid search plus
//! refinement over realistic-length measurement series.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selfheal::fitting::{FittedRecoveryCurve, FittedStressCurve};
use selfheal_units::{Nanoseconds, Seconds};

fn stress_series() -> Vec<(Seconds, Nanoseconds)> {
    // 73 points, like a 24 h phase sampled every 20 minutes.
    (0..=72)
        .map(|i| {
            let t = 1200.0 * f64::from(i);
            (
                Seconds::new(t),
                Nanoseconds::new(0.35 * (1.0 + 5e-3 * t).ln()),
            )
        })
        .collect()
}

fn recovery_series() -> Vec<(Seconds, Nanoseconds)> {
    // 13 points, like a 6 h phase sampled every 30 minutes.
    (0..=12)
        .map(|i| {
            let t2 = 1800.0 * f64::from(i);
            let g = (1.0 + 2e-2 * t2).ln() / (1.0 + 0.5 * (1.0 + 2e-2 * (86_400.0 + t2)).ln());
            (Seconds::new(t2), Nanoseconds::new(2.0 * g))
        })
        .collect()
}

fn bench_fitting(c: &mut Criterion) {
    let stress = stress_series();
    let recovery = recovery_series();

    c.bench_function("fitting/stress_curve_73pts", |b| {
        b.iter(|| FittedStressCurve::fit(black_box(&stress)))
    });

    c.bench_function("fitting/recovery_curve_13pts", |b| {
        b.iter(|| FittedRecoveryCurve::fit(black_box(&recovery), Seconds::new(86_400.0)))
    });
}

criterion_group!(benches, bench_fitting);
criterion_main!(benches);
