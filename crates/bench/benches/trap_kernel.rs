//! Criterion bench: the trap-kinetics kernel's three equivalent paths —
//! per-trap scalar, hoisted rates, and the SoA bank — at 1k/10k/100k
//! traps. The `trap_kernel` *binary* records the headline numbers to a
//! manifest; this harness keeps the same comparison runnable under
//! `cargo bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfheal_bti::td::{PhaseRates, Trap, TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Millivolts, Minutes, Seconds, Volts};

/// Exactly `size` traps from the default distributions
/// ([`TrapEnsemble::sample`]'s Poisson count cannot reach these sizes).
fn ensemble_of(size: usize, seed: u64) -> TrapEnsemble {
    let params = TrapEnsembleParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = params.log10_tau_c_range;
    let (rlo, rhi) = params.log10_tau_ratio_range;
    let traps: Vec<Trap> = (0..size)
        .map(|_| {
            let log_tau_c = rng.gen_range(lo..hi);
            let ratio = rng.gen_range(rlo..rhi);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            Trap::new(
                Seconds::new(10f64.powf(log_tau_c)),
                Seconds::new(10f64.powf(log_tau_c + ratio)),
                Millivolts::new(-params.delta_vth_mean_mv.get() * u.ln()),
                rng.gen_bool(params.permanent_fraction),
            )
        })
        .collect();
    TrapEnsemble::from_traps(traps)
}

fn bench_trap_kernel(c: &mut Criterion) {
    let cond = DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)));
    let dt: Seconds = Minutes::new(20.0).into();

    for (i, size) in [1_000usize, 10_000, 100_000].into_iter().enumerate() {
        let ensemble = ensemble_of(size, 2014 + i as u64);
        let traps: Vec<Trap> = ensemble.iter().collect();

        c.bench_function(&format!("trap_kernel/scalar_{size}"), |b| {
            let mut traps = traps.clone();
            b.iter(|| {
                for trap in &mut traps {
                    trap.advance(black_box(cond), dt);
                }
            });
        });

        c.bench_function(&format!("trap_kernel/hoisted_{size}"), |b| {
            let mut traps = traps.clone();
            b.iter(|| {
                let rates = PhaseRates::for_condition(black_box(cond));
                for trap in &mut traps {
                    trap.advance_with_rates(&rates, dt);
                }
            });
        });

        c.bench_function(&format!("trap_kernel/soa_{size}"), |b| {
            let mut device = ensemble.clone();
            b.iter(|| {
                device.advance(black_box(cond), dt);
                device.expected_occupied()
            });
        });
    }
}

criterion_group!(benches, bench_trap_kernel);
criterion_main!(benches);
