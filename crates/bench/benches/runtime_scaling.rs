//! Criterion bench: scaling of the `selfheal-runtime` work-stealing pool
//! on the Fig. 5 ensemble workload, plus the result cache's hit/miss gap.
//!
//! Two families:
//!
//! * `runtime/ensemble_w{1,2,4,8}` — sample-and-stress a 64-device trap
//!   population on pools of 1/2/4/8 workers. Results are bit-identical at
//!   every width (the determinism suite pins that); only wall-clock moves.
//!   On a single-core host the widths tie — the trajectory is the point.
//! * `runtime/cache_{miss,hit}` — the same sampling stage through the
//!   content-addressed result cache, forced-miss vs warmed.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selfheal_bti::td::{sample_population_cached, TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_runtime::{CacheOutcome, Pool, ResultCache, SeedSequence};
use selfheal_units::{Celsius, Hours, Seconds, Volts};

const DEVICES: usize = 64;
const SEED: u64 = 2014;

/// One Fig. 5-shaped unit of work: sample a device and run it through a
/// 24 h DC stress at 110 °C.
fn stressed_device(params: &TrapEnsembleParams, seeds: &SeedSequence, i: u64) -> f64 {
    let mut device = TrapEnsemble::sample(params, &mut seeds.rng(i));
    let stress =
        DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)));
    let dt: Seconds = Hours::new(24.0).into();
    device.advance(stress, dt);
    device.delta_vth().get()
}

fn ensemble_workload(pool: &Pool) -> f64 {
    let params = TrapEnsembleParams::default();
    let seeds = SeedSequence::new(SEED);
    let shifts = pool.par_map_indexed(vec![(); DEVICES], move |i, ()| {
        stressed_device(&params, &seeds, i as u64)
    });
    shifts.iter().sum()
}

fn bench_pool_scaling(c: &mut Criterion) {
    for workers in [1usize, 2, 4, 8] {
        let pool = Pool::new(workers);
        c.bench_function(&format!("runtime/ensemble_w{workers}"), |b| {
            b.iter(|| black_box(ensemble_workload(&pool)));
        });
    }
}

fn bench_cache(c: &mut Criterion) {
    let root = std::env::temp_dir().join(format!("selfheal-runtime-scaling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cache = ResultCache::at(root.clone());
    let params = TrapEnsembleParams::default();

    c.bench_function("runtime/cache_miss", |b| {
        let mut seed = SEED;
        b.iter(|| {
            // A fresh seed per iteration defeats the cache: every lookup
            // recomputes and writes a new entry.
            seed += 1;
            let (population, outcome) = sample_population_cached(&params, DEVICES, seed, &cache);
            assert_eq!(outcome, CacheOutcome::Miss);
            black_box(population.len())
        });
    });

    // Warm one entry, then time pure hits against it.
    let (_, first) = sample_population_cached(&params, DEVICES, SEED, &cache);
    assert_eq!(first, CacheOutcome::Miss);
    c.bench_function("runtime/cache_hit", |b| {
        b.iter(|| {
            let (population, outcome) = sample_population_cached(&params, DEVICES, SEED, &cache);
            assert_eq!(outcome, CacheOutcome::Hit);
            black_box(population.len())
        });
    });

    let _ = std::fs::remove_dir_all(&root);
}

criterion_group!(benches, bench_pool_scaling, bench_cache);
criterion_main!(benches);
