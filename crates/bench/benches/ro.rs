//! Criterion bench: the FPGA measurement pipeline — chip construction,
//! full-fabric aging steps and counter reads.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_bti::Environment;
use selfheal_fpga::{Chip, ChipId, RoMode};
use selfheal_units::{Celsius, Hours, Volts};

fn bench_ro(c: &mut Criterion) {
    let hot = Environment::new(Volts::new(1.2), Celsius::new(110.0));

    c.bench_function("ro/sample_chip", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut next = 0u32;
        b.iter(|| {
            next += 1;
            Chip::commercial_40nm(ChipId::new(next), &mut rng)
        })
    });

    c.bench_function("ro/measure", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
        b.iter(|| chip.measure(&mut rng))
    });

    c.bench_function("ro/advance_fabric_20min_dc", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
        b.iter_batched(
            || chip.clone(),
            |mut chip| {
                chip.advance(black_box(RoMode::Static), hot, Hours::new(1.0 / 3.0).into());
                chip.true_cut_delay()
            },
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("ro/full_24h_stress_phase", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
        b.iter_batched(
            || chip.clone(),
            |mut chip| {
                // 72 sampling steps of 20 minutes, as in the paper.
                for _ in 0..72 {
                    chip.advance(RoMode::Static, hot, Hours::new(1.0 / 3.0).into());
                }
                chip.true_cut_delay()
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_ro);
criterion_main!(benches);
