//! Criterion bench: throughput of the first-order analytic model — the
//! cheap engine everything long-horizon (policies, multi-core) runs on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use selfheal_bti::analytic::{AnalyticBti, CycleModel, RecoveryModel, StressModel};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Hours, Ratio, Seconds, Volts};

fn bench_analytic(c: &mut Criterion) {
    let env = Environment::new(Volts::new(1.2), Celsius::new(110.0));
    let stress = StressModel::default();
    let recovery = RecoveryModel::default();

    c.bench_function("analytic/stress_eval", |b| {
        b.iter(|| stress.delta_vth(black_box(Seconds::new(86_400.0)), black_box(env)))
    });

    c.bench_function("analytic/recovery_eval", |b| {
        b.iter(|| {
            recovery.recovered_fraction(
                black_box(Seconds::new(21_600.0)),
                black_box(Seconds::new(86_400.0)),
                black_box(Environment::new(Volts::new(-0.3), Celsius::new(110.0))),
            )
        })
    });

    c.bench_function("analytic/advance_day", |b| {
        b.iter(|| {
            let mut model = AnalyticBti::default();
            model.advance(
                DeviceCondition::dc_stress(black_box(env)),
                Hours::new(24.0).into(),
            );
            model.delta_vth()
        })
    });

    c.bench_function("analytic/cycle_model_8_cycles", |b| {
        let model = CycleModel {
            alpha: Ratio::PAPER_ALPHA,
            period: Hours::new(30.0).into(),
            active: DeviceCondition::dc_stress(env),
            sleep: DeviceCondition::recovery(Environment::new(
                Volts::new(-0.3),
                Celsius::new(110.0),
            )),
        };
        b.iter(|| model.run(black_box(8)))
    });
}

criterion_group!(benches, bench_analytic);
criterion_main!(benches);
