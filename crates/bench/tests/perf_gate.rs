//! End-to-end fixture test for the perf ledger + gate pair: seed a
//! history from fixture manifests via `perf_ledger`, then check that
//! `perf_gate` passes IQR-level noise, fails a synthetic 2× slowdown
//! with a non-zero exit, and that `--smoke` validates the history.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const LEDGER_BIN: &str = env!("CARGO_BIN_EXE_perf_ledger");
const GATE_BIN: &str = env!("CARGO_BIN_EXE_perf_gate");

/// A minimal bench manifest: exactly the fields the ledger reads.
fn manifest_json(wall_ms: f64) -> String {
    format!(
        "{{\"name\": \"fixture_bench\", \"config_hash\": \"cfg1\", \
         \"values\": {{\"wall_ms\": {wall_ms}}}}}"
    )
}

fn write_manifest(dir: &Path, file: &str, wall_ms: f64) -> PathBuf {
    let path = dir.join(file);
    fs::write(&path, manifest_json(wall_ms)).expect("write fixture manifest");
    path
}

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|err| panic!("spawning {bin}: {err}"))
}

#[test]
fn gate_passes_noise_and_fails_synthetic_slowdown() {
    let scratch = std::env::temp_dir().join(format!(
        "selfheal_perf_gate_fixture_{}",
        std::process::id()
    ));
    let history = scratch.join("bench_history");
    let _ = fs::remove_dir_all(&scratch);
    fs::create_dir_all(&scratch).expect("create scratch dir");
    let history_arg = history.to_str().expect("utf-8 scratch path");

    // Seed the ledger with one noise-aware entry: five repeats around
    // 100 ms (median 100.5, IQR ≈ 1.5).
    let repeats: Vec<PathBuf> = [100.0, 101.5, 99.0, 102.0, 100.5]
        .iter()
        .enumerate()
        .map(|(i, ms)| write_manifest(&scratch, &format!("repeat{i}.json"), *ms))
        .collect();
    let mut ledger_args = vec!["--history", history_arg];
    for path in &repeats {
        ledger_args.push("--manifest");
        ledger_args.push(path.to_str().expect("utf-8 manifest path"));
    }
    let seeded = run(LEDGER_BIN, &ledger_args);
    assert!(
        seeded.status.success(),
        "perf_ledger failed: {}",
        String::from_utf8_lossy(&seeded.stderr)
    );
    let history_file = history.join("fixture_bench.jsonl");
    let recorded = fs::read_to_string(&history_file).expect("history file appended");
    assert_eq!(recorded.lines().count(), 1, "one JSONL entry per append");

    // IQR-level noise passes: 106 ms vs 100.5 is well inside the
    // rel_floor (10 % of baseline) tolerance.
    let noisy = write_manifest(&scratch, "noisy.json", 106.0);
    let pass = run(
        GATE_BIN,
        &["--history", history_arg, "--manifest", noisy.to_str().unwrap()],
    );
    assert!(
        pass.status.success(),
        "gate must pass noise, said: {}{}",
        String::from_utf8_lossy(&pass.stdout),
        String::from_utf8_lossy(&pass.stderr)
    );
    let report = String::from_utf8_lossy(&pass.stdout).to_string();
    assert!(report.contains("ok"), "verdict line printed: {report}");

    // A synthetic 2× slowdown fails with exit code 1.
    let slow = write_manifest(&scratch, "slow.json", 201.0);
    let fail = run(
        GATE_BIN,
        &["--history", history_arg, "--manifest", slow.to_str().unwrap()],
    );
    assert_eq!(
        fail.status.code(),
        Some(1),
        "gate must exit 1 on regression, said: {}{}",
        String::from_utf8_lossy(&fail.stdout),
        String::from_utf8_lossy(&fail.stderr)
    );
    assert!(
        String::from_utf8_lossy(&fail.stdout).contains("REGRESSED"),
        "regression verdict printed"
    );

    // A different config hash has no baseline → passes (config changes
    // seed a fresh baseline instead of tripping the gate).
    let other = scratch.join("other_config.json");
    fs::write(
        &other,
        "{\"name\": \"fixture_bench\", \"config_hash\": \"cfg2\", \
         \"values\": {\"wall_ms\": 500.0}}",
    )
    .expect("write other-config manifest");
    let fresh = run(
        GATE_BIN,
        &["--history", history_arg, "--manifest", other.to_str().unwrap()],
    );
    assert!(
        fresh.status.success(),
        "unknown config must pass: {}",
        String::from_utf8_lossy(&fresh.stdout)
    );
    assert!(
        String::from_utf8_lossy(&fresh.stdout).contains("no same-config baseline"),
        "fresh-baseline verdict printed"
    );

    // --smoke validates the committed-style history and the gate logic.
    let smoke = run(GATE_BIN, &["--history", history_arg, "--smoke"]);
    assert!(
        smoke.status.success(),
        "--smoke must pass on a valid history: {}",
        String::from_utf8_lossy(&smoke.stderr)
    );

    let _ = fs::remove_dir_all(&scratch);
}
