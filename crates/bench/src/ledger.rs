//! The perf ledger: noise-aware benchmark history and the regression gate.
//!
//! One run of `perf_ledger` appends one JSONL line to
//! `bench_history/<name>.jsonl` — a [`LedgerEntry`] holding, per headline
//! key, the **median** and **IQR** of N repeated measurements, plus the
//! run's `git describe` and config hash. `perf_gate` then compares a
//! current entry against the recent window of same-config history with an
//! IQR-based tolerance ([`gate`]): medians absorb outlier repeats, the
//! pooled IQR scales the tolerance to the key's observed noise, and a
//! relative floor keeps near-zero-noise histories from tripping on
//! scheduler jitter.
//!
//! The gate is one-sided and assumes **lower is better** (the ledger is
//! meant for time-like keys: ns-per-item, wall milliseconds). Improvements
//! never fail; only `current > baseline + tolerance` does.

use std::collections::BTreeMap;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use selfheal_telemetry::{Json, RunManifest};

/// Robust summary of one key's repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyStats {
    /// Median of the repeats.
    pub median: f64,
    /// Interquartile range (Q3 − Q1) of the repeats.
    pub iqr: f64,
}

/// One appended ledger record: a keyed, noise-aware summary of one
/// benchmark invocation (N repeats collapsed to median/IQR per key).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// The benchmark name (`bench_history/<name>.jsonl`).
    pub name: String,
    /// Unix timestamp (seconds) at append.
    pub created_unix_s: u64,
    /// `git describe --always --dirty` at append, when available.
    pub git_describe: Option<String>,
    /// The benchmark's manifest config hash — entries only gate against
    /// history with the *same* hash (a config change resets the baseline).
    pub config_hash: String,
    /// How many repeats the summaries collapse.
    pub n: u64,
    /// Per-key robust summaries.
    pub keys: BTreeMap<String, KeyStats>,
}

/// Linear-interpolation quantile of an ascending-sorted slice
/// (R type-7, the numpy default). Empty input yields `None`.
#[must_use]
pub fn quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Collapses repeated measurements to their median and IQR. `None` when
/// `samples` is empty or contains a non-finite value.
#[must_use]
pub fn summarize(samples: &[f64]) -> Option<KeyStats> {
    if samples.is_empty() || samples.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = quantile(&sorted, 0.5)?;
    let iqr = quantile(&sorted, 0.75)? - quantile(&sorted, 0.25)?;
    Some(KeyStats { median, iqr })
}

impl LedgerEntry {
    /// Builds an entry from per-key repeated samples (every key must have
    /// the same number of repeats; keys with no finite samples are
    /// dropped).
    #[must_use]
    pub fn from_samples(
        name: &str,
        config_hash: &str,
        git_describe: Option<String>,
        created_unix_s: u64,
        samples: &BTreeMap<String, Vec<f64>>,
    ) -> LedgerEntry {
        let n = samples.values().map(Vec::len).max().unwrap_or(0) as u64;
        LedgerEntry {
            name: name.to_string(),
            created_unix_s,
            git_describe,
            config_hash: config_hash.to_string(),
            n,
            keys: samples
                .iter()
                .filter_map(|(key, values)| Some((key.clone(), summarize(values)?)))
                .collect(),
        }
    }

    /// The JSONL representation (one compact line).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("name".to_string(), Json::String(self.name.clone())),
            (
                "created_unix_s".to_string(),
                Json::Number(self.created_unix_s as f64),
            ),
            (
                "git_describe".to_string(),
                self.git_describe
                    .as_ref()
                    .map_or(Json::Null, |d| Json::String(d.clone())),
            ),
            (
                "config_hash".to_string(),
                Json::String(self.config_hash.clone()),
            ),
            ("n".to_string(), Json::Number(self.n as f64)),
            (
                "keys".to_string(),
                Json::object(
                    self.keys
                        .iter()
                        .map(|(key, stats)| {
                            (
                                key.clone(),
                                Json::object(vec![
                                    ("median".to_string(), Json::Number(stats.median)),
                                    ("iqr".to_string(), Json::Number(stats.iqr)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses one ledger line. `None` on any missing required field.
    #[must_use]
    pub fn from_json(json: &Json) -> Option<LedgerEntry> {
        let keys_json = json.get("keys")?;
        let Json::Object(pairs) = keys_json else {
            return None;
        };
        let mut keys = BTreeMap::new();
        for (key, stats) in pairs {
            keys.insert(
                key.clone(),
                KeyStats {
                    median: stats.get("median").and_then(Json::as_f64)?,
                    iqr: stats.get("iqr").and_then(Json::as_f64)?,
                },
            );
        }
        Some(LedgerEntry {
            name: json.get("name").and_then(Json::as_str)?.to_string(),
            created_unix_s: json.get("created_unix_s").and_then(Json::as_f64)? as u64,
            git_describe: json
                .get("git_describe")
                .and_then(Json::as_str)
                .map(ToString::to_string),
            config_hash: json.get("config_hash").and_then(Json::as_str)?.to_string(),
            n: json.get("n").and_then(Json::as_f64)? as u64,
            keys,
        })
    }
}

/// `<dir>/<name>.jsonl` — where a benchmark's history lives.
#[must_use]
pub fn history_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.jsonl"))
}

/// Appends one entry to the benchmark's history file, creating the
/// directory on first use.
///
/// # Errors
///
/// Propagates directory-creation and file-append errors.
pub fn append(dir: &Path, entry: &LedgerEntry) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history_path(dir, &entry.name))?;
    writeln!(file, "{}", entry.to_json().render())
}

/// Loads a benchmark's history, oldest first. A missing file is an empty
/// history; an unparseable line is an error (a corrupt ledger should be
/// noticed, not silently skipped).
///
/// # Errors
///
/// Propagates file-read errors and reports unparseable lines.
pub fn load(dir: &Path, name: &str) -> io::Result<Vec<LedgerEntry>> {
    let path = history_path(dir, name);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(err),
    };
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = selfheal_telemetry::json::parse(line).map_err(|err| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: {err}", path.display(), lineno + 1),
            )
        })?;
        let entry = LedgerEntry::from_json(&json).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}:{}: not a ledger entry", path.display(), lineno + 1),
            )
        })?;
        entries.push(entry);
    }
    Ok(entries)
}

/// Caps a benchmark's history at the `keep` most-recent entries *per
/// config hash*, preserving file order. Bounded history keeps clone
/// sizes sane without losing any config's baseline window (pruning the
/// file globally would let one chatty config evict another's history).
/// The rewrite goes through a sibling temp file + rename so a crash
/// cannot leave a half-written ledger. Returns how many entries were
/// dropped; a missing file prunes zero.
///
/// # Errors
///
/// Propagates read/parse errors from [`load`] and write/rename errors.
pub fn prune(dir: &Path, name: &str, keep: usize) -> io::Result<usize> {
    let entries = load(dir, name)?;
    if entries.is_empty() {
        return Ok(0);
    }
    // Count entries per config hash, then keep only each entry whose
    // position is within the last `keep` of its config.
    let mut remaining: BTreeMap<&str, usize> = BTreeMap::new();
    for entry in &entries {
        *remaining.entry(entry.config_hash.as_str()).or_insert(0) += 1;
    }
    let mut kept = Vec::with_capacity(entries.len());
    for entry in &entries {
        let left = remaining
            .get_mut(entry.config_hash.as_str())
            .expect("counted above");
        if *left <= keep {
            kept.push(entry);
        }
        *left -= 1;
    }
    let dropped = entries.len() - kept.len();
    if dropped == 0 {
        return Ok(0);
    }
    let path = history_path(dir, name);
    let tmp = path.with_extension("jsonl.tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        for entry in &kept {
            writeln!(file, "{}", entry.to_json().render())?;
        }
    }
    std::fs::rename(&tmp, &path)?;
    Ok(dropped)
}

/// Gate tuning.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// How many recent same-config entries form the baseline window.
    pub window: usize,
    /// Tolerance in pooled-IQR multiples.
    pub iqr_mult: f64,
    /// Relative tolerance floor (fraction of the baseline median) — the
    /// backstop when a quiet machine recorded near-zero IQRs.
    pub rel_floor: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            window: 5,
            iqr_mult: 3.0,
            rel_floor: 0.10,
        }
    }
}

/// One key's gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyVerdict {
    /// The gated key.
    pub key: String,
    /// The current run's median.
    pub current: f64,
    /// Baseline median over the window (`None` when no same-config
    /// history mentions this key — the key passes by default).
    pub baseline: Option<f64>,
    /// The allowed excursion above the baseline.
    pub tolerance: f64,
    /// True when `current > baseline + tolerance`.
    pub regressed: bool,
}

/// Compares a current entry against the recent window of *same-config*
/// history. One verdict per current key; keys with no usable baseline
/// pass (first run after a config change seeds the new baseline instead
/// of failing it).
#[must_use]
pub fn gate(history: &[LedgerEntry], current: &LedgerEntry, config: &GateConfig) -> Vec<KeyVerdict> {
    let comparable: Vec<&LedgerEntry> = history
        .iter()
        .filter(|entry| entry.name == current.name && entry.config_hash == current.config_hash)
        .collect();
    current
        .keys
        .iter()
        .map(|(key, stats)| {
            let window: Vec<&KeyStats> = comparable
                .iter()
                .rev()
                .filter_map(|entry| entry.keys.get(key))
                .take(config.window)
                .collect();
            if window.is_empty() {
                return KeyVerdict {
                    key: key.clone(),
                    current: stats.median,
                    baseline: None,
                    tolerance: 0.0,
                    regressed: false,
                };
            }
            let mut medians: Vec<f64> = window.iter().map(|s| s.median).collect();
            medians.sort_by(f64::total_cmp);
            let mut iqrs: Vec<f64> = window.iter().map(|s| s.iqr).collect();
            iqrs.sort_by(f64::total_cmp);
            // `window` is non-empty, so both quantiles exist.
            let baseline = quantile(&medians, 0.5).unwrap_or(f64::NAN);
            let pooled_iqr = quantile(&iqrs, 0.5).unwrap_or(0.0);
            let tolerance = (config.iqr_mult * pooled_iqr).max(config.rel_floor * baseline.abs());
            KeyVerdict {
                key: key.clone(),
                current: stats.median,
                baseline: Some(baseline),
                tolerance,
                regressed: stats.median > baseline + tolerance,
            }
        })
        .collect()
}

/// Extracts the numeric `values` map from a bench manifest's JSON
/// rendering, with its name and config hash — what the repeat-runner
/// collects per repetition.
#[must_use]
pub fn manifest_samples(json: &Json) -> Option<(String, String, BTreeMap<String, f64>)> {
    let name = json.get("name").and_then(Json::as_str)?.to_string();
    let config_hash = json.get("config_hash").and_then(Json::as_str)?.to_string();
    let values = json.get("values")?;
    let Json::Object(pairs) = values else {
        return None;
    };
    let numbers = pairs
        .iter()
        .filter_map(|(key, value)| Some((key.clone(), value.as_f64()?)))
        .collect();
    Some((name, config_hash, numbers))
}

/// The repeat-runner: invokes `command` `repeats` times, parsing each
/// run's stdout as one manifest JSON document (bench binaries print
/// exactly that under `--json`). Returns one parsed manifest per repeat.
///
/// # Errors
///
/// Fails on spawn errors, non-zero exit status, or unparseable stdout —
/// a broken benchmark must not append garbage to the ledger.
pub fn run_repeats(command: &[String], repeats: usize) -> io::Result<Vec<Json>> {
    let (program, args) = command.split_first().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "empty benchmark command")
    })?;
    let mut manifests = Vec::with_capacity(repeats);
    for repeat in 0..repeats {
        let output = std::process::Command::new(program).args(args).output()?;
        if !output.status.success() {
            return Err(io::Error::other(format!(
                "repeat {}/{repeats}: {program} exited with {}",
                repeat + 1,
                output.status,
            )));
        }
        let stdout = String::from_utf8_lossy(&output.stdout);
        let json = selfheal_telemetry::json::parse(stdout.trim()).map_err(|err| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "repeat {}/{repeats}: {program} did not print manifest JSON \
                     (pass --json in the command): {err}",
                    repeat + 1,
                ),
            )
        })?;
        manifests.push(json);
    }
    Ok(manifests)
}

/// Collapses a set of parsed manifests (repeats of one benchmark) into
/// `(name, config_hash, per-key samples)`. `None` when the set is empty,
/// a manifest is malformed, or names disagree; a config hash that varies
/// across repeats is also rejected (repeats must measure one config).
#[must_use]
pub fn collect_samples(
    manifests: &[Json],
) -> Option<(String, String, BTreeMap<String, Vec<f64>>)> {
    let mut name: Option<String> = None;
    let mut config_hash: Option<String> = None;
    let mut samples: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for manifest in manifests {
        let (this_name, this_hash, values) = manifest_samples(manifest)?;
        if *name.get_or_insert_with(|| this_name.clone()) != this_name {
            return None;
        }
        if *config_hash.get_or_insert_with(|| this_hash.clone()) != this_hash {
            return None;
        }
        for (key, value) in values {
            samples.entry(key).or_default().push(value);
        }
    }
    Some((name?, config_hash?, samples))
}

/// As [`manifest_samples`], from an in-process [`RunManifest`].
#[must_use]
pub fn manifest_values(manifest: &RunManifest) -> BTreeMap<String, f64> {
    manifest
        .values
        .iter()
        .filter_map(|(key, value)| Some((key.clone(), value.as_f64()?)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(config: &str, medians: &[(&str, f64, f64)]) -> LedgerEntry {
        LedgerEntry {
            name: "bench".to_string(),
            created_unix_s: 0,
            git_describe: None,
            config_hash: config.to_string(),
            n: 5,
            keys: medians
                .iter()
                .map(|(key, median, iqr)| {
                    (
                        (*key).to_string(),
                        KeyStats {
                            median: *median,
                            iqr: *iqr,
                        },
                    )
                })
                .collect(),
        }
    }

    #[test]
    fn quantile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&sorted, 0.0), Some(1.0));
        assert_eq!(quantile(&sorted, 1.0), Some(4.0));
        assert_eq!(quantile(&sorted, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn summarize_is_robust_to_one_outlier() {
        let stats = summarize(&[100.0, 101.0, 99.0, 100.5, 1000.0]).expect("test value");
        assert!((stats.median - 100.5).abs() < 1e-9);
        assert!(stats.iqr < 10.0, "IQR ignores the outlier: {}", stats.iqr);
        assert_eq!(summarize(&[]), None);
        assert_eq!(summarize(&[1.0, f64::NAN]), None);
    }

    #[test]
    fn entry_round_trips_through_jsonl() {
        let original = entry("cafe", &[("ns_per_item", 42.5, 1.25)]);
        let line = original.to_json().render();
        let parsed =
            LedgerEntry::from_json(&selfheal_telemetry::json::parse(&line).expect("test value"))
                .expect("test value");
        assert_eq!(parsed, original);
    }

    #[test]
    fn gate_passes_noise_and_fails_doubling() {
        let history: Vec<LedgerEntry> = (0..5)
            .map(|i| entry("c1", &[("ms", 100.0 + i as f64, 3.0)]))
            .collect();
        let config = GateConfig::default();
        // IQR-level wiggle passes.
        let ok = gate(&history, &entry("c1", &[("ms", 106.0, 3.0)]), &config);
        assert_eq!(ok.len(), 1);
        assert!(!ok[0].regressed, "{ok:?}");
        // A 2× slowdown fails.
        let bad = gate(&history, &entry("c1", &[("ms", 204.0, 3.0)]), &config);
        assert!(bad[0].regressed, "{bad:?}");
        // An improvement never fails (one-sided gate).
        let fast = gate(&history, &entry("c1", &[("ms", 50.0, 3.0)]), &config);
        assert!(!fast[0].regressed);
    }

    #[test]
    fn gate_ignores_other_configs_and_unknown_keys() {
        let history = vec![entry("old", &[("ms", 10.0, 0.1)])];
        let config = GateConfig::default();
        // Same key, different config hash: no baseline, passes.
        let verdicts = gate(&history, &entry("new", &[("ms", 1000.0, 0.1)]), &config);
        assert_eq!(verdicts[0].baseline, None);
        assert!(!verdicts[0].regressed);
        // Key absent from history: passes too.
        let verdicts = gate(&history, &entry("old", &[("other", 5.0, 0.1)]), &config);
        assert!(!verdicts[0].regressed);
    }

    #[test]
    fn rel_floor_guards_zero_iqr_histories() {
        let history: Vec<LedgerEntry> = (0..5)
            .map(|_| entry("c1", &[("ms", 100.0, 0.0)]))
            .collect();
        let config = GateConfig::default();
        // Zero recorded IQR: 10 % floor still admits small jitter…
        let ok = gate(&history, &entry("c1", &[("ms", 109.0, 0.0)]), &config);
        assert!(!ok[0].regressed);
        // …but not a real regression.
        let bad = gate(&history, &entry("c1", &[("ms", 120.0, 0.0)]), &config);
        assert!(bad[0].regressed);
    }

    #[test]
    fn prune_keeps_the_last_n_per_config_hash() {
        let dir = std::env::temp_dir().join(format!(
            "selfheal-ledger-prune-test-{}",
            selfheal_telemetry::current_thread_hash()
        ));
        std::fs::remove_dir_all(&dir).ok();
        // Interleave two configs: 4 entries of c1, 2 of c2.
        for (i, config) in [(1, "c1"), (2, "c1"), (3, "c2"), (4, "c1"), (5, "c2"), (6, "c1")] {
            append(&dir, &entry(config, &[("ms", f64::from(i), 0.0)])).expect("test value");
        }
        let dropped = prune(&dir, "bench", 2).expect("test value");
        assert_eq!(dropped, 2);
        let left = load(&dir, "bench").expect("test value");
        // Last 2 of c1 (4, 6) and both of c2 (3, 5), file order intact.
        let medians: Vec<(String, f64)> = left
            .iter()
            .map(|e| (e.config_hash.clone(), e.keys["ms"].median))
            .collect();
        assert_eq!(
            medians,
            vec![
                ("c2".to_string(), 3.0),
                ("c1".to_string(), 4.0),
                ("c2".to_string(), 5.0),
                ("c1".to_string(), 6.0),
            ]
        );
        // Already within budget: nothing dropped, file untouched.
        assert_eq!(prune(&dir, "bench", 2).expect("test value"), 0);
        assert_eq!(prune(&dir, "missing", 2).expect("test value"), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!(
            "selfheal-ledger-test-{}",
            selfheal_telemetry::current_thread_hash()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let first = entry("c1", &[("ms", 1.0, 0.1)]);
        let second = entry("c1", &[("ms", 2.0, 0.2)]);
        append(&dir, &first).expect("test value");
        append(&dir, &second).expect("test value");
        let loaded = load(&dir, "bench").expect("test value");
        assert_eq!(loaded, vec![first, second]);
        assert_eq!(load(&dir, "missing").expect("test value"), Vec::new());
        std::fs::remove_dir_all(&dir).ok();
    }
}
