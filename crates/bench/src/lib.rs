//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artefact of the paper's
//! evaluation section (`fig4` … `fig10`, `table1` … `table5`) and prints
//! paper-reported reference values next to the reproduction's measured
//! ones. `all_experiments` runs the lot and emits the markdown consumed by
//! the repository's `EXPERIMENTS.md`.
//!
//! Absolute agreement is not the goal (the substrate is a simulator, not
//! the authors' chamber + chips); the *shapes* are: who wins, by what
//! rough factor, and where the curves bend.

#![forbid(unsafe_code)]

pub mod ledger;

use std::fmt::Write as _;
use std::path::PathBuf;

use selfheal::experiment::{ExperimentOutputs, PaperExperiment};
use selfheal_runtime as runtime;
use selfheal_telemetry as telemetry;
use selfheal_units::float;

/// The seed all figure binaries share, so every artefact is drawn from
/// the same simulated chip population.
pub const CAMPAIGN_SEED: u64 = 2014;

/// Runs the full Table 1 campaign at the paper's sampling cadence,
/// through the standard per-chip result cache.
///
/// The first figure binary of a session pays for the simulation; the
/// rest rehydrate bit-identical outputs from `target/cache/`. Pass
/// `--no-cache` (or set `SELFHEAL_CACHE=off`) to force a full recompute —
/// the cached and recomputed outputs are interchangeable, but a cache hit
/// skips the campaign's per-chip telemetry, so manifests meant to profile
/// the simulation itself should bypass it.
#[must_use]
pub fn campaign() -> ExperimentOutputs {
    let (outputs, _outcomes) =
        PaperExperiment::paper_cadence(CAMPAIGN_SEED).run_cached(&runtime::ResultCache::standard());
    outputs
}

/// One telemetry-backed run of a figure/table binary.
///
/// Every binary opens with [`BenchRun::start`], routes its human-readable
/// report through [`say`](Self::say) / [`table`](Self::table), records
/// headline numbers with [`value`](Self::value), and closes with
/// [`finish`](Self::finish), which writes the run manifest (config hash,
/// per-phase wall-clock timings, metric snapshot) to
/// `target/manifests/<name>.json`.
///
/// Command-line behaviour common to all binaries:
///
/// * `--json` — suppress the human report and print the manifest JSON to
///   stdout instead;
/// * `--out <path>` — write the manifest to `<path>` instead of the
///   default location;
/// * `--threads <n>` — size the `selfheal-runtime` global pool (`0` =
///   inline serial; the default follows `SELFHEAL_THREADS` or the
///   machine's parallelism). Results are bit-identical at any setting;
/// * `--no-cache` — disable the `target/cache/` result cache for this
///   run (every stage recomputes);
/// * `--trace <path>` — write a Chrome/Perfetto trace of the run (same
///   exporter as `SELFHEAL_TELEMETRY=trace:<path>`, as an extra sink);
/// * `--folded <path>` — write the run's self-time profile in the
///   folded-stacks format `flamegraph.pl` consumes;
/// * `--status <path>` — stream an atomically-rewritten Prometheus
///   text-exposition status file at the sampling cadence (point
///   `selfheal-top <path>` at it for a live dashboard);
/// * `SELFHEAL_TELEMETRY=pretty|jsonl:<path>|trace:<path>|timeseries:<path>`
///   (comma-separated) — attach span/event sinks and the sampled
///   time-series export for the duration of the run;
/// * `SELFHEAL_TELEMETRY_SAMPLE=250ms` — sampling cadence for the
///   time-series surfaces (also *enables* sampling on its own).
#[derive(Debug)]
pub struct BenchRun {
    name: &'static str,
    json: bool,
    out: Option<PathBuf>,
    folded: Option<PathBuf>,
    values: Vec<(String, f64)>,
    sampler: Option<telemetry::Sampler>,
    _sink: Option<telemetry::SinkGuard>,
    _trace: Option<telemetry::SinkGuard>,
}

impl BenchRun {
    /// Starts a run: parses the common flags, attaches any env-configured
    /// sink plus the `--trace` exporter, and resets metrics and the
    /// self-time ledger so the run accumulates a fresh snapshot.
    ///
    /// Sinks are installed *before* the thread/cache flags are applied:
    /// `--threads` sizes the global pool whose workers announce themselves
    /// with a `runtime.worker.start` event the trace must not miss.
    #[must_use]
    pub fn start(name: &'static str) -> Self {
        let mut json = false;
        let mut out = None;
        let mut trace = None;
        let mut folded = None;
        let mut status = None;
        let mut threads = None;
        let mut no_cache = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => json = true,
                "--out" => out = args.next().map(PathBuf::from),
                "--trace" => trace = args.next().map(PathBuf::from),
                "--folded" => folded = args.next().map(PathBuf::from),
                "--status" => status = args.next().map(PathBuf::from),
                "--threads" => {
                    let parsed = args.next().and_then(|raw| raw.parse::<usize>().ok());
                    if parsed.is_some() {
                        threads = parsed;
                    } else {
                        eprintln!("{name}: --threads expects a worker count; ignoring");
                    }
                }
                "--no-cache" => no_cache = true,
                _ => {}
            }
        }
        let sink = telemetry::init_from_env();
        let trace_sink = trace.and_then(|path| match telemetry::ChromeTraceSink::create(&path) {
            Ok(sink) => Some(telemetry::install_sink(std::sync::Arc::new(sink))),
            Err(err) => {
                eprintln!("{name}: cannot open trace file {}: {err}", path.display());
                None
            }
        });
        telemetry::metrics::reset();
        telemetry::metrics::set_enabled(true);
        telemetry::reset_self_time();
        telemetry::register_thread_name("main");
        if let Some(threads) = threads {
            runtime::set_global_threads(threads);
        }
        if no_cache {
            runtime::set_cache_enabled(false);
        }
        // The sampler starts after the pool is sized (its live probes
        // should watch the pool this run actually uses) and after the
        // registry reset, on fresh ring buffers.
        telemetry::timeseries::reset_series();
        let sampler =
            telemetry::Sampler::start(telemetry::SamplerConfig::from_env().with_status(status));
        BenchRun {
            name,
            json,
            out,
            folded,
            values: Vec::new(),
            sampler,
            _sink: sink,
            _trace: trace_sink,
        }
    }

    /// Whether `--json` suppressed the human report.
    #[must_use]
    pub fn is_json(&self) -> bool {
        self.json
    }

    /// Prints one line of the human report (dropped under `--json`).
    pub fn say(&self, text: impl std::fmt::Display) {
        if !self.json {
            println!("{text}");
        }
    }

    /// Prints a [`Table`] as part of the human report (dropped under
    /// `--json`).
    pub fn table(&self, table: &Table) {
        if !self.json {
            table.print();
        }
    }

    /// Opens a named phase span; bind the guard for the phase's extent.
    /// Completed top-level phases become the manifest's timing entries.
    #[must_use]
    pub fn phase(&self, name: &'static str) -> telemetry::Span {
        telemetry::span!(name)
    }

    /// [`phase`](Self::phase) with a computed name (per-size benchmark
    /// sections and the like).
    #[must_use]
    pub fn phase_named(&self, name: impl AsRef<str>) -> telemetry::Span {
        if telemetry::telemetry_enabled() {
            telemetry::Span::enter(name.as_ref(), Vec::new())
        } else {
            telemetry::Span::disabled()
        }
    }

    /// Records a headline result: it lands in the manifest's `values` map
    /// and, as `bench.<name>.<key>`, in the metric snapshot.
    pub fn value(&mut self, key: &str, value: f64) {
        telemetry::metrics::gauge_set(&format!("bench.{}.{key}", self.name), value);
        self.values.push((key.to_string(), value));
    }

    /// Ends the run: captures the manifest, writes it to `--out` or
    /// `target/manifests/<name>.json`, and under `--json` prints it to
    /// stdout. Returns the manifest for callers that want to inspect it.
    pub fn finish(mut self, config_repr: &str) -> telemetry::RunManifest {
        // Stop the sampler first: it takes a final read-only tick, so the
        // exports and the manifest's time-series summary both see the
        // finished run's last state.
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
        let mut manifest = telemetry::RunManifest::capture(self.name, config_repr);
        for (key, value) in &self.values {
            manifest = manifest.with_number(key, *value);
        }
        let path = self
            .out
            .clone()
            .unwrap_or_else(|| PathBuf::from(format!("target/manifests/{}.json", self.name)));
        if let Err(err) = manifest.write_to(&path) {
            eprintln!("{}: could not write manifest to {}: {err}", self.name, path.display());
        } else if !self.json {
            println!("\nmanifest: {}", path.display());
        }
        if let Some(folded_path) = &self.folded {
            let folded = telemetry::render_folded(&manifest.self_time);
            if let Err(err) = std::fs::write(folded_path, folded) {
                eprintln!(
                    "{}: could not write folded stacks to {}: {err}",
                    self.name,
                    folded_path.display(),
                );
            } else if !self.json {
                println!("folded stacks: {}", folded_path.display());
            }
        }
        if self.json {
            println!("{}", manifest.render());
        }
        telemetry::flush_all();
        manifest
    }
}

/// Paper-reported reference values, quoted from the text and read off the
/// figures, used in the side-by-side comparisons.
pub mod paper {
    /// Best-case design-margin-relaxed parameter (§5.2.2, Table 4).
    pub const AR110N6_MARGIN_RELAXED_PERCENT: f64 = 72.4;
    /// "AC stress ... results in smaller frequency degradation, which is
    /// about half of that in the DC stress case" (§5.1.1).
    pub const AC_OVER_DC_RATIO: f64 = 0.5;
    /// Fig. 5's 24 h DC degradation at 110 °C, read off the plot (%).
    pub const DC110_DEGRADATION_PERCENT: f64 = 2.3;
    /// Fig. 5's 24 h DC degradation at 100 °C, read off the plot (%).
    pub const DC100_DEGRADATION_PERCENT: f64 = 1.9;
    /// "we can bring the stressed chips back to within 90 % of their
    /// original margin" (abstract, §5.2.2) — margin-available threshold.
    pub const MARGIN_AVAILABLE_THRESHOLD: f64 = 0.90;
    /// The active-vs-sleep ratio of every recovery case (§5.2.3).
    pub const ALPHA: f64 = 4.0;
}

/// A minimal fixed-width table printer for terminal reports.
///
/// # Examples
///
/// ```
/// use selfheal_bench::Table;
///
/// let mut t = Table::new(&["case", "paper", "measured"]);
/// t.row(&["AR110N6", "72.4 %", "73.1 %"]);
/// let rendered = t.render();
/// assert!(rendered.contains("AR110N6"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty, extras are dropped).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let pad = width.saturating_sub(cell.chars().count());
                let _ = write!(out, "| {cell}{} ", " ".repeat(pad));
            }
            out.push_str("|\n");
        };
        line(&self.headers, &mut out);
        for (i, width) in widths.iter().enumerate() {
            let _ = write!(out, "|{}", "-".repeat(width + 2));
            if i == self.headers.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with the given precision — tiny helper to keep the
/// binaries tidy.
#[must_use]
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Renders an inline ASCII sparkline of a series (for eyeballing curve
/// shapes in the terminal without a plotting stack).
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
    if values.is_empty() {
        return String::new();
    }
    // `values` is non-empty here, so the reductions always yield a value.
    let max = float::max_of(values.iter().copied()).unwrap_or(0.0);
    let min = float::min_of(values.iter().copied()).unwrap_or(0.0);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["case", "value"]);
        t.row(&["AR110N6", "72.4"]).row(&["R20Z6", "33"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]).row(&["1", "2", "3", "4"]);
        let s = t.render();
        assert!(s.contains("| 1 |"));
        assert!(!s.contains('4'), "extra cells are dropped");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        let first = s.chars().next().unwrap();
        let last = s.chars().next_back().unwrap();
        assert!(last > first, "rising series rises");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(72.44449, 1), "72.4");
        assert_eq!(fmt(0.5, 3), "0.500");
    }
}
