//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artefact of the paper's
//! evaluation section (`fig4` … `fig10`, `table1` … `table5`) and prints
//! paper-reported reference values next to the reproduction's measured
//! ones. `all_experiments` runs the lot and emits the markdown consumed by
//! the repository's `EXPERIMENTS.md`.
//!
//! Absolute agreement is not the goal (the substrate is a simulator, not
//! the authors' chamber + chips); the *shapes* are: who wins, by what
//! rough factor, and where the curves bend.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use selfheal::experiment::{ExperimentOutputs, PaperExperiment};
use selfheal_units::float;

/// The seed all figure binaries share, so every artefact is drawn from
/// the same simulated chip population.
pub const CAMPAIGN_SEED: u64 = 2014;

/// Runs the full Table 1 campaign at the paper's sampling cadence.
#[must_use]
pub fn campaign() -> ExperimentOutputs {
    PaperExperiment::paper_cadence(CAMPAIGN_SEED).run()
}

/// Paper-reported reference values, quoted from the text and read off the
/// figures, used in the side-by-side comparisons.
pub mod paper {
    /// Best-case design-margin-relaxed parameter (§5.2.2, Table 4).
    pub const AR110N6_MARGIN_RELAXED_PERCENT: f64 = 72.4;
    /// "AC stress ... results in smaller frequency degradation, which is
    /// about half of that in the DC stress case" (§5.1.1).
    pub const AC_OVER_DC_RATIO: f64 = 0.5;
    /// Fig. 5's 24 h DC degradation at 110 °C, read off the plot (%).
    pub const DC110_DEGRADATION_PERCENT: f64 = 2.3;
    /// Fig. 5's 24 h DC degradation at 100 °C, read off the plot (%).
    pub const DC100_DEGRADATION_PERCENT: f64 = 1.9;
    /// "we can bring the stressed chips back to within 90 % of their
    /// original margin" (abstract, §5.2.2) — margin-available threshold.
    pub const MARGIN_AVAILABLE_THRESHOLD: f64 = 0.90;
    /// The active-vs-sleep ratio of every recovery case (§5.2.3).
    pub const ALPHA: f64 = 4.0;
}

/// A minimal fixed-width table printer for terminal reports.
///
/// # Examples
///
/// ```
/// use selfheal_bench::Table;
///
/// let mut t = Table::new(&["case", "paper", "measured"]);
/// t.row(&["AR110N6", "72.4 %", "73.1 %"]);
/// let rendered = t.render();
/// assert!(rendered.contains("AR110N6"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (missing cells render empty, extras are dropped).
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.rows
            .push(cells.iter().map(ToString::to_string).collect());
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().take(cols).enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                let pad = width.saturating_sub(cell.chars().count());
                let _ = write!(out, "| {cell}{} ", " ".repeat(pad));
            }
            out.push_str("|\n");
        };
        line(&self.headers, &mut out);
        for (i, width) in widths.iter().enumerate() {
            let _ = write!(out, "|{}", "-".repeat(width + 2));
            if i == self.headers.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with the given precision — tiny helper to keep the
/// binaries tidy.
#[must_use]
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Renders an inline ASCII sparkline of a series (for eyeballing curve
/// shapes in the terminal without a plotting stack).
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
    if values.is_empty() {
        return String::new();
    }
    // `values` is non-empty here, so the reductions always yield a value.
    let max = float::max_of(values.iter().copied()).unwrap_or(0.0);
    let min = float::min_of(values.iter().copied()).unwrap_or(0.0);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["case", "value"]);
        t.row(&["AR110N6", "72.4"]).row(&["R20Z6", "33"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with('|') && l.ends_with('|')));
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["1"]).row(&["1", "2", "3", "4"]);
        let s = t.render();
        assert!(s.contains("| 1 |"));
        assert!(!s.contains('4'), "extra cells are dropped");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        let first = s.chars().next().unwrap();
        let last = s.chars().next_back().unwrap();
        assert!(last > first, "rising series rises");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(72.44449, 1), "72.4");
        assert_eq!(fmt(0.5, 3), "0.500");
    }
}
