//! The §4.2 die survey: "To pick this frequency, CUT is placed at
//! different locations on the FPGA, and a diagnostic program is run."
//!
//! Run with `cargo run -p selfheal-bench --release --bin location_survey`.
//! Pass `--json` for the run manifest instead of the human report, and
//! `--threads <n>` to size the pool — the survey runs every site through
//! `selfheal-runtime`, and its per-site seed streams make the readings
//! identical at any worker count.

use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::Environment;
use selfheal_fpga::fabric::CutArray;
use selfheal_fpga::{Family, RoMode};
use selfheal_runtime::ResultCache;
use selfheal_units::{Celsius, Hours, Millivolts, Volts};

fn main() {
    let mut run = BenchRun::start("location_survey");
    run.say("Die survey: CUT delay across a 4 x 3 placement grid\n");
    let cache = ResultCache::standard();

    let mut array = CutArray::sample_seeded(
        &Family::commercial_40nm(),
        Millivolts::new(0.0),
        4,
        3,
        2014,
    );

    // Parallel per-site surveys; distinct survey seeds keep the fresh
    // and aged measurement-noise draws independent, as two real bench
    // sessions would be.
    let (fresh, fresh_outcome) = {
        let _phase = run.phase("fresh-survey");
        array.survey_cached(1, &cache)
    };
    run.say(format!(
        "fresh survey (ns), spread {}:\n",
        array.fresh_delay_spread()
    ));
    let mut table = Table::new(&["site", "fresh (ns)", "aged (ns)", "shift (ns)"]);

    // Stress the whole fabric a day, then survey again.
    let (aged, aged_outcome) = {
        let _phase = run.phase("stress-and-resurvey");
        array.advance(
            RoMode::Static,
            Environment::new(Volts::new(1.2), Celsius::new(110.0)),
            Hours::new(24.0).into(),
        );
        array.survey_cached(2, &cache)
    };
    run.say(format!(
        "result cache: fresh survey {fresh_outcome:?}, aged survey {aged_outcome:?}\n"
    ));

    let mut worst_site_shift = 0.0f64;
    for ((site, f), (_, a)) in fresh.iter().zip(&aged) {
        let (f, a) = (f.get(), a.get());
        worst_site_shift = worst_site_shift.max(a - f);
        table.row(&[&site.to_string(), &fmt(f, 3), &fmt(a, 3), &fmt(a - f, 3)]);
    }
    run.table(&table);

    let (slowest, delay) = array.slowest_site();
    run.say(format!(
        "\nslowest site after stress: {slowest} at {delay} — the survey's pick for a\n\
         worst-case CUT. Within-die spread comes from a systematic Vth gradient plus\n\
         local mismatch; every site ages by a comparable shift (same schedule), so the\n\
         relative ranking is stable — which is why the paper can measure one location\n\
         per chip and still compare chips through the Recovered Delay metric.",
    ));

    run.value("sites", fresh.len() as f64);
    run.value("fresh_spread_ns", array.fresh_delay_spread().get());
    run.value("slowest_site_delay_ns", delay.get());
    run.value("worst_site_shift_ns", worst_site_shift);
    run.finish("grid=4x3 family=commercial_40nm stress=1.2V/110C/24h seed=2014 survey_seeds=1,2");
}
