//! Ablation: sweep the two sleep-condition knobs — recovery voltage and
//! recovery temperature — beyond the four points the paper measures.
//!
//! §6.1 argues −0.3 V is "enough to rejuvenate the chip deeply" while
//! staying clear of junction breakdown and GIDL; this sweep shows the
//! diminishing returns that justify that choice, and how temperature and
//! voltage trade off against each other.
//!
//! Run with `cargo run -p selfheal-bench --release --bin ablation_knobs`.
//! Pass `--json` for the run manifest instead of the human report.

use rand::SeedableRng;
use selfheal::metrics::RecoveryAssessment;
use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::Environment;
use selfheal_fpga::{Chip, ChipId, RoMode};
use selfheal_units::{Celsius, Hours, Volts};

const VOLTAGES: [f64; 5] = [0.0, -0.1, -0.2, -0.3, -0.4];
const TEMPERATURES: [f64; 4] = [20.0, 60.0, 85.0, 110.0];

fn main() {
    let mut run = BenchRun::start("ablation_knobs");
    run.say("Ablation: sleep-condition knobs (margin relaxed %, 24 h stress / 6 h sleep)\n");

    // Age one chip per grid cell from an identical starting population so
    // the cells are directly comparable.
    let stress_env = Environment::new(Volts::new(1.2), Celsius::new(110.0));

    let mut header: Vec<String> = vec!["Vddr \\ T".to_string()];
    header.extend(TEMPERATURES.iter().map(|t| format!("{t:.0} degC")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    let mut paper_corner = f64::NAN;
    let mut best = f64::NAN;
    {
        let _phase = run.phase("knob-grid");
        for v in VOLTAGES {
            let mut cells: Vec<String> = vec![format!("{v:+.1} V")];
            for t in TEMPERATURES {
                let mut rng = rand::rngs::StdRng::seed_from_u64(123);
                let mut chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
                let fresh = chip.measure(&mut rng).cut_delay;
                chip.advance(RoMode::Static, stress_env, Hours::new(24.0).into());
                let aged = chip.measure(&mut rng).cut_delay;
                chip.advance(
                    RoMode::Sleep,
                    Environment::new(Volts::new(v), Celsius::new(t)),
                    Hours::new(6.0).into(),
                );
                let healed = chip.measure(&mut rng).cut_delay;
                let relaxed = RecoveryAssessment::new(fresh, aged, healed)
                    .margin_relaxed()
                    .get();
                if v == -0.3 && t == 110.0 {
                    paper_corner = relaxed;
                }
                if best.is_nan() || relaxed > best {
                    best = relaxed;
                }
                cells.push(fmt(relaxed, 1));
            }
            let cell_refs: Vec<&str> = cells.iter().map(String::as_str).collect();
            table.row(&cell_refs);
        }
    }
    run.table(&table);

    run.say(
        "\nreading: both knobs help and saturate. The paper's corner (-0.3 V, 110 degC)\n\
         captures most of the achievable recovery; pushing to -0.4 V buys a few points\n\
         at real breakdown/GIDL risk (SS6.1), and heating past the chamber's 110 degC\n\
         limit is not an option for a functioning part (SS4.3).",
    );

    run.value("paper_corner_relaxed_pct", paper_corner);
    run.value("best_relaxed_pct", best);
    run.value("grid_cells", (VOLTAGES.len() * TEMPERATURES.len()) as f64);
    run.finish("stress=1.2V/110C/24h sleep=6h grid=5Vx4T");
}
