//! Fig. 10 / §6.2 — multi-core self-healing: sleeping cores heated by
//! active neighbours, and scheduler comparison over months of operation.
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig10`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_multicore::scheduler::{AlwaysOn, CircadianRotation, HeaterAware, NaiveGating, Scheduler};
use selfheal_multicore::sim::{MulticoreSim, SimConfig};
use selfheal_multicore::thermal::ThermalGrid;
use selfheal_multicore::workload::Workload;
use selfheal_multicore::Floorplan;

fn main() {
    let mut run = BenchRun::start("fig10");
    run.say("Fig. 10: Multi-core system self-healing\n");

    // Part 1 — the illustration itself: cores 3 and 7 asleep, everyone
    // else burning 10 W; the sleepers sit far above ambient.
    let plan = Floorplan::eight_core();
    let grid = ThermalGrid::default_package(plan.clone());
    let powers = [10.0, 10.0, 0.0, 10.0, 10.0, 10.0, 0.0, 10.0];
    let temps = {
        let _phase = run.phase("thermal-illustration");
        grid.temperatures(&powers)
    };

    run.say("On-chip heaters (cores 3 and 7 asleep, neighbours active):\n");
    let mut heat = Table::new(&["Core", "State", "Power (W)", "T (degC)"]);
    for (i, t) in temps.iter().enumerate() {
        heat.row(&[
            &format!("Core {}", i + 1),
            if powers[i] > 0.0 { "active" } else { "Zzz" },
            &fmt(powers[i], 0),
            &fmt(t.get(), 1),
        ]);
    }
    run.table(&heat);
    run.say(format!(
        "\nambient is {}; the sleeping cores are heated ~{} degC above it for free.\n",
        grid.ambient(),
        fmt(temps[2].get() - grid.ambient().get(), 0)
    ));

    // Part 2 — the scheduler race: 180 days at demand 6-of-8.
    run.say("Scheduler comparison (180 days, constant demand of 6 of 8 cores):\n");
    let days = 180.0;
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(AlwaysOn),
        Box::new(NaiveGating),
        Box::new(CircadianRotation::paper_default()),
        Box::new(HeaterAware::paper_default()),
    ];
    let mut race = Table::new(&[
        "Scheduler",
        "Worst core dVth (mV)",
        "Mean dVth (mV)",
        "Spread (mV)",
        "Worst margin used (%)",
        "Energy (core-days)",
    ]);
    let mut results = Vec::new();
    {
        let _phase = run.phase("scheduler-race");
        for scheduler in schedulers {
            let mut sim = MulticoreSim::new(SimConfig::default(), scheduler, Workload::constant(6));
            let report = sim.run_days(days);
            race.row(&[
                &report.scheduler.clone(),
                &fmt(report.worst_delta_vth_mv.get(), 2),
                &fmt(report.mean_delta_vth_mv.get(), 2),
                &fmt(report.wear_spread_mv().get(), 2),
                &fmt(report.worst_margin_consumed.get() * 100.0, 1),
                &fmt(report.active_core_seconds / 86_400.0, 0),
            ]);
            results.push(report);
        }
    }
    run.table(&race);

    let naive = &results[1];
    let heater = &results[3];
    run.say("\n--- shape check (paper §6.2) ---");
    run.say(format!(
        "healing-aware scheduling cuts the worst-core shift to {} of naive gating\n\
         ({} vs {} mV) at identical served demand.",
        fmt(heater.worst_delta_vth_mv / naive.worst_delta_vth_mv, 2),
        fmt(heater.worst_delta_vth_mv.get(), 1),
        fmt(naive.worst_delta_vth_mv.get(), 1),
    ));
    run.say(
        "\npaper: \"Combining the proposed accelerated techniques with existing core\n\
         scheduling methods can bring a huge benefit for extending life time and\n\
         relaxing design margin of multi-core systems.\"",
    );

    run.value("sleeper_heating_degc", temps[2].get() - grid.ambient().get());
    run.value("naive_worst_dvth_mv", naive.worst_delta_vth_mv.get());
    run.value("heater_worst_dvth_mv", heater.worst_delta_vth_mv.get());
    run.value(
        "heater_over_naive",
        heater.worst_delta_vth_mv / naive.worst_delta_vth_mv,
    );
    run.finish("floorplan=eight_core days=180 demand=6of8 schedulers=4");
}
