//! Table 3 — the extracted first-order model parameters.
//!
//! The paper extracts {β, A, C} per condition from its measurements; this
//! binary prints the equivalents extracted from the simulated campaign:
//! Eq. (10)'s β and C per stress case, Eq. (11)'s (a, b, c) per recovery
//! case.
//!
//! Run with `cargo run -p selfheal-bench --release --bin table3`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{campaign, fmt, BenchRun, Table};

fn main() {
    let mut run = BenchRun::start("table3");
    run.say("Table 3: Extracted model parameters\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };

    run.say("Stress model: dTd(t) = beta * ln(1 + C*t)      (Eq. 10)\n");
    let mut stress = Table::new(&["Case", "Chip", "beta (ns)", "C (1/s)", "RMSE (ns)"]);
    let mut worst_stress_rmse = 0.0f64;
    for s in &outputs.stresses {
        if let Some(fit) = &s.fit {
            worst_stress_rmse = worst_stress_rmse.max(fit.rmse_ns);
            stress.row(&[
                s.case.name,
                &s.case.chip.get().to_string(),
                &fmt(fit.beta_ns, 4),
                &format!("{:.2e}", fit.c_per_s),
                &fmt(fit.rmse_ns, 4),
            ]);
        }
    }
    run.table(&stress);

    run.say("\nRecovery model: RD(t2) = a * ln(1+c*t2) / (1 + b*ln(1+c*(t1+t2)))   (Eq. 11)\n");
    let mut rec = Table::new(&["Case", "Chip", "a (ns)", "b", "c (1/s)", "RMSE (ns)"]);
    let mut worst_recovery_rmse = 0.0f64;
    for r in &outputs.recoveries {
        if let Some(fit) = &r.fit {
            worst_recovery_rmse = worst_recovery_rmse.max(fit.rmse_ns);
            rec.row(&[
                r.case.name,
                &r.case.chip.get().to_string(),
                &fmt(fit.a_ns, 4),
                &fmt(fit.b, 3),
                &format!("{:.2e}", fit.c_per_s),
                &fmt(fit.rmse_ns, 4),
            ]);
        }
    }
    run.table(&rec);

    run.say(
        "\npaper: \"beta, A and C are fitting parameters and can be extracted from\n\
         measurement results.\" The authors do not publish their values; the check here\n\
         is that one parameter set per condition reproduces its whole curve (low RMSE).",
    );

    run.value("stress_fits", outputs.stresses.iter().filter(|s| s.fit.is_some()).count() as f64);
    run.value("recovery_fits", outputs.recoveries.iter().filter(|r| r.fit.is_some()).count() as f64);
    run.value("worst_stress_rmse_ns", worst_stress_rmse);
    run.value("worst_recovery_rmse_ns", worst_recovery_rmse);
    run.finish("campaign seed=2014 models=eq10,eq11");
}
