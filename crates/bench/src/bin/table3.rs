//! Table 3 — the extracted first-order model parameters.
//!
//! The paper extracts {β, A, C} per condition from its measurements; this
//! binary prints the equivalents extracted from the simulated campaign:
//! Eq. (10)'s β and C per stress case, Eq. (11)'s (a, b, c) per recovery
//! case.
//!
//! Run with `cargo run -p selfheal-bench --release --bin table3`.

use selfheal_bench::{campaign, fmt, Table};

fn main() {
    println!("Table 3: Extracted model parameters\n");
    let outputs = campaign();

    println!("Stress model: dTd(t) = beta * ln(1 + C*t)      (Eq. 10)\n");
    let mut stress = Table::new(&["Case", "Chip", "beta (ns)", "C (1/s)", "RMSE (ns)"]);
    for s in &outputs.stresses {
        if let Some(fit) = &s.fit {
            stress.row(&[
                s.case.name,
                &s.case.chip.get().to_string(),
                &fmt(fit.beta_ns, 4),
                &format!("{:.2e}", fit.c_per_s),
                &fmt(fit.rmse_ns, 4),
            ]);
        }
    }
    stress.print();

    println!("\nRecovery model: RD(t2) = a * ln(1+c*t2) / (1 + b*ln(1+c*(t1+t2)))   (Eq. 11)\n");
    let mut rec = Table::new(&["Case", "Chip", "a (ns)", "b", "c (1/s)", "RMSE (ns)"]);
    for r in &outputs.recoveries {
        if let Some(fit) = &r.fit {
            rec.row(&[
                r.case.name,
                &r.case.chip.get().to_string(),
                &fmt(fit.a_ns, 4),
                &fmt(fit.b, 3),
                &format!("{:.2e}", fit.c_per_s),
                &fmt(fit.rmse_ns, 4),
            ]);
        }
    }
    rec.print();

    println!(
        "\npaper: \"beta, A and C are fitting parameters and can be extracted from\n\
         measurement results.\" The authors do not publish their values; the check here\n\
         is that one parameter set per condition reproduces its whole curve (low RMSE)."
    );
}
