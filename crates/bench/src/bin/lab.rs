//! `lab` — run ad-hoc chamber sessions from the command line and export
//! the measurement log as CSV.
//!
//! ```text
//! USAGE:
//!   lab [--seed N] [--chip N] [--csv FILE] [--json] [--out FILE] PHASE [PHASE ...]
//!
//! PHASE is either a Table 1 case name (AS110DC24, AR110N6, ...) or an
//! ad-hoc spec  kind:temp_c:volts:hours[:sampling_min]  with kind one of
//! dc, ac, sleep. `burnin` is also accepted.
//!
//! EXAMPLES:
//!   lab AS110DC24 AR110N6
//!   lab burnin dc:100:1.2:24 sleep:110:-0.3:6 --csv session.csv
//! ```
//!
//! Run with `cargo run -p selfheal-bench --release --bin lab -- <args>`.
//! Pass `--json` for the run manifest instead of the human report.

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use rand::SeedableRng;
use selfheal_bench::{fmt, BenchRun};
use selfheal_fpga::{Chip, ChipId};
use selfheal_testbench::export::write_csv;
use selfheal_testbench::{cases, PhaseSpec, TestHarness};
use selfheal_units::{Celsius, Hours, Minutes, Seconds, Volts};

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("lab: {message}");
            eprintln!("usage: lab [--seed N] [--chip N] [--csv FILE] [--json] [--out FILE] PHASE [PHASE ...]");
            eprintln!("       PHASE = Table-1 case name | burnin | dc|ac|sleep:temp:volts:hours[:sampling_min]");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut seed = 1u64;
    let mut chip_no = 1u32;
    let mut csv_path: Option<String> = None;
    let mut phases: Vec<PhaseSpec> = Vec::new();

    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                seed = iter
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--chip" => {
                chip_no = iter
                    .next()
                    .ok_or("--chip needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --chip: {e}"))?;
            }
            "--csv" => {
                csv_path = Some(iter.next().ok_or("--csv needs a path")?);
            }
            // Consumed by BenchRun::start; skipped here.
            "--json" => {}
            "--out" => {
                iter.next().ok_or("--out needs a path")?;
            }
            "--help" | "-h" => {
                return Err("help requested".to_string());
            }
            other => phases.push(parse_phase(other)?),
        }
    }
    if phases.is_empty() {
        return Err("no phases given".to_string());
    }

    let mut bench = BenchRun::start("lab");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let chip = Chip::commercial_40nm(ChipId::new(chip_no), &mut rng);
    let mut harness = TestHarness::new(chip);

    bench.say(format!(
        "lab session: chip {chip_no}, seed {seed}, {} phase(s)\n",
        phases.len()
    ));
    let mut results = Vec::new();
    let mut fresh: Option<f64> = None;
    let mut samples = 0usize;
    for spec in &phases {
        // A named root span per session phase: the manifest's phase
        // ledger shows the case names, with the harness's generic
        // `testbench.phase` span nested underneath.
        let _phase = bench.phase_named(&spec.name);
        let records = harness
            .run_phase(spec, &mut rng)
            .map_err(|e| format!("phase '{}': {e}", spec.name))?;
        let start = records.first().unwrap().measurement.cut_delay.get();
        let end = records.last().unwrap().measurement.cut_delay.get();
        fresh.get_or_insert(start);
        samples += records.len();
        bench.say(format!(
            "{:<28} {:>7} -> {:>7} ns  (delta {:+.3} ns, {} samples)",
            spec.name,
            fmt(start, 3),
            fmt(end, 3),
            end - start,
            records.len()
        ));
        results.push(selfheal_testbench::PhaseResult {
            name: spec.name.clone(),
            records,
        });
    }

    let last_delay = results
        .last()
        .and_then(|r| r.records.last())
        .map(|r| r.measurement.cut_delay.get());
    if let (Some(fresh), Some(last)) = (fresh, last_delay) {
        bench.say(format!(
            "\nsession: {} h of chamber time, net shift {:+.3} ns vs session start",
            fmt(harness.total_elapsed().to_hours().get(), 1),
            last - fresh
        ));
        bench.value("net_shift_ns", last - fresh);
    }

    if let Some(path) = csv_path {
        let file = File::create(&path).map_err(|e| format!("creating {path}: {e}"))?;
        write_csv(BufWriter::new(file), &results).map_err(|e| format!("writing {path}: {e}"))?;
        bench.say(format!("measurement log written to {path}"));
    }

    let phase_names: Vec<&str> = results.iter().map(|r| r.name.as_str()).collect();
    bench.value("phases", results.len() as f64);
    bench.value("samples", samples as f64);
    bench.value("chamber_hours", harness.total_elapsed().to_hours().get());
    bench.finish(&format!(
        "seed={seed} chip={chip_no} phases={}",
        phase_names.join(",")
    ));
    Ok(())
}

fn parse_phase(token: &str) -> Result<PhaseSpec, String> {
    if token.eq_ignore_ascii_case("burnin") || token.eq_ignore_ascii_case("burn-in") {
        return Ok(PhaseSpec::burn_in());
    }
    // A Table 1 case name?
    if let Some(case) = cases::table1().into_iter().find(|c| c.name == token) {
        return Ok(case.to_phase_spec());
    }
    // Ad-hoc kind:temp:volts:hours[:sampling_min]
    let parts: Vec<&str> = token.split(':').collect();
    if !(4..=5).contains(&parts.len()) {
        return Err(format!(
            "'{token}' is neither a Table 1 case nor kind:temp:volts:hours[:sampling_min]"
        ));
    }
    let kind = parts[0];
    let temp: f64 = parts[1].parse().map_err(|e| format!("temp in '{token}': {e}"))?;
    let volts: f64 = parts[2].parse().map_err(|e| format!("volts in '{token}': {e}"))?;
    let hours: f64 = parts[3].parse().map_err(|e| format!("hours in '{token}': {e}"))?;
    let sampling: Seconds = if parts.len() == 5 {
        let minutes: f64 = parts[4]
            .parse()
            .map_err(|e| format!("sampling in '{token}': {e}"))?;
        Minutes::new(minutes).into()
    } else {
        Minutes::new(20.0).into()
    };
    let duration: Seconds = Hours::new(hours).into();
    let temperature = Celsius::new(temp);

    let mut spec = match kind {
        "dc" => PhaseSpec::dc_stress_phase(temperature, duration, sampling),
        "ac" => PhaseSpec::ac_stress_phase(temperature, duration, sampling),
        "sleep" => PhaseSpec::recovery_phase(Volts::new(volts), temperature, duration, sampling),
        other => return Err(format!("unknown phase kind '{other}' (dc|ac|sleep)")),
    };
    if kind != "sleep" {
        spec.supply = Volts::new(volts);
    }
    spec = spec.named(token.to_string());
    spec.validate()?;
    Ok(spec)
}
