//! The §7 caveat quantified: self-healing recovers BTI, but
//! electromigration and hot-carrier damage keep ratcheting — over the
//! years the *irreversible* floor under the sawtooth rises, bounding what
//! any rejuvenation rhythm can buy back.
//!
//! Run with `cargo run -p selfheal-bench --release --bin em_floor`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::analytic::AnalyticBti;
use selfheal_bti::em::Electromigration;
use selfheal_bti::hci::HotCarrier;
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Hours, Seconds, Volts};

fn main() {
    let mut run = BenchRun::start("em_floor");
    run.say("EM floor: BTI self-healing vs irreversible interconnect drift\n");

    // A daily circadian rhythm at a hot operating point, for five years.
    let active = DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(90.0)));
    let sleep =
        DeviceCondition::recovery(Environment::new(Volts::new(-0.3), Celsius::new(110.0)));
    let day_active: Seconds = Hours::new(19.2).into(); // α = 4
    let day_sleep: Seconds = Hours::new(4.8).into();

    // Path assumptions: 90 ns fresh delay, half of it interconnect RC.
    // BTI converts device mV to path ns through the fitted β ≈ 0.05 ns/mV
    // (Ns/LD = 0.5 over a 450-device path at 0.8 V overdrive).
    let beta_ns_per_mv = 0.056;
    let wire_delay_ns = 45.0;

    let mut bti = AnalyticBti::default();
    let mut em = Electromigration::new();
    let mut hci = HotCarrier::new();
    // HCI strikes the toggling subset of the logic; model its exposure as
    // half-duty switching while active.
    let toggling = selfheal_bti::DeviceCondition::ac_stress(active.env());

    let mut table = Table::new(&[
        "year",
        "BTI shift (ns)",
        "EM shift (ns)",
        "HCI shift (ns)",
        "total (ns)",
        "healable share (%)",
    ]);
    let mut final_total = 0.0;
    let mut final_healable_share = 0.0;
    {
        let _phase = run.phase("five-year-rhythm");
        for year in 1..=5u32 {
            for _ in 0..365 {
                bti.advance(active, day_active);
                em.advance(active, day_active);
                hci.advance(toggling, day_active);
                bti.advance(sleep, day_sleep);
                em.advance(sleep, day_sleep); // no-ops: gated wires carry no current,
                hci.advance(sleep, day_sleep); // gated logic does not switch
            }
            let bti_ns = bti.delta_vth().get() * beta_ns_per_mv;
            let em_ns = em.resistance_drift().get() * wire_delay_ns;
            let hci_ns = hci.delta_vth().get() * beta_ns_per_mv;
            let total = bti_ns + em_ns + hci_ns;
            let healable =
                (bti.delta_vth().get() - bti.permanent_delta_vth().get()) * beta_ns_per_mv;
            final_total = total;
            final_healable_share = 100.0 * healable / total;
            table.row(&[
                &year.to_string(),
                &fmt(bti_ns, 3),
                &fmt(em_ns, 3),
                &fmt(hci_ns, 3),
                &fmt(total, 3),
                &fmt(final_healable_share, 1),
            ]);
        }
    }
    run.table(&table);

    run.say(
        "\nreading: BTI saturates (log-time) and most of it stays healable, while the\n\
         EM term grows linearly, HCI grows as sqrt(t), and neither is touchable by\n\
         any sleep condition — the 'healable share' of total margin consumption\n\
         falls year over year. This is the quantified version of the paper's SS7\n\
         admission that its first-order model 'is optimistic in that it ignores\n\
         other aging effects, such as Electromigration'.",
    );

    run.value("year5_total_shift_ns", final_total);
    run.value("year5_healable_share_pct", final_healable_share);
    run.value("year5_em_shift_ns", em.resistance_drift().get() * wire_delay_ns);
    run.finish("years=5 rhythm=19.2h/4.8h active=1.2V/90C sleep=-0.3V/110C");
}
