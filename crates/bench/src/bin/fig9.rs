//! Fig. 9 — wearout vs accelerated recovery over a long periodic
//! schedule: 110 °C / −0.3 V sleep at α = 4 keeps the shift bounded while
//! uninterrupted wearout keeps climbing.
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig9`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{fmt, sparkline, BenchRun, Table};
use selfheal_bti::analytic::{AnalyticBti, CycleModel};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Hours, Ratio, Seconds, Volts};

fn main() {
    let mut run = BenchRun::start("fig9");
    run.say("Fig. 9: Wearout vs accelerated recovery over repeated cycles\n");

    let stress = DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)));
    let heal = DeviceCondition::recovery(Environment::new(Volts::new(-0.3), Celsius::new(110.0)));

    let cycles = 8;
    let period: Seconds = Hours::new(30.0).into();

    // Scheduled deep rejuvenation (the paper's proposal).
    let model = CycleModel {
        alpha: Ratio::PAPER_ALPHA,
        period,
        active: stress,
        sleep: heal,
    };
    let healed = {
        let _phase = run.phase("healed-schedule");
        model.run(cycles)
    };

    // Uninterrupted wearout (what margins are budgeted for today).
    let _phase = run.phase("wearout-baseline");
    let mut baseline = AnalyticBti::default();
    let mut baseline_series = Vec::new();
    let step = period / 16.0;
    baseline_series.push((0.0, 0.0));
    for i in 1..=(cycles * 16) {
        baseline.advance(stress, step);
        baseline_series.push((step.get() * i as f64, baseline.delta_vth().get()));
    }
    drop(_phase);

    let mut table = Table::new(&["t (h)", "wearout only (mV)", "with healing (mV)"]);
    for (b, h) in baseline_series.iter().zip(&healed).step_by(8) {
        table.row(&[
            &fmt(b.0 / 3600.0, 0),
            &fmt(b.1, 2),
            &fmt(h.delta_vth.get(), 2),
        ]);
    }
    run.table(&table);

    let base_curve: Vec<f64> = baseline_series.iter().map(|p| p.1).collect();
    let heal_curve: Vec<f64> = healed.iter().map(|s| s.delta_vth.get()).collect();
    run.say(format!("\nwearout : {}", sparkline(&base_curve)));
    run.say(format!("healing : {}", sparkline(&heal_curve)));

    let final_base = base_curve.last().copied().unwrap_or(0.0);
    let final_heal = heal_curve.last().copied().unwrap_or(0.0);
    run.say("\n--- shape check (paper) ---");
    run.say(format!(
        "final shift with healing is {} of uninterrupted wearout ({} vs {} mV)",
        fmt(final_heal / final_base, 2),
        fmt(final_heal, 1),
        fmt(final_base, 1)
    ));
    run.say(
        "\npaper: scheduled deep rejuvenation (110 degC, -0.3 V, alpha = 4) repeatedly\n\
         pulls the accumulated shift back down, relaxing the margin the design must\n\
         budget for the whole period of operation.",
    );

    run.value("final_wearout_mv", final_base);
    run.value("final_healed_mv", final_heal);
    run.value("healed_over_wearout", final_heal / final_base);
    run.finish("alpha=4 period_h=30 cycles=8 stress=1.2V/110C sleep=-0.3V/110C");
}
