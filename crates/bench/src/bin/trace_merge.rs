//! `trace_merge`: join per-process Chrome trace files into one document.
//!
//! Each selfheal process exports its trace against its *own* epoch
//! (`trace_epoch_ns` is per-process), so a client trace and a daemon
//! trace of the same run disagree about absolute time and both claim
//! `pid` 1. This tool concatenates them into a single Perfetto-loadable
//! file: every input gets its own pid (named after the file), and every
//! non-reference file's timestamps are re-based onto the first file's
//! clock.
//!
//! The re-basing uses the cross-process flow arrows the fleet protocol
//! emits (`fleet.rpc` client→daemon, `fleet.reply` daemon→client).
//! Every arrow gives a one-sided bound on the clock offset — the
//! consuming end cannot precede the producing end — so arrows in both
//! directions bracket the true offset exactly like an NTP exchange;
//! the midpoint of the bracket is the estimate. With arrows in only one
//! direction the tight bound is used; with no shared flows at all the
//! files are aligned at their earliest events.
//!
//! ```text
//! trace_merge --out merged.json client.json daemon.json
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use selfheal_telemetry::{json, Json};

const USAGE: &str = "usage: trace_merge --out MERGED.json TRACE.json TRACE.json [...]";

fn main() -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut inputs: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(path) => out = Some(PathBuf::from(path)),
                None => return fail("--out needs a value"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                return fail(&format!("unknown flag {other}\n{USAGE}"));
            }
            path => inputs.push(PathBuf::from(path)),
        }
    }
    let Some(out) = out else {
        return fail(&format!("--out is required\n{USAGE}"));
    };
    if inputs.len() < 2 {
        return fail(&format!("need at least two input traces\n{USAGE}"));
    }

    let mut files = Vec::with_capacity(inputs.len());
    for path in &inputs {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => return fail(&format!("cannot read {}: {err}", path.display())),
        };
        let doc = match json::parse(&text) {
            Ok(doc) => doc,
            Err(err) => {
                return fail(&format!("{} is not JSON: {err:?}", path.display()));
            }
        };
        files.push((label_of(path), doc));
    }
    let merged = match merge(&files) {
        Ok(merged) => merged,
        Err(problem) => return fail(&problem),
    };
    if let Err(err) = std::fs::write(&out, merged.render()) {
        return fail(&format!("cannot write {}: {err}", out.display()));
    }
    eprintln!(
        "trace_merge: merged {} trace(s) into {}",
        files.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

fn fail(problem: &str) -> ExitCode {
    eprintln!("trace_merge: {problem}");
    ExitCode::FAILURE
}

/// The pid label for an input: its file stem.
fn label_of(path: &Path) -> String {
    path.file_stem()
        .map_or_else(|| path.display().to_string(), |s| s.to_string_lossy().into_owned())
}

/// One flow endpoint: `(name, id, ts_us)`.
type FlowPoint = (String, f64, f64);

/// Collects flow starts (`ph: "s"`) and ends (`ph: "f"`) of a trace.
fn flow_points(events: &[Json]) -> (Vec<FlowPoint>, Vec<FlowPoint>) {
    let mut starts = Vec::new();
    let mut ends = Vec::new();
    for event in events {
        let (Some(ph), Some(name), Some(id), Some(ts)) = (
            event.get("ph").and_then(Json::as_str),
            event.get("name").and_then(Json::as_str),
            event.get("id").and_then(Json::as_f64),
            event.get("ts").and_then(Json::as_f64),
        ) else {
            continue;
        };
        match ph {
            "s" => starts.push((name.to_string(), id, ts)),
            "f" => ends.push((name.to_string(), id, ts)),
            _ => {}
        }
    }
    (starts, ends)
}

/// Earliest timestamp of any timestamped event.
fn first_ts(events: &[Json]) -> Option<f64> {
    events
        .iter()
        .filter_map(|e| e.get("ts").and_then(Json::as_f64))
        .fold(None, |best, ts| Some(best.map_or(ts, |b: f64| b.min(ts))))
}

/// Estimates the offset (µs) to add to `other`'s timestamps so they land
/// on `reference`'s clock.
///
/// A flow arrow produced in `reference` and consumed in `other` forces
/// `ts_consume + offset >= ts_produce` — a lower bound; an arrow in the
/// opposite direction forces an upper bound. Bounds from both directions
/// bracket the offset (request/reply round trips always give both) and
/// the midpoint splits the residual network latency evenly, like NTP.
fn estimate_offset(reference: &[Json], other: &[Json]) -> f64 {
    let (ref_starts, ref_ends) = flow_points(reference);
    let (other_starts, other_ends) = flow_points(other);
    let mut lower: Option<f64> = None;
    let mut upper: Option<f64> = None;
    for (name, id, produced) in &ref_starts {
        for (other_name, other_id, consumed) in &other_ends {
            if name == other_name && id == other_id {
                let bound = produced - consumed;
                lower = Some(lower.map_or(bound, |l: f64| l.max(bound)));
            }
        }
    }
    for (name, id, produced) in &other_starts {
        for (ref_name, ref_id, consumed) in &ref_ends {
            if name == ref_name && id == ref_id {
                let bound = consumed - produced;
                upper = Some(upper.map_or(bound, |u: f64| u.min(bound)));
            }
        }
    }
    match (lower, upper) {
        (Some(l), Some(u)) if l <= u => f64::midpoint(l, u),
        // Inconsistent bounds (clock drift beyond the round trip):
        // honour causality of ref-produced arrows first.
        (Some(l), _) => l,
        (None, Some(u)) => u,
        (None, None) => match (first_ts(reference), first_ts(other)) {
            (Some(r), Some(o)) => r - o,
            _ => 0.0,
        },
    }
}

/// The `traceEvents` array of a parsed trace document.
fn events_of(doc: &Json) -> Result<&[Json], String> {
    doc.get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| "input has no traceEvents array".to_string())
}

/// Merges parsed `(label, document)` traces: file `k` becomes pid `k+1`
/// (named `label`), and every file after the first is re-based onto the
/// first file's clock via [`estimate_offset`].
fn merge(files: &[(String, Json)]) -> Result<Json, String> {
    let reference = events_of(&files[0].1)?;
    let mut merged: Vec<Json> = Vec::new();
    for (k, (label, doc)) in files.iter().enumerate() {
        let events = events_of(doc)?;
        let offset = if k == 0 {
            0.0
        } else {
            estimate_offset(reference, events)
        };
        #[allow(clippy::cast_precision_loss)]
        let pid = (k + 1) as f64;
        for event in events {
            let Json::Object(fields) = event else {
                continue;
            };
            // Drop per-file process_name rows; a merged row per file is
            // appended below with the file's own label.
            if fields.get("name").and_then(Json::as_str) == Some("process_name") {
                continue;
            }
            let mut fields = fields.clone();
            fields.insert("pid".to_string(), Json::Number(pid));
            if let Some(ts) = fields.get("ts").and_then(Json::as_f64) {
                fields.insert("ts".to_string(), Json::Number(ts + offset));
            }
            merged.push(Json::Object(fields));
        }
        merged.push(Json::object(vec![
            ("name".to_string(), Json::String("process_name".to_string())),
            ("ph".to_string(), Json::String("M".to_string())),
            ("pid".to_string(), Json::Number(pid)),
            (
                "args".to_string(),
                Json::object(vec![("name".to_string(), Json::String(label.clone()))]),
            ),
        ]));
    }
    Ok(Json::object(vec![
        ("traceEvents".to_string(), Json::Array(merged)),
        (
            "displayTimeUnit".to_string(),
            Json::String("ms".to_string()),
        ),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(ph: &str, name: &str, id: f64, ts: f64) -> Json {
        Json::object(vec![
            ("name".to_string(), Json::String(name.to_string())),
            ("ph".to_string(), Json::String(ph.to_string())),
            ("cat".to_string(), Json::String("flow".to_string())),
            ("id".to_string(), Json::Number(id)),
            ("ts".to_string(), Json::Number(ts)),
            ("pid".to_string(), Json::Number(1.0)),
            ("tid".to_string(), Json::Number(0.0)),
        ])
    }

    fn trace(events: Vec<Json>) -> Json {
        Json::object(vec![
            ("traceEvents".to_string(), Json::Array(events)),
            (
                "displayTimeUnit".to_string(),
                Json::String("ms".to_string()),
            ),
        ])
    }

    #[test]
    fn round_trip_flow_pairs_bracket_the_offset() {
        // Client clock: rpc sent at 1000, reply received at 1400.
        // Daemon clock: rpc received at 100, reply sent at 300.
        // True offset is bracketed by [1000-100, 1400-300] = [900, 1100];
        // the midpoint estimate is 1000.
        let client = vec![
            flow("s", "fleet.rpc", 7.0, 1000.0),
            flow("f", "fleet.reply", 9.0, 1400.0),
        ];
        let daemon = vec![
            flow("f", "fleet.rpc", 7.0, 100.0),
            flow("s", "fleet.reply", 9.0, 300.0),
        ];
        let offset = estimate_offset(&client, &daemon);
        assert!((offset - 1000.0).abs() < 1e-9, "got {offset}");
    }

    #[test]
    fn disjoint_traces_align_at_their_first_events() {
        let a = vec![flow("s", "x", 1.0, 500.0)];
        let b = vec![flow("s", "y", 2.0, 9000.0)];
        let offset = estimate_offset(&a, &b);
        assert!((offset - (500.0 - 9000.0)).abs() < 1e-9, "got {offset}");
    }

    #[test]
    fn merge_rebases_assigns_pids_and_names_processes() {
        let client = trace(vec![
            flow("s", "fleet.rpc", 7.0, 1000.0),
            flow("f", "fleet.reply", 9.0, 1400.0),
        ]);
        let daemon = trace(vec![
            flow("f", "fleet.rpc", 7.0, 100.0),
            flow("s", "fleet.reply", 9.0, 300.0),
        ]);
        let merged = merge(&[
            ("client".to_string(), client),
            ("daemon".to_string(), daemon),
        ])
        .expect("merges");
        let events = merged
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents");

        // The daemon's rpc arrival (100 on its clock) lands at 1100 on
        // the merged clock — after the client sent it at 1000.
        let rpc_end = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("f")
                    && e.get("name").and_then(Json::as_str) == Some("fleet.rpc")
            })
            .expect("daemon rpc end present");
        assert_eq!(rpc_end.get("pid").and_then(Json::as_f64), Some(2.0));
        let ts = rpc_end.get("ts").and_then(Json::as_f64).expect("ts");
        assert!(ts >= 1000.0, "consume precedes produce after merge: {ts}");

        // Both processes are named after their files.
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, vec!["client", "daemon"]);

        // Each flow id still appears as one s/f pair, now under
        // different pids — the cross-process arrow Perfetto draws.
        for id in [7.0, 9.0] {
            let pids: Vec<f64> = events
                .iter()
                .filter(|e| e.get("id").and_then(Json::as_f64) == Some(id))
                .filter_map(|e| e.get("pid").and_then(Json::as_f64))
                .collect();
            assert_eq!(pids.len(), 2, "flow {id} keeps both endpoints");
            assert_ne!(pids[0], pids[1], "flow {id} spans processes");
        }
    }

    #[test]
    fn merge_rejects_documents_without_events() {
        let bad = Json::object(vec![("nope".to_string(), Json::Null)]);
        assert!(merge(&[("a".to_string(), bad.clone()), ("b".to_string(), bad)]).is_err());
    }
}
