//! Fig. 8 — remaining delay shift ΔTd over time during recovery, all four
//! conditions overlaid with their model curves; the combined
//! 110 °C/−0.3 V case recovers fastest.
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig8`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{campaign, fmt, sparkline, BenchRun, Table};

const CASES: [&str; 4] = ["AR110N6", "AR110Z6", "AR20N6", "R20Z6"];

fn main() {
    let mut run = BenchRun::start("fig8");
    run.say("Fig. 8: Delay change over time during recovery (four conditions + models)\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };

    let mut table = Table::new(&[
        "t2 (h)",
        "110C/-0.3V (ns)",
        "110C/0V (ns)",
        "20C/-0.3V (ns)",
        "20C/0V (ns)",
    ]);
    let series: Vec<_> = CASES
        .iter()
        .map(|name| &outputs.recovery(name).expect("case ran").series)
        .collect();
    for i in (0..series[0].len()).step_by(2) {
        let t = series[0][i].elapsed.to_hours().get();
        let cells: Vec<String> = series
            .iter()
            .map(|s| fmt(s[i].remaining_shift.get(), 3))
            .collect();
        table.row(&[
            &fmt(t, 1),
            &cells[0],
            &cells[1],
            &cells[2],
            &cells[3],
        ]);
    }
    run.table(&table);

    run.say("");
    for name in CASES {
        let rec = outputs.recovery(name).expect("case ran");
        let curve: Vec<f64> = rec.series.iter().map(|p| p.remaining_shift.get()).collect();
        let fit = rec.fit.as_ref().expect("fit");
        run.say(format!(
            "{name:9} shape: {}   (model RMSE {} ns)",
            sparkline(&curve),
            fmt(fit.rmse_ns, 3)
        ));
    }

    // Final remaining shifts must be ordered: combined < single-knob < passive.
    let remaining = |name: &str| {
        outputs
            .recovery(name)
            .and_then(|r| r.series.last())
            .map(|p| p.remaining_shift.get())
            .unwrap_or(f64::NAN)
    };
    run.say("\n--- shape check (paper) ---");
    let combined = remaining("AR110N6");
    let passive = remaining("R20Z6");
    run.say(format!(
        "final remaining shift: combined {} ns < passive {} ns : {}",
        fmt(combined, 3),
        fmt(passive, 3),
        if combined < passive { "yes" } else { "NO" }
    ));
    run.say(
        "\npaper: \"High temperature (110 degC), combining with negative voltage (-0.3 V)\n\
         achieves the highest recovery rate\"; test results match the modeling results.",
    );

    run.value("remaining_combined_ns", combined);
    run.value("remaining_passive_ns", passive);
    run.value("remaining_ar110z6_ns", remaining("AR110Z6"));
    run.value("remaining_ar20n6_ns", remaining("AR20N6"));
    run.finish("campaign seed=2014 cases=AR110N6,AR110Z6,AR20N6,R20Z6");
}
