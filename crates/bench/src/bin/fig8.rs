//! Fig. 8 — remaining delay shift ΔTd over time during recovery, all four
//! conditions overlaid with their model curves; the combined
//! 110 °C/−0.3 V case recovers fastest.
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig8`.

use selfheal_bench::{campaign, fmt, sparkline, Table};

const CASES: [&str; 4] = ["AR110N6", "AR110Z6", "AR20N6", "R20Z6"];

fn main() {
    println!("Fig. 8: Delay change over time during recovery (four conditions + models)\n");
    let outputs = campaign();

    let mut table = Table::new(&[
        "t2 (h)",
        "110C/-0.3V (ns)",
        "110C/0V (ns)",
        "20C/-0.3V (ns)",
        "20C/0V (ns)",
    ]);
    let series: Vec<_> = CASES
        .iter()
        .map(|name| &outputs.recovery(name).expect("case ran").series)
        .collect();
    for i in (0..series[0].len()).step_by(2) {
        let t = series[0][i].elapsed.to_hours().get();
        let cells: Vec<String> = series
            .iter()
            .map(|s| fmt(s[i].remaining_shift.get(), 3))
            .collect();
        table.row(&[
            &fmt(t, 1),
            &cells[0],
            &cells[1],
            &cells[2],
            &cells[3],
        ]);
    }
    table.print();

    println!();
    for name in CASES {
        let rec = outputs.recovery(name).expect("case ran");
        let curve: Vec<f64> = rec.series.iter().map(|p| p.remaining_shift.get()).collect();
        let fit = rec.fit.as_ref().expect("fit");
        println!(
            "{name:9} shape: {}   (model RMSE {} ns)",
            sparkline(&curve),
            fmt(fit.rmse_ns, 3)
        );
    }

    // Final remaining shifts must be ordered: combined < single-knob < passive.
    let remaining = |name: &str| {
        outputs
            .recovery(name)
            .and_then(|r| r.series.last())
            .map(|p| p.remaining_shift.get())
            .unwrap_or(f64::NAN)
    };
    println!("\n--- shape check (paper) ---");
    let combined = remaining("AR110N6");
    let passive = remaining("R20Z6");
    println!(
        "final remaining shift: combined {} ns < passive {} ns : {}",
        fmt(combined, 3),
        fmt(passive, 3),
        if combined < passive { "yes" } else { "NO" }
    );
    println!(
        "\npaper: \"High temperature (110 degC), combining with negative voltage (-0.3 V)\n\
         achieves the highest recovery rate\"; test results match the modeling results."
    );
}
