//! Fig. 1 — behavioural illustration of stress and recovery: the ΔVth
//! sawtooth with a rising floor (the unrecovered part accumulates).
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig1`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{fmt, sparkline, BenchRun, Table};
use selfheal_bti::analytic::CycleModel;
use selfheal_bti::{DeviceCondition, Environment, Phase};
use selfheal_units::{Celsius, Hours, Ratio, Volts};

fn main() {
    let mut run = BenchRun::start("fig1");
    run.say("Fig. 1: Behavioural illustration of stress and recovery\n");

    let model = CycleModel {
        alpha: Ratio::PAPER_ALPHA,
        period: Hours::new(30.0).into(),
        active: DeviceCondition::dc_stress(Environment::new(
            Volts::new(1.2),
            Celsius::new(110.0),
        )),
        sleep: DeviceCondition::recovery(Environment::new(
            Volts::new(-0.3),
            Celsius::new(110.0),
        )),
    };
    let series = {
        let _phase = run.phase("sawtooth");
        model.run(3)
    };

    let mut table = Table::new(&["t (h)", "phase", "dVth (mV)"]);
    for sample in series.iter().step_by(2) {
        let phase = match sample.phase {
            Phase::Stress => "stress",
            Phase::Recovery => "recovery",
        };
        table.row(&[
            &fmt(sample.time.to_hours().get(), 1),
            phase,
            &fmt(sample.delta_vth.get(), 2),
        ]);
    }
    run.table(&table);

    let values: Vec<f64> = series.iter().map(|s| s.delta_vth.get()).collect();
    run.say(format!("\nshape: {}", sparkline(&values)));

    // The paper's qualitative claims for this figure:
    let peaks: Vec<f64> = series
        .chunks(16) // one cycle = 8 stress + 8 recovery samples
        .filter_map(|cycle| {
            cycle
                .iter()
                .map(|s| s.delta_vth.get())
                .fold(None, |acc: Option<f64>, v| Some(acc.map_or(v, |a| a.max(v))))
        })
        .collect();
    let floors: Vec<f64> = series
        .chunks(16)
        .filter_map(|cycle| cycle.last().map(|s| s.delta_vth.get()))
        .collect();
    run.say(format!(
        "cycle peaks  (mV): {:?}",
        peaks.iter().map(|v| fmt(*v, 1)).collect::<Vec<_>>()
    ));
    run.say(format!(
        "cycle floors (mV): {:?}",
        floors.iter().map(|v| fmt(*v, 1)).collect::<Vec<_>>()
    ));
    run.say(
        "\npaper: recovery is partial, so the floor rises cycle to cycle while deep\n\
         rejuvenation keeps the envelope far below monotonic wearout.",
    );

    run.value("final_peak_mv", peaks.last().copied().unwrap_or(0.0));
    run.value("final_floor_mv", floors.last().copied().unwrap_or(0.0));
    run.finish("alpha=4 period_h=30 cycles=3 stress=1.2V/110C sleep=-0.3V/110C");
}
