//! Closed-loop policy race on real (simulated) silicon: proactive vs
//! reactive rejuvenation, both reading the on-chip odometer — §2.2's
//! trade-off with the sensor in the loop.
//!
//! Run with `cargo run -p selfheal-bench --release --bin closed_loop`.
//! Pass `--json` for the run manifest instead of the human report.

use rand::SeedableRng;
use selfheal::closed_loop::{run_closed_loop, ClosedLoopConfig};
use selfheal::policy::{ProactivePolicy, ReactivePolicy, RecoveryPolicy};
use selfheal::RejuvenationTechnique;
use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::Environment;
use selfheal_fpga::{Chip, ChipId, Family, Odometer};
use selfheal_units::{Celsius, Fraction, Hours, Millivolts, Seconds, Volts};

fn main() {
    let mut run = BenchRun::start("closed_loop");
    run.say("Closed-loop rejuvenation on simulated silicon (30 days @ 110 degC)\n");

    let mut table = Table::new(&[
        "policy",
        "sleep events",
        "time asleep (h)",
        "final shift (ns)",
        "sensor reading (%)",
    ]);

    let mut policies: Vec<Box<dyn RecoveryPolicy>> = vec![
        Box::new(ProactivePolicy::paper_default()),
        Box::new(ReactivePolicy::new(
            Fraction::new(0.5),
            RejuvenationTechnique::Combined,
            Hours::new(6.0).into(),
        )),
    ];

    let mut results = Vec::new();
    for policy in &mut policies {
        // Identical chip + sensor population per policy.
        let mut rng = rand::rngs::StdRng::seed_from_u64(404);
        let mut chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
        let mut odometer = Odometer::sample(
            &Family::commercial_40nm(),
            Millivolts::new(0.0),
            &mut rng,
        );
        let result = {
            let _phase = run.phase("policy-race");
            run_closed_loop(
                policy.as_mut(),
                &mut chip,
                &mut odometer,
                &ClosedLoopConfig {
                    active_env: Environment::new(Volts::new(1.2), Celsius::new(110.0)),
                    sensor_margin: Fraction::new(0.05),
                    horizon: Seconds::new(30.0 * 86_400.0),
                    step: Hours::new(2.0).into(),
                },
            )
        };
        table.row(&[
            &result.policy.clone(),
            &result.sleep_events.to_string(),
            &fmt(result.time_asleep.to_hours().get(), 0),
            &fmt(result.final_shift.get(), 3),
            &fmt(result.final_sensor_reading.get() * 100.0, 2),
        ]);
        results.push(result);
    }
    run.table(&table);

    run.say(
        "\npaper SS2.2: the proactive schedule needs no sensing hardware and fires\n\
         predictably; the reactive controller needs the odometer (refs [7, 8]) and\n\
         rides deeper into the margin before each heal. Both keep the chip far\n\
         healthier than never sleeping.",
    );

    run.value("proactive_sleep_events", results[0].sleep_events as f64);
    run.value("reactive_sleep_events", results[1].sleep_events as f64);
    run.value("proactive_final_shift_ns", results[0].final_shift.get());
    run.value("reactive_final_shift_ns", results[1].final_shift.get());
    run.finish("horizon=30d step=2h active=1.2V/110C seed=404");
}
