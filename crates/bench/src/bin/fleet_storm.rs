//! Traffic storm against a live `selfheal-fleet` daemon.
//!
//! **Bench mode** (default): binds an in-process [`FleetServer`] on a
//! loopback ephemeral port, pre-ages the fleet a few epochs so plans
//! have real occupancy to chew on, then drives it from N client
//! threads. Each client draws from its own [`SeedSequence`]-derived RNG:
//! exponential inter-arrival gaps (a Poisson process at `--rate`
//! requests/s) and a weighted request mix (plan 60 / predict 25 /
//! report 13 / stats 2 percent). Round-trip latency is measured
//! client-side per request; the manifest reports throughput plus
//! p50/p99/p999, and the ledger tracks the time-like keys
//! (`us_per_request`, `p50_us`, `p99_us`, `p999_us`).
//!
//! **Smoke mode** (`--smoke --connect ADDR [--shutdown]`): issues one
//! request of each type against an already-running `fleetd` and checks
//! each reply, exiting non-zero on any failure — the CI handshake.
//!
//! ```text
//! fleet_storm --chips 100000 --clients 8 --requests 4000 --json
//! fleet_storm --smoke --connect 127.0.0.1:7414 --shutdown
//! ```

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use rand::Rng;
use selfheal::RejuvenationTechnique;
use selfheal_bench::BenchRun;
use selfheal_fleet::{
    FleetClient, FleetConfig, FleetDaemon, FleetServer, Request, Response, ServerConfig,
};
use selfheal_runtime::{ResultCache, SeedSequence};
use selfheal_units::{DutyCycle, Seconds};

/// Epochs of aging applied before the storm starts: plans against a
/// pristine fleet all short-circuit on zero occupancy, which is not the
/// workload the ledger should track.
const WARMUP_EPOCHS: u64 = 3;

struct Options {
    chips: usize,
    shards: usize,
    seed: u64,
    traps: f64,
    clients: usize,
    requests: u64,
    rate: f64,
    smoke: bool,
    connect: Option<SocketAddr>,
    shutdown: bool,
    /// Chrome-trace output. In bench mode `BenchRun` installs the sink
    /// (this is one of its common flags); the storm additionally stamps
    /// every request with a deterministic trace context so the client
    /// side of each cross-process flow lands in the file. In smoke mode
    /// the sink is installed here.
    trace: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            chips: 100_000,
            shards: 64,
            seed: 2014,
            traps: 8.0,
            clients: 8,
            requests: 4_000,
            rate: 2_000.0,
            smoke: false,
            connect: None,
            shutdown: false,
            trace: None,
        }
    }
}

const USAGE: &str = "usage: fleet_storm [--chips N] [--shards N] [--seed N] [--traps MEAN]\n\
                     \x20                  [--clients N] [--requests N] [--rate HZ] [--json]\n\
                     \x20                  [--trace PATH]\n\
                     \x20      fleet_storm --smoke --connect HOST:PORT [--shutdown] [--trace PATH]";

fn parse_options() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--chips" => opts.chips = parse(&value("--chips")?)?,
            "--shards" => opts.shards = parse(&value("--shards")?)?,
            "--seed" => opts.seed = parse(&value("--seed")?)?,
            "--traps" => opts.traps = parse(&value("--traps")?)?,
            "--clients" => opts.clients = parse(&value("--clients")?)?,
            "--requests" => opts.requests = parse(&value("--requests")?)?,
            "--rate" => opts.rate = parse(&value("--rate")?)?,
            "--smoke" => opts.smoke = true,
            "--connect" => {
                let raw = value("--connect")?;
                opts.connect = Some(raw.parse().map_err(|_| format!("bad address {raw}"))?);
            }
            "--shutdown" => opts.shutdown = true,
            // Also one of BenchRun's common flags: in bench mode it
            // installs the sink from the same argument.
            "--trace" => opts.trace = Some(PathBuf::from(value("--trace")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            // BenchRun's common flags (--json, --threads, --out, ...).
            "--json" | "--no-cache" => {}
            "--out" | "--folded" | "--status" | "--threads" => {
                let _ = args.next();
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if opts.clients == 0 || opts.requests == 0 || !(opts.rate > 0.0) {
        return Err("--clients, --requests and --rate must be positive".to_string());
    }
    if opts.smoke && opts.connect.is_none() {
        return Err(format!("--smoke needs --connect\n{USAGE}"));
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad number {raw}"))
}

fn fleet_config(opts: &Options) -> FleetConfig {
    let mut config = FleetConfig::default();
    config.chips = opts.chips;
    config.shards = opts.shards.min(opts.chips.max(1));
    config.seed = opts.seed;
    config.trap_params.mean_trap_count = opts.traps;
    config
}

/// One storm client's lifetime: a Poisson request stream with a
/// weighted mix, returning every round-trip latency it observed.
fn storm_client(
    addr: SocketAddr,
    chips: u64,
    requests: u64,
    rate: f64,
    mut rng: rand::rngs::StdRng,
    trace_seeds: Option<SeedSequence>,
) -> Result<Vec<Duration>, String> {
    let mut client = FleetClient::connect(addr).map_err(|err| format!("connect: {err}"))?;
    if let Some(seeds) = trace_seeds {
        client.enable_trace(seeds);
    }
    let mut latencies = Vec::with_capacity(usize::try_from(requests).unwrap_or(0));
    for _ in 0..requests {
        // Exponential inter-arrival gap: -ln(U)/rate seconds.
        let uniform: f64 = rng.gen_range(f64::EPSILON..1.0);
        let gap = Duration::from_secs_f64(-uniform.ln() / rate);
        std::thread::sleep(gap);

        let chip = rng.gen_range(0..chips);
        let roll: f64 = rng.gen_range(0.0..1.0);
        let request = if roll < 0.60 {
            Request::Plan {
                chip,
                technique: RejuvenationTechnique::Combined,
                period: None,
                horizon: None,
            }
        } else if roll < 0.85 {
            Request::Predict {
                chip,
                dt: Seconds::new(86_400.0),
            }
        } else if roll < 0.98 {
            Request::Report {
                chip,
                duty: DutyCycle::new(rng.gen_range(0.05..0.95)),
            }
        } else {
            Request::Stats
        };

        let started = Instant::now();
        match client.call(&request) {
            Ok(Response::Error { code, message }) => {
                return Err(format!("server error {}: {message}", code.as_str()));
            }
            Ok(_) => latencies.push(started.elapsed()),
            Err(err) => return Err(format!("call failed: {err}")),
        }
    }
    Ok(latencies)
}

/// The `q`-th quantile (0..=1) of an already-sorted latency sample, in
/// microseconds (nearest-rank method).
fn percentile_us(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e6
}

#[allow(clippy::too_many_lines)]
fn bench(opts: &Options) -> Result<(), String> {
    let mut run = BenchRun::start("fleet_storm");
    run.say("Fleet storm: seeded Poisson traffic against a live fleet daemon\n");

    let config = fleet_config(opts);
    config.validate().map_err(|err| format!("config: {err}"))?;
    let chips = u64::try_from(config.chips).map_err(|_| "too many chips".to_string())?;

    let mut daemon = {
        let _phase = run.phase("build");
        FleetDaemon::new(config, ResultCache::disabled(), 0)
    };
    {
        let _phase = run.phase("warmup");
        for _ in 0..WARMUP_EPOCHS {
            daemon.advance_epoch();
        }
    }
    let traps = daemon.state().trap_count();

    let server = FleetServer::bind(
        daemon,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: opts.clients,
            epoch_interval: None,
            max_epochs: None,
        },
    )
    .map_err(|err| format!("bind: {err}"))?;
    let addr = server.addr();
    // The server must live on a real OS thread: it blocks on its own
    // accept loop for the whole storm, which would starve (and be
    // starved by) the deterministic pool the shards advance on.
    // analyzer: allow(raw-thread-spawn)
    let server = std::thread::spawn(move || server.run());

    let per_client = opts.requests / opts.clients as u64;
    let seeds = SeedSequence::new(opts.seed ^ 0x5707_2017);
    let storm_started = Instant::now();
    let clients: Vec<_> = {
        let _phase = run.phase("storm");
        let handles: Vec<_> = (0..opts.clients)
            .map(|index| {
                let rng = seeds.rng(index as u64);
                let rate = opts.rate;
                // Trace stamping only when a trace file was requested:
                // the untraced storm keeps its exact wire frames.
                let trace_seeds = opts
                    .trace
                    .is_some()
                    .then(|| seeds.child(0x7e ^ index as u64));
                std::thread::Builder::new()
                    .name(format!("storm-client-{index}"))
                    .spawn(move || {
                        selfheal_telemetry::register_thread_name(&format!(
                            "storm-client-{index}"
                        ));
                        storm_client(addr, chips, per_client, rate, rng, trace_seeds)
                    })
                    .map_err(|err| format!("spawn client {index}: {err}"))
            })
            .collect::<Result<_, _>>()?;
        handles
            .into_iter()
            .map(|handle| handle.join().map_err(|_| "client panicked".to_string())?)
            .collect::<Result<_, _>>()?
    };
    let wall = storm_started.elapsed();

    // Graceful shutdown before the numbers: the summary cross-checks
    // that every latency we measured was a request the server counted.
    let mut control = FleetClient::connect(addr).map_err(|err| format!("connect: {err}"))?;
    match control.call(&Request::Shutdown) {
        Ok(Response::Bye) => {}
        other => return Err(format!("shutdown: expected bye, got {other:?}")),
    }
    let summary = server.join().map_err(|_| "server panicked".to_string())?;

    let mut latencies: Vec<Duration> = clients.into_iter().flatten().collect();
    latencies.sort_unstable();
    let served = latencies.len();
    if served == 0 {
        return Err("no requests completed".to_string());
    }
    if summary.requests < served as u64 {
        return Err(format!(
            "server counted {} requests but clients measured {served}",
            summary.requests
        ));
    }

    #[allow(clippy::cast_precision_loss)]
    let served_f = served as f64;
    let total: Duration = latencies.iter().sum();
    let us_per_request = total.as_secs_f64() * 1e6 / served_f;
    let requests_per_s = served_f / wall.as_secs_f64();
    let p50 = percentile_us(&latencies, 0.50);
    let p99 = percentile_us(&latencies, 0.99);
    let p999 = percentile_us(&latencies, 0.999);

    run.say(format!(
        "chips={chips} traps={traps} clients={} rate={}/s requests={served}\n\
         wall:       {:8.1} ms  ({requests_per_s:.0} req/s)\n\
         latency:    {us_per_request:8.1} µs mean\n\
         p50/p99/p999: {p50:.1} / {p99:.1} / {p999:.1} µs\n\
         fleet digest: {:016x}",
        opts.clients,
        opts.rate,
        wall.as_secs_f64() * 1e3,
        summary.final_state_digest,
    ));
    run.value("us_per_request", us_per_request);
    run.value("p50_us", p50);
    run.value("p99_us", p99);
    run.value("p999_us", p999);
    run.value("requests_per_s", requests_per_s);
    run.finish(&format!(
        "chips={chips} traps_mean={} shards={} seed={} clients={} requests={} rate={}",
        opts.traps, opts.shards, opts.seed, opts.clients, opts.requests, opts.rate
    ));
    Ok(())
}

/// One request of each type against a running daemon; any unexpected
/// reply is a failure. The CI handshake. With `--trace` the client's
/// side of every request's flow chain is exported as a Chrome trace —
/// the fixture `trace_merge` joins with the daemon's file.
fn smoke(opts: &Options) -> Result<(), String> {
    let addr = opts.connect.expect("checked in parse_options");
    let _trace_guard = match &opts.trace {
        None => None,
        Some(path) => {
            let sink = selfheal_telemetry::ChromeTraceSink::create(path)
                .map_err(|err| format!("cannot open trace file {}: {err}", path.display()))?;
            selfheal_telemetry::register_thread_name("main");
            Some(selfheal_telemetry::install_sink(std::sync::Arc::new(sink)))
        }
    };
    let mut client = FleetClient::connect(addr).map_err(|err| format!("connect: {err}"))?;
    if opts.trace.is_some() {
        client.enable_trace(SeedSequence::new(opts.seed ^ 0x5707_2017));
    }
    let mut call = |request: &Request| {
        client
            .call(request)
            .map_err(|err| format!("{:?}: {err}", request.kind()))
    };

    match call(&Request::Report {
        chip: 0,
        duty: DutyCycle::new(0.5),
    })? {
        Response::Report { chip: 0, .. } => println!("fleet_storm: report ok"),
        other => return Err(format!("report: unexpected {other:?}")),
    }
    match call(&Request::Plan {
        chip: 0,
        technique: RejuvenationTechnique::Combined,
        period: None,
        horizon: None,
    })? {
        Response::Plan { chip: 0, .. } => println!("fleet_storm: plan ok"),
        other => return Err(format!("plan: unexpected {other:?}")),
    }
    match call(&Request::Predict {
        chip: 0,
        dt: Seconds::new(86_400.0),
    })? {
        Response::Predict { chip: 0, .. } => println!("fleet_storm: predict ok"),
        other => return Err(format!("predict: unexpected {other:?}")),
    }
    match call(&Request::Stats)? {
        Response::Stats(stats) => println!(
            "fleet_storm: stats ok (chips={} epoch={} digest={:016x})",
            stats.chips, stats.epoch, stats.state_digest
        ),
        other => return Err(format!("stats: unexpected {other:?}")),
    }
    // Ask the daemon to persist its flight recorder. An old daemon
    // answers unknown-type, which is fine — the smoke stays compatible
    // in both directions.
    match call(&Request::DebugDump)? {
        Response::DebugDump { events, path } => println!(
            "fleet_storm: debug-dump ok ({events} event(s){})",
            path.map(|p| format!(" -> {p}")).unwrap_or_default()
        ),
        Response::Error { code, .. }
            if code == selfheal_fleet::proto::ErrorCode::UnknownType =>
        {
            println!("fleet_storm: debug-dump skipped (daemon predates it)");
        }
        other => return Err(format!("debug-dump: unexpected {other:?}")),
    }
    if opts.shutdown {
        match call(&Request::Shutdown)? {
            Response::Bye => println!("fleet_storm: shutdown ok"),
            other => return Err(format!("shutdown: unexpected {other:?}")),
        }
    }
    drop(client);
    selfheal_telemetry::flush_all();
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("fleet_storm: {message}");
            return ExitCode::FAILURE;
        }
    };
    let result = if opts.smoke {
        smoke(&opts)
    } else {
        bench(&opts)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("fleet_storm: {message}");
            ExitCode::FAILURE
        }
    }
}
