//! Kernel microbenchmark: per-trap scalar advance vs hoisted rates vs
//! the SoA [`TrapBank`] fast path, at 1k / 10k / 100k traps.
//!
//! Run with `cargo run -p selfheal-bench --release --bin trap_kernel --
//! --out BENCH_kernel.json` to record the manifest the kernel's ≥3×
//! speedup claim is pinned against. The three variants are bit-for-bit
//! interchangeable (`tests/kernel_equivalence.rs` is the gate); only
//! wall-clock separates them:
//!
//! * **scalar** — `Trap::advance` per trap: every trap re-derives the
//!   phase's rate multipliers (the pre-kernel cost profile);
//! * **hoisted** — [`PhaseRates`] evaluated once per phase step, traps
//!   advanced through `Trap::advance_with_rates` on an AoS `Vec<Trap>`;
//! * **soa** — the full kernel: hoisted rates *and* the
//!   structure-of-arrays bank behind [`TrapEnsemble::advance`].

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::td::{PhaseRates, Trap, TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Millivolts, Minutes, Seconds, Volts};

/// Sizes swept, in traps per ensemble.
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
/// The size the headline speedup number is quoted at.
const HEADLINE: usize = 10_000;

/// Builds an ensemble of *exactly* `size` traps drawn from the default
/// 40 nm distributions. ([`TrapEnsemble::sample`] draws a Poisson count,
/// which cannot reach these benchmark sizes.)
fn ensemble_of(size: usize, seed: u64) -> TrapEnsemble {
    let params = TrapEnsembleParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = params.log10_tau_c_range;
    let (rlo, rhi) = params.log10_tau_ratio_range;
    let traps: Vec<Trap> = (0..size)
        .map(|_| {
            let log_tau_c = rng.gen_range(lo..hi);
            let ratio = rng.gen_range(rlo..rhi);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            Trap::new(
                Seconds::new(10f64.powf(log_tau_c)),
                Seconds::new(10f64.powf(log_tau_c + ratio)),
                Millivolts::new(-params.delta_vth_mean_mv.get() * u.ln()),
                rng.gen_bool(params.permanent_fraction),
            )
        })
        .collect();
    TrapEnsemble::from_traps(traps)
}

/// Times `step` over enough repetitions to cover ~`budget_traps` trap
/// updates, returning mean nanoseconds per repetition. One untimed
/// warm-up repetition precedes the clock.
fn time_per_step(budget_traps: usize, count: usize, mut step: impl FnMut()) -> f64 {
    let reps = (budget_traps / count).max(3);
    step();
    let started = Instant::now();
    for _ in 0..reps {
        step();
    }
    started.elapsed().as_nanos() as f64 / reps as f64
}

fn main() {
    let mut run = BenchRun::start("trap_kernel");
    run.say("Trap-kinetics kernel: scalar vs hoisted vs SoA bank\n");

    let cond = DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)));
    // A short step keeps occupancies moving (exp cost is value-independent
    // anyway), so repeated advances model a sampling loop, not a no-op.
    let dt: Seconds = Minutes::new(20.0).into();
    let budget = 2_000_000;

    let mut table = Table::new(&[
        "traps",
        "scalar (ns/trap)",
        "hoisted (ns/trap)",
        "soa (ns/trap)",
        "speedup",
    ]);
    let mut headline_speedup = 0.0;

    for (i, &size) in SIZES.iter().enumerate() {
        // One top-level span per size: the manifest's phase ledger gets
        // a `kernel_<size>` entry instead of the old empty `phases: []`.
        let phase = run.phase_named(format!("kernel_{size}"));
        let ensemble = ensemble_of(size, 2014 + i as u64);
        let traps: Vec<Trap> = ensemble.iter().collect();
        let count = traps.len();

        let mut scalar = traps.clone();
        let scalar_ns = time_per_step(budget, count, || {
            for trap in &mut scalar {
                trap.advance(cond, dt);
            }
        });

        let mut hoisted = traps.clone();
        let hoisted_ns = time_per_step(budget, count, || {
            let rates = PhaseRates::for_condition(cond);
            for trap in &mut hoisted {
                trap.advance_with_rates(&rates, dt);
            }
        });

        let mut soa = ensemble.clone();
        let soa_ns = time_per_step(budget, count, || {
            soa.advance(cond, dt);
        });
        drop(phase);

        let per_trap = |total_ns: f64| total_ns / count as f64;
        let speedup = scalar_ns / soa_ns;
        if size == HEADLINE {
            headline_speedup = speedup;
        }
        table.row(&[
            &count.to_string(),
            &fmt(per_trap(scalar_ns), 2),
            &fmt(per_trap(hoisted_ns), 2),
            &fmt(per_trap(soa_ns), 2),
            &format!("{speedup:.2}x"),
        ]);
        run.value(&format!("scalar_ns_per_trap_{size}"), per_trap(scalar_ns));
        run.value(&format!("hoisted_ns_per_trap_{size}"), per_trap(hoisted_ns));
        run.value(&format!("soa_ns_per_trap_{size}"), per_trap(soa_ns));
        run.value(&format!("speedup_{size}"), speedup);
    }

    run.table(&table);
    run.say(format!(
        "\nheadline: {headline_speedup:.2}x at {HEADLINE} traps (scalar loop vs SoA kernel).\n\
         The gap is the hoist — one rate-multiplier evaluation per phase step instead\n\
         of one per trap — compounded by the bank's flat, branch-light inner loop.",
    ));
    run.value("speedup_10k", headline_speedup);
    run.finish("sizes=1k,10k,100k condition=DC/1.2V/110C dt=20min budget=2e6 traps/step");
}
