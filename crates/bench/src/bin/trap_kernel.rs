//! Kernel microbenchmark: per-trap scalar advance vs hoisted rates vs
//! the SoA [`TrapBank`] fast path vs the cache-blocked batched-phase
//! traversal, at 1k / 10k / 100k / 1M traps.
//!
//! Run with `cargo run -p selfheal-bench --release --bin trap_kernel --
//! --out BENCH_kernel.json` to record the manifest the kernel's speedup
//! claims are pinned against. All four variants are bit-for-bit
//! interchangeable (`tests/kernel_equivalence.rs` is the gate); only
//! wall-clock separates them. Each is timed over the same four-phase
//! schedule (stress / recovery / AC stress / recovery):
//!
//! * **scalar** — `Trap::advance` per trap per phase: every trap
//!   re-derives the phase's rate multipliers (the pre-kernel cost
//!   profile);
//! * **hoisted** — [`PhaseRates`] evaluated once per phase step, traps
//!   advanced through `Trap::advance_with_rates` on an AoS `Vec<Trap>`;
//! * **soa** — the chunked kernel, one [`TrapEnsemble::advance`] call
//!   per phase: hoisted rates *and* the structure-of-arrays bank;
//! * **batched** — one [`TrapEnsemble::advance_phases`] call for the
//!   whole schedule: the bank is traversed **once** per batch, every
//!   chunk threaded through all four phases while it is cache-resident.
//!
//! The headline `speedup_<size>` is scalar vs batched. The batched
//! column is what removes the out-of-cache cliff the sequential soa
//! path hits past ~100k traps — per-trap cost at 1M should match 10k.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::td::{PhaseRates, Trap, TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Celsius, Millivolts, Minutes, Seconds, Volts};

/// Sizes swept, in traps per ensemble.
const SIZES: [usize; 4] = [1_000, 10_000, 100_000, 1_000_000];
/// The size the headline speedup number is quoted at.
const HEADLINE: usize = 10_000;

/// The four-phase schedule every variant steps through per repetition.
/// A short step keeps occupancies moving (exp cost is value-independent
/// anyway), so repeated advances model a sampling loop, not a no-op.
fn phase_batch() -> Vec<(DeviceCondition, Seconds)> {
    let hot = Environment::new(Volts::new(1.2), Celsius::new(110.0));
    let heal = Environment::new(Volts::new(-0.3), Celsius::new(110.0));
    let dt: Seconds = Minutes::new(20.0).into();
    vec![
        (DeviceCondition::dc_stress(hot), dt),
        (DeviceCondition::recovery(heal), dt),
        (DeviceCondition::ac_stress(hot), dt),
        (DeviceCondition::recovery(heal), dt),
    ]
}

/// Builds an ensemble of *exactly* `size` traps drawn from the default
/// 40 nm distributions. ([`TrapEnsemble::sample`] draws a Poisson count,
/// which cannot reach these benchmark sizes.)
fn ensemble_of(size: usize, seed: u64) -> TrapEnsemble {
    let params = TrapEnsembleParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = params.log10_tau_c_range;
    let (rlo, rhi) = params.log10_tau_ratio_range;
    let traps: Vec<Trap> = (0..size)
        .map(|_| {
            let log_tau_c = rng.gen_range(lo..hi);
            let ratio = rng.gen_range(rlo..rhi);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            Trap::new(
                Seconds::new(10f64.powf(log_tau_c)),
                Seconds::new(10f64.powf(log_tau_c + ratio)),
                Millivolts::new(-params.delta_vth_mean_mv.get() * u.ln()),
                rng.gen_bool(params.permanent_fraction),
            )
        })
        .collect();
    TrapEnsemble::from_traps(traps)
}

/// Times `step` (one full four-phase batch) over enough repetitions to
/// cover ~`budget` trap·steps, returning mean nanoseconds per
/// repetition. One untimed warm-up repetition precedes the clock.
fn time_per_batch(budget: usize, trap_steps: usize, mut step: impl FnMut()) -> f64 {
    let reps = (budget / trap_steps).max(3);
    step();
    let started = Instant::now();
    for _ in 0..reps {
        step();
    }
    started.elapsed().as_nanos() as f64 / reps as f64
}

fn main() {
    let mut run = BenchRun::start("trap_kernel");
    run.say("Trap-kinetics kernel: scalar vs hoisted vs SoA bank vs batched phases\n");

    let batch = phase_batch();
    let budget = 8_000_000;

    let mut table = Table::new(&[
        "traps",
        "scalar (ns/trap-step)",
        "hoisted (ns/trap-step)",
        "soa (ns/trap-step)",
        "batched (ns/trap-step)",
        "speedup",
    ]);
    let mut headline_speedup = 0.0;

    for (i, &size) in SIZES.iter().enumerate() {
        // One top-level span per size: the manifest's phase ledger gets
        // a `kernel_<size>` entry instead of the old empty `phases: []`.
        let phase = run.phase_named(format!("kernel_{size}"));
        let ensemble = ensemble_of(size, 2014 + i as u64);
        let traps: Vec<Trap> = ensemble.iter().collect();
        let count = traps.len();
        let trap_steps = count * batch.len();

        let mut scalar = traps.clone();
        let scalar_ns = time_per_batch(budget, trap_steps, || {
            for &(cond, dt) in &batch {
                for trap in &mut scalar {
                    trap.advance(cond, dt);
                }
            }
        });

        let mut hoisted = traps.clone();
        let hoisted_ns = time_per_batch(budget, trap_steps, || {
            for &(cond, dt) in &batch {
                let rates = PhaseRates::for_condition(cond);
                for trap in &mut hoisted {
                    trap.advance_with_rates(&rates, dt);
                }
            }
        });

        let mut soa = ensemble.clone();
        let soa_ns = time_per_batch(budget, trap_steps, || {
            for &(cond, dt) in &batch {
                soa.advance(cond, dt);
            }
        });

        let mut batched = ensemble.clone();
        let batched_ns = time_per_batch(budget, trap_steps, || {
            batched.advance_phases(&batch);
        });
        drop(phase);

        #[allow(clippy::cast_precision_loss)]
        let per_step = |total_ns: f64| total_ns / trap_steps as f64;
        let speedup = scalar_ns / batched_ns;
        if size == HEADLINE {
            headline_speedup = speedup;
        }
        table.row(&[
            &count.to_string(),
            &fmt(per_step(scalar_ns), 2),
            &fmt(per_step(hoisted_ns), 2),
            &fmt(per_step(soa_ns), 2),
            &fmt(per_step(batched_ns), 2),
            &format!("{speedup:.2}x"),
        ]);
        run.value(&format!("scalar_ns_per_trap_step_{size}"), per_step(scalar_ns));
        run.value(&format!("hoisted_ns_per_trap_step_{size}"), per_step(hoisted_ns));
        run.value(&format!("soa_ns_per_trap_step_{size}"), per_step(soa_ns));
        run.value(&format!("batched_ns_per_trap_step_{size}"), per_step(batched_ns));
        run.value(&format!("speedup_{size}"), speedup);
    }

    run.table(&table);
    run.say(format!(
        "\nheadline: {headline_speedup:.2}x at {HEADLINE} traps (scalar loop vs batched kernel).\n\
         The gap is the hoist (one rate evaluation per phase, not per trap), the bank's\n\
         flat chunked inner loop, and the batch traversal paying memory traffic once\n\
         per schedule instead of once per phase — which is what holds the per-trap\n\
         cost flat from 10k to 1M traps.",
    ));
    run.value("speedup_10k", headline_speedup);
    run.finish("sizes=1k,10k,100k,1M schedule=DC/rec/AC/rec dt=20min budget=8e6 trap-steps/variant");
}
