//! Fig. 5 — accelerated wearout at 100 °C and 110 °C over 24 h, measured
//! delay change with the fitted Eq. (10) model curves.
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig5`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{campaign, fmt, paper, sparkline, BenchRun, Table};
use selfheal_fpga::ChipId;

fn main() {
    let mut run = BenchRun::start("fig5");
    run.say("Fig. 5: Accelerated wearout at 110 degC and 100 degC for 1 day\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };

    let hot = outputs
        .stress_on("AS110DC24", ChipId::new(5))
        .expect("110 degC case ran");
    let warm = outputs.stress("AS100DC24").expect("100 degC case ran");
    let hot_fit = hot.fit.as_ref().expect("110 degC fit extracted");
    let warm_fit = warm.fit.as_ref().expect("100 degC fit extracted");

    let mut table = Table::new(&[
        "t (h)",
        "110C meas (ns)",
        "110C model (ns)",
        "100C meas (ns)",
        "100C model (ns)",
    ]);
    for (h, w) in hot.series.iter().zip(&warm.series).step_by(6) {
        table.row(&[
            &fmt(h.elapsed.to_hours().get(), 0),
            &fmt(h.delay_shift.get(), 3),
            &fmt(hot_fit.predict(h.elapsed).get(), 3),
            &fmt(w.delay_shift.get(), 3),
            &fmt(warm_fit.predict(w.elapsed).get(), 3),
        ]);
    }
    run.table(&table);

    let hot_curve: Vec<f64> = hot.series.iter().map(|p| p.delay_shift.get()).collect();
    run.say(format!("\n110 degC shape: {}", sparkline(&hot_curve)));

    run.say("\n--- paper vs measured ---");
    let mut cmp = Table::new(&["quantity", "paper", "measured"]);
    cmp.row(&[
        "24 h degradation @110 degC (%)",
        &format!("~{}", fmt(paper::DC110_DEGRADATION_PERCENT, 1)),
        &fmt(hot.total_degradation().get(), 2),
    ]);
    cmp.row(&[
        "24 h degradation @100 degC (%)",
        &format!("~{}", fmt(paper::DC100_DEGRADATION_PERCENT, 1)),
        &fmt(warm.total_degradation().get(), 2),
    ]);
    cmp.row(&[
        "model RMSE @110 degC (ns)",
        "(tracks measurement)",
        &fmt(hot_fit.rmse_ns, 3),
    ]);
    run.table(&cmp);
    run.say(
        "\npaper: \"initially, frequency degrades fast and then slower. High temperature\n\
         accelerates the degradation.\"",
    );

    run.value("dc110_degradation_pct", hot.total_degradation().get());
    run.value("dc100_degradation_pct", warm.total_degradation().get());
    run.value("model_rmse_110c_ns", hot_fit.rmse_ns);
    run.finish("campaign seed=2014 cases=AS110DC24@chip5,AS100DC24");
}
