//! Table 5 — the α = 4 ratio generalises: AR110N6 (24 h / 6 h) and
//! AR110N12 (48 h re-stress / 12 h) reach the same margin relaxation.
//!
//! Run with `cargo run -p selfheal-bench --release --bin table5`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{campaign, fmt, paper, BenchRun, Table};

fn main() {
    let mut run = BenchRun::start("table5");
    run.say("Table 5: Same ratio (alpha = 4), different stress conditions\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };

    let mut table = Table::new(&[
        "Case",
        "Cumulative stress (h)",
        "Sleep (h)",
        "alpha",
        "Inflicted (ns)",
        "Recovered (ns)",
        "Margin relaxed (%)",
    ]);
    for name in ["AR110N6", "AR110N12"] {
        let rec = outputs.recovery(name).expect("case ran");
        table.row(&[
            name,
            &fmt(rec.stress_duration.to_hours().get(), 0),
            &fmt(rec.case.duration.get(), 0),
            &fmt(paper::ALPHA, 0),
            &fmt(rec.assessment.inflicted.get(), 3),
            &fmt(rec.assessment.recovered.get(), 3),
            &fmt(rec.margin_relaxed().get(), 1),
        ]);
    }
    run.table(&table);

    let short = outputs.recovery("AR110N6").unwrap().margin_relaxed().get();
    let long = outputs.recovery("AR110N12").unwrap().margin_relaxed().get();
    run.say(format!(
        "\ndifference: {} percentage points (paper: \"in both cases, the same design\n\
         margin relaxed parameter can be achieved\")",
        fmt((short - long).abs(), 1)
    ));
    run.say(
        "\nNote the 48 h re-stress inflicts *less* fresh shift than the first 24 h did\n\
         (log-time wearout on an already-aged chip), yet the alpha = 4 sleep still\n\
         relaxes the same fraction of it — the ratio, not the absolute time, governs.",
    );

    run.value("ar110n6_margin_relaxed_pct", short);
    run.value("ar110n12_margin_relaxed_pct", long);
    run.value("margin_relaxed_gap_pp", (short - long).abs());
    run.finish("campaign seed=2014 alpha=4 cases=AR110N6,AR110N12");
}
