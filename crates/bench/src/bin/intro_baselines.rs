//! The §1 related-work comparison made executable: guardbanding, GNOMO
//! overdrive (refs [12, 13]) and the paper's accelerated self-healing on
//! an identical work-preserving schedule.
//!
//! Run with `cargo run -p selfheal-bench --release --bin intro_baselines`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal::mitigation::{compare_strategies, speedup_at};
use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::Environment;
use selfheal_units::{Celsius, Hours, Volts};

fn main() {
    let mut run = BenchRun::start("intro_baselines");
    run.say("SS1 baselines: same work per day, different mitigation strategies\n");

    let active = Environment::new(Volts::new(1.2), Celsius::new(90.0));
    let overdrive = Volts::new(1.32);
    run.say(format!(
        "workload: 18 h of nominal-speed work per 24 h period, 60 days;\n\
         GNOMO overdrive +10 % ({} -> {}), speedup {}x\n",
        active.supply(),
        overdrive,
        fmt(speedup_at(overdrive, active), 3)
    ));

    let outcomes = {
        let _phase = run.phase("strategy-race");
        compare_strategies(
            active,
            overdrive,
            Hours::new(18.0).into(),
            Hours::new(24.0).into(),
            60,
        )
    };

    let mut table = Table::new(&[
        "strategy",
        "final dVth (mV)",
        "peak dVth (mV)",
        "relative energy",
    ]);
    for o in &outcomes {
        table.row(&[
            &o.strategy,
            &fmt(o.final_shift.get(), 2),
            &fmt(o.peak_shift.get(), 2),
            &fmt(o.relative_energy, 2),
        ]);
    }
    run.table(&table);

    let baseline = &outcomes[0];
    let healing = &outcomes[2];
    run.say(format!(
        "\nself-healing ends at {} of the guardband baseline's shift at equal energy.\n\
         GNOMO pays {}x dynamic energy and, under the log-time TD aging of this\n\
         reproduction, its shorter stress time cannot pay for its higher stress\n\
         voltage (its published wins assume power-law aging).",
        fmt(healing.final_shift.get() / baseline.final_shift.get(), 2),
        fmt(outcomes[1].relative_energy, 2)
    ));
    run.say(
        "\npaper SS1: \"Most previous BTI mitigation techniques focus on reducing\n\
         BTI-induced degradation during operation ... however either performance or\n\
         power overheads are introduced.\" The proposal instead repairs during sleep.",
    );

    run.value("guardband_final_mv", baseline.final_shift.get());
    run.value("healing_final_mv", healing.final_shift.get());
    run.value(
        "healing_over_guardband",
        healing.final_shift.get() / baseline.final_shift.get(),
    );
    run.value("gnomo_relative_energy", outcomes[1].relative_energy);
    run.finish("work=18h/24h days=60 overdrive=+10pct active=1.2V/90C");
}
