//! Table 1 — the test-case matrix (input to every other artefact).
//!
//! Run with `cargo run -p selfheal-bench --release --bin table1`.

use selfheal_bench::{fmt, Table};
use selfheal_testbench::cases;

fn main() {
    println!("Table 1: Test cases for Accelerated Wearout and Self-Healing\n");
    let mut table = Table::new(&[
        "Phase", "Case", "Chip", "T (degC)", "V (V)", "Time (h)", "Activity", "Active/Sleep",
    ]);
    for case in cases::table1() {
        let (phase, activity, alpha) = match case.kind {
            cases::PhaseKind::Stress { activity } => ("Active (Stress)", activity.code(), "-"),
            cases::PhaseKind::Recovery { .. } => ("Sleep (Recovery)", "-", "4"),
        };
        table.row(&[
            phase,
            case.name,
            &case.chip.get().to_string(),
            &fmt(case.temperature.get(), 0),
            &fmt(case.supply.get(), 1),
            &fmt(case.duration.get(), 0),
            activity,
            alpha,
        ]);
    }
    table.print();
    println!("\nBaseline: all chips stressed at 20 degC / 1.2 V for 2 h initially (burn-in).");
}
