//! Table 1 — the test-case matrix (input to every other artefact).
//!
//! Run with `cargo run -p selfheal-bench --release --bin table1`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_testbench::cases;

fn main() {
    let mut run = BenchRun::start("table1");
    run.say("Table 1: Test cases for Accelerated Wearout and Self-Healing\n");
    let all = {
        let _phase = run.phase("case-matrix");
        cases::table1()
    };
    let mut table = Table::new(&[
        "Phase", "Case", "Chip", "T (degC)", "V (V)", "Time (h)", "Activity", "Active/Sleep",
    ]);
    let mut stress_count = 0usize;
    let mut recovery_count = 0usize;
    for case in &all {
        let (phase, activity, alpha) = match case.kind {
            cases::PhaseKind::Stress { activity } => {
                stress_count += 1;
                ("Active (Stress)", activity.code(), "-")
            }
            cases::PhaseKind::Recovery { .. } => {
                recovery_count += 1;
                ("Sleep (Recovery)", "-", "4")
            }
        };
        table.row(&[
            phase,
            case.name,
            &case.chip.get().to_string(),
            &fmt(case.temperature.get(), 0),
            &fmt(case.supply.get(), 1),
            &fmt(case.duration.get(), 0),
            activity,
            alpha,
        ]);
    }
    run.table(&table);
    run.say("\nBaseline: all chips stressed at 20 degC / 1.2 V for 2 h initially (burn-in).");

    run.value("cases_total", all.len() as f64);
    run.value("stress_cases", stress_count as f64);
    run.value("recovery_cases", recovery_count as f64);
    run.finish("cases=table1 alpha=4 burn_in=20C/1.2V/2h");
}
