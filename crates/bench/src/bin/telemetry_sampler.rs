//! Sampler-overhead microbenchmark: the Fig. 5 stress workload with the
//! time-series sampler off vs on.
//!
//! The sampler thread snapshots the metrics registry at its cadence
//! while the workload hammers the same registry from the hot loop; this
//! bench pins the cost of that contention. `off_ms` and `on_ms` feed
//! `bench_history/telemetry_sampler.jsonl` via `perf_ledger`, so
//! `perf_gate` catches the sampler ever becoming non-negligible:
//!
//! ```text
//! cargo run -q --release -p selfheal-bench --bin perf_ledger -- \
//!     --keys off_ms,on_ms --repeats 5 -- target/release/telemetry_sampler --json
//! ```

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::td::{Trap, TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_telemetry::{Sampler, SamplerConfig};
use selfheal_units::{Celsius, Millivolts, Minutes, Seconds, Volts};

/// Ensemble size: the kernel bench's headline size.
const TRAPS: usize = 10_000;
/// Phase steps advanced per timed pass.
const STEPS: usize = 200;
/// An aggressive cadence (25× the 250 ms default), so the measured
/// overhead upper-bounds ordinary configurations.
const SAMPLE_EVERY: Duration = Duration::from_millis(10);

/// Builds an ensemble of exactly `TRAPS` traps from the default 40 nm
/// distributions (same construction as the `trap_kernel` bench).
fn ensemble(seed: u64) -> TrapEnsemble {
    let params = TrapEnsembleParams::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = params.log10_tau_c_range;
    let (rlo, rhi) = params.log10_tau_ratio_range;
    let traps: Vec<Trap> = (0..TRAPS)
        .map(|_| {
            let log_tau_c = rng.gen_range(lo..hi);
            let ratio = rng.gen_range(rlo..rhi);
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            Trap::new(
                Seconds::new(10f64.powf(log_tau_c)),
                Seconds::new(10f64.powf(log_tau_c + ratio)),
                Millivolts::new(-params.delta_vth_mean_mv.get() * u.ln()),
                rng.gen_bool(params.permanent_fraction),
            )
        })
        .collect();
    TrapEnsemble::from_traps(traps)
}

/// One timed pass: `STEPS` DC-stress advances over the ensemble (the
/// Fig. 5 aging loop's shape), metrics firing per step. Returns wall ms.
fn timed_pass(seed: u64) -> f64 {
    let cond = DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)));
    let dt: Seconds = Minutes::new(20.0).into();
    let mut bank = ensemble(seed);
    let started = Instant::now();
    for _ in 0..STEPS {
        bank.advance(cond, dt);
    }
    started.elapsed().as_nanos() as f64 / 1e6
}

fn main() {
    let mut run = BenchRun::start("telemetry_sampler");
    run.say("Time-series sampler overhead: Fig. 5 stress loop, sampler off vs on\n");

    // Warm-up pass (untimed): faults, allocator, branch history.
    let _ = timed_pass(2014);

    let off_ms = timed_pass(2015);

    let sampler = Sampler::start(SamplerConfig {
        interval: Some(SAMPLE_EVERY),
        jsonl: None,
        status: None,
    });
    let on_ms = timed_pass(2016);
    if let Some(sampler) = sampler {
        sampler.stop();
    }

    let overhead_pct = 100.0 * (on_ms - off_ms) / off_ms;
    let mut table = Table::new(&["configuration", "wall (ms)"]);
    table.row(&["sampler off", &fmt(off_ms, 3)]);
    table.row(&[
        &format!("sampler on ({} ms cadence)", SAMPLE_EVERY.as_millis()),
        &fmt(on_ms, 3),
    ]);
    run.table(&table);
    run.say(format!(
        "\noverhead: {overhead_pct:+.2}% at a cadence 25x faster than the 250 ms default\n\
         (the sampler is read-only: it contends on the registry mutex, nothing else)",
    ));

    run.value("off_ms", off_ms);
    run.value("on_ms", on_ms);
    run.value("overhead_pct", overhead_pct);
    run.finish("traps=10000 steps=200 condition=DC/1.2V/110C dt=20min sample=10ms");
}
