//! Compares two run manifests (`target/manifests/*.json`) and reports
//! every difference that exceeds a tolerance — the regression gate for
//! benchmark trajectories.
//!
//! ```text
//! cargo run -p selfheal-bench --bin manifest_diff -- A.json B.json \
//!     [--tolerance 1e-9] [--ignore <path-prefix>]...
//! ```
//!
//! Numeric leaves (the `values` map, every metric, histogram buckets and
//! quantiles) compare within a combined absolute/relative tolerance:
//! `|a - b| <= tol * max(1, |a|, |b|)`. Strings and booleans compare
//! exactly. Volatile fields are skipped by default: `created_unix_s`,
//! `git_describe`, every phase's `wall_s`/`self_s`, the `self_time`
//! profile, the pool's steal statistics, and the sampled `timeseries`
//! summaries (phase *names and order* still compare — a run that gained
//! or lost a phase is a real change).
//! `--ignore <prefix>` skips additional dotted paths, e.g.
//! `--ignore metrics.runtime.pool` to drop the remaining
//! worker-count-dependent pool gauges when comparing across `--threads`
//! settings.
//!
//! Exit status: `0` when the manifests agree, `1` on any difference,
//! `2` on usage or I/O errors.

use std::collections::BTreeMap;
use std::process::ExitCode;

use selfheal_telemetry::json::{self, Json};

/// Fields that never compare: timestamps and working-tree revisions vary
/// between runs of identical configurations.
const DEFAULT_IGNORES: [&str; 2] = ["created_unix_s", "git_describe"];

#[derive(Debug, Clone, PartialEq)]
enum Leaf {
    Number(f64),
    Text(String),
    Flag(bool),
    Null,
}

impl std::fmt::Display for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Leaf::Number(n) => write!(f, "{n}"),
            Leaf::Text(s) => write!(f, "{s:?}"),
            Leaf::Flag(b) => write!(f, "{b}"),
            Leaf::Null => write!(f, "null"),
        }
    }
}

/// Flattens a JSON tree into dotted-path leaves (`metrics.bti.traps.p50`,
/// `phases.0.name`, …) so two manifests diff as flat key/value maps.
fn flatten(value: &Json, path: &str, out: &mut BTreeMap<String, Leaf>) {
    let join = |key: &str| {
        if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        }
    };
    match value {
        Json::Null => {
            out.insert(path.to_string(), Leaf::Null);
        }
        Json::Bool(b) => {
            out.insert(path.to_string(), Leaf::Flag(*b));
        }
        Json::Number(n) => {
            out.insert(path.to_string(), Leaf::Number(*n));
        }
        Json::String(s) => {
            out.insert(path.to_string(), Leaf::Text(s.clone()));
        }
        Json::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(item, &join(&i.to_string()), out);
            }
        }
        Json::Object(map) => {
            for (key, item) in map {
                flatten(item, &join(key), out);
            }
        }
    }
}

/// Whether a dotted path is excluded from comparison.
fn ignored(path: &str, extra: &[String]) -> bool {
    if DEFAULT_IGNORES.iter().any(|d| path == *d) {
        return true;
    }
    // Phase wall-clock is timing noise; names and order still compare.
    if path.starts_with("phases.") && (path.ends_with(".wall_s") || path.ends_with(".self_s")) {
        return true;
    }
    // The self-time profile is wall-clock through and through.
    if path == "self_time" || path.starts_with("self_time.") {
        return true;
    }
    // Steal counts are scheduling noise: how often a worker steals
    // depends on OS timing, not on what was computed.
    if path.starts_with("metrics.runtime.pool.steal") {
        return true;
    }
    // The sampled time-series summary (points/min/max/mean/last per
    // metric) depends on when the sampler ticked relative to the run —
    // wall-clock shaped, like self_time.
    if path == "timeseries" || path.starts_with("timeseries.") {
        return true;
    }
    extra
        .iter()
        .any(|prefix| path == prefix || path.starts_with(&format!("{prefix}.")))
}

/// Combined absolute/relative closeness test.
fn close(a: f64, b: f64, tol: f64) -> bool {
    if a == b || (a.is_nan() && b.is_nan()) {
        return true;
    }
    (a - b).abs() <= tol * 1.0_f64.max(a.abs()).max(b.abs())
}

struct Options {
    path_a: String,
    path_b: String,
    tolerance: f64,
    ignores: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut paths = Vec::new();
    let mut tolerance = 1e-9;
    let mut ignores = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let raw = args.next().ok_or("--tolerance expects a value")?;
                tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("bad tolerance {raw:?}"))?;
            }
            "--ignore" => {
                ignores.push(args.next().ok_or("--ignore expects a path prefix")?);
            }
            "--help" | "-h" => {
                return Err("usage: manifest_diff <a.json> <b.json> \
                            [--tolerance <rel>] [--ignore <path-prefix>]..."
                    .to_string())
            }
            other => paths.push(other.to_string()),
        }
    }
    let [path_a, path_b] = <[String; 2]>::try_from(paths)
        .map_err(|got| format!("expected exactly two manifest paths, got {}", got.len()))?;
    Ok(Options {
        path_a,
        path_b,
        tolerance,
        ignores,
    })
}

fn load(path: &str) -> Result<BTreeMap<String, Leaf>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
    let parsed = json::parse(&text).map_err(|err| format!("cannot parse {path}: {err}"))?;
    let mut leaves = BTreeMap::new();
    flatten(&parsed, "", &mut leaves);
    Ok(leaves)
}

fn run() -> Result<Vec<String>, String> {
    let options = parse_args()?;
    let a = load(&options.path_a)?;
    let b = load(&options.path_b)?;

    let mut differences = Vec::new();
    for (path, left) in &a {
        if ignored(path, &options.ignores) {
            continue;
        }
        match b.get(path) {
            None => differences.push(format!("- {path}: {left} (only in {})", options.path_a)),
            Some(right) => {
                let agree = match (left, right) {
                    (Leaf::Number(x), Leaf::Number(y)) => close(*x, *y, options.tolerance),
                    _ => left == right,
                };
                if !agree {
                    differences.push(format!("! {path}: {left} vs {right}"));
                }
            }
        }
    }
    for (path, right) in &b {
        if !ignored(path, &options.ignores) && !a.contains_key(path) {
            differences.push(format!("+ {path}: {right} (only in {})", options.path_b));
        }
    }
    Ok(differences)
}

fn main() -> ExitCode {
    match run() {
        Err(message) => {
            eprintln!("manifest_diff: {message}");
            ExitCode::from(2)
        }
        Ok(differences) if differences.is_empty() => {
            println!("manifests agree");
            ExitCode::SUCCESS
        }
        Ok(differences) => {
            println!("{} difference(s):", differences.len());
            for line in &differences {
                println!("  {line}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(text: &str) -> BTreeMap<String, Leaf> {
        let mut out = BTreeMap::new();
        flatten(&json::parse(text).expect("test value"), "", &mut out);
        out
    }

    #[test]
    fn flatten_produces_dotted_paths() {
        let map = leaves(r#"{"values": {"x": 1.5}, "phases": [{"name": "a"}]}"#);
        assert_eq!(map.get("values.x"), Some(&Leaf::Number(1.5)));
        assert_eq!(map.get("phases.0.name"), Some(&Leaf::Text("a".to_string())));
    }

    #[test]
    fn tolerance_is_relative_above_one() {
        assert!(close(100.0, 100.0 + 5e-8, 1e-9));
        assert!(!close(100.0, 100.5, 1e-9));
        assert!(close(0.0, 5e-10, 1e-9), "absolute floor near zero");
    }

    #[test]
    fn volatile_fields_are_ignored() {
        assert!(ignored("created_unix_s", &[]));
        assert!(ignored("git_describe", &[]));
        assert!(ignored("phases.3.wall_s", &[]));
        assert!(ignored("phases.3.self_s", &[]));
        assert!(ignored("self_time.0.self_ns", &[]));
        assert!(ignored("metrics.runtime.pool.steals_total", &[]));
        assert!(ignored("metrics.runtime.pool.steal_ratio.p50", &[]));
        assert!(ignored("timeseries", &[]));
        assert!(ignored("timeseries.runtime.pool.queue_depth.mean", &[]));
        assert!(ignored("timeseries.bti.td.expected_occupied.last", &[]));
        assert!(!ignored("metrics.runtime.pool.jobs", &[]));
        assert!(!ignored("phases.3.name", &[]));
        assert!(!ignored("values.sites", &[]));
        let extra = vec!["metrics.runtime.pool".to_string()];
        assert!(ignored("metrics.runtime.pool.jobs", &extra));
        assert!(!ignored("metrics.runtime.cache.hits", &extra));
    }
}
