//! Chip-to-chip variation study: re-run the whole Table 1 campaign across
//! independent chip populations and report the spread of every headline
//! metric — the §7 gap ("the effects of chip to chip variations on aging
//! are also ignored for now") filled in.
//!
//! Run with `cargo run -p selfheal-bench --release --bin variation_study`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal::study::VariationStudy;
use selfheal_bench::{fmt, paper, BenchRun, Table};

fn main() {
    let mut run = BenchRun::start("variation_study");
    let runs = 10;
    run.say(format!(
        "Variation study: {runs} independent five-chip populations (quick cadence)\n"
    ));

    // `run_with_manifest` captures the study's own manifest (per-phase
    // timings + headline numbers) in addition to the bench one.
    let (outcome, study_manifest) = {
        let _phase = run.phase("study");
        VariationStudy {
            runs,
            base_seed: 2014,
        }
        .run_with_manifest()
    };

    run.say("Margin relaxed (%) per recovery condition:\n");
    let mut table = Table::new(&["case", "mean", "std dev", "min", "max"]);
    for (name, stats) in &outcome.margin_relaxed {
        table.row(&[
            name,
            &fmt(stats.mean, 1),
            &fmt(stats.std_dev, 1),
            &fmt(stats.min, 1),
            &fmt(stats.max, 1),
        ]);
    }
    run.table(&table);

    run.say("\nStress metrics:\n");
    let mut stress = Table::new(&["metric", "mean", "std dev", "min", "max"]);
    let d = &outcome.dc110_degradation;
    stress.row(&[
        "24 h DC @110 degC degradation (%)",
        &fmt(d.mean, 2),
        &fmt(d.std_dev, 2),
        &fmt(d.min, 2),
        &fmt(d.max, 2),
    ]);
    let r = &outcome.ac_over_dc;
    stress.row(&[
        "AC/DC ratio",
        &fmt(r.mean, 2),
        &fmt(r.std_dev, 2),
        &fmt(r.min, 2),
        &fmt(r.max, 2),
    ]);
    run.table(&stress);

    let headline = outcome
        .margin_relaxed
        .iter()
        .find(|(n, _)| n == "AR110N6")
        .map(|(_, s)| s)
        .expect("headline case present");
    run.say(format!(
        "\nthe paper's single-population 72.4 % headline sits {} the simulated\n\
         chip-to-chip spread ({} +/- {}): within-2-sigma = {}.",
        if headline.contains_within_sigma(paper::AR110N6_MARGIN_RELAXED_PERCENT, 2.0) {
            "inside"
        } else {
            "outside"
        },
        fmt(headline.mean, 1),
        fmt(headline.std_dev, 1),
        headline.contains_within_sigma(paper::AR110N6_MARGIN_RELAXED_PERCENT, 2.0),
    ));

    if !run.is_json() {
        run.say(format!("\nstudy manifest:\n{}", study_manifest.render()));
    }

    run.value("runs", runs as f64);
    run.value("ar110n6_margin_relaxed_mean_pct", headline.mean);
    run.value("ar110n6_margin_relaxed_std_pct", headline.std_dev);
    run.value("dc110_degradation_mean_pct", d.mean);
    run.value("ac_over_dc_mean", r.mean);
    run.finish("runs=10 base_seed=2014 cadence=quick");
}
