//! Fig. 4 — AC vs DC stress: 24 h at 110 °C, frequency degradation over
//! time; AC lands at about half of DC.
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig4`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{campaign, fmt, paper, sparkline, BenchRun, Table};
use selfheal_fpga::ChipId;

fn main() {
    let mut run = BenchRun::start("fig4");
    run.say("Fig. 4: AC/DC stress test results (24 h @ 110 degC)\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };

    let ac = outputs.stress("AS110AC24").expect("AC case ran");
    let dc = outputs
        .stress_on("AS110DC24", ChipId::new(2))
        .expect("DC case ran");

    let mut table = Table::new(&["t (h)", "AC deg (%)", "DC deg (%)"]);
    // Print hourly rows (the campaign samples every 20 min).
    for (a, d) in ac.series.iter().zip(&dc.series).step_by(3) {
        table.row(&[
            &fmt(a.elapsed.to_hours().get(), 0),
            &fmt(a.frequency_degradation.get(), 3),
            &fmt(d.frequency_degradation.get(), 3),
        ]);
    }
    run.table(&table);

    let ac_curve: Vec<f64> = ac.series.iter().map(|p| p.frequency_degradation.get()).collect();
    let dc_curve: Vec<f64> = dc.series.iter().map(|p| p.frequency_degradation.get()).collect();
    run.say(format!("\nAC shape: {}", sparkline(&ac_curve)));
    run.say(format!("DC shape: {}", sparkline(&dc_curve)));

    let ratio = ac.total_degradation().get() / dc.total_degradation().get();
    let onset = dc
        .series
        .iter()
        .find(|p| p.elapsed.to_hours().get() >= 3.0)
        .map(|p| p.frequency_degradation.get())
        .unwrap_or(0.0)
        / dc.total_degradation().get();
    run.say("\n--- paper vs measured ---");
    let mut cmp = Table::new(&["quantity", "paper", "measured"]);
    cmp.row(&[
        "AC/DC final degradation ratio",
        &format!("~{}", fmt(paper::AC_OVER_DC_RATIO, 2)),
        &fmt(ratio, 2),
    ]);
    cmp.row(&["fast-then-slow onset (3 h / 24 h)", "> 0.4", &fmt(onset, 2)]);
    run.table(&cmp);
    run.say(
        "\npaper: \"AC stress can be viewed as a symmetric stress and recovery process\n\
         ... which is about half of that in the DC stress case.\"",
    );

    run.value("ac_over_dc_ratio", ratio);
    run.value("onset_fraction_3h", onset);
    run.value("ac_final_degradation_pct", ac.total_degradation().get());
    run.value("dc_final_degradation_pct", dc.total_degradation().get());
    run.finish("campaign seed=2014 cases=AS110AC24,AS110DC24@chip2");
}
