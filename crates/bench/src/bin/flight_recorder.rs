//! Flight-recorder overhead on the fleet request path.
//!
//! The recorder's contract is "always cheap enough to leave on", and
//! this bench pins that claim in the perf ledger. Two bit-identical
//! passes of a deterministic request mix run against two identically
//! seeded [`FleetDaemon`]s — recorder off, then recorder on — straight
//! through [`FleetDaemon::handle`] (no sockets, no threads, no epoch
//! clock), so the measured delta is the recording cost and nothing
//! else. A third measurement times the raw `flight::record` call.
//!
//! Ledger keys: `off_ms`, `on_ms`, `record_ns`, `overhead_percent`
//! (the satellite requirement is overhead < 1 % on the storm-shaped
//! workload).
//!
//! ```text
//! flight_recorder --chips 4096 --requests 10000 --json
//! ```

use std::process::ExitCode;
use std::time::Instant;

use rand::Rng;
use selfheal::RejuvenationTechnique;
use selfheal_bench::BenchRun;
use selfheal_fleet::{FleetConfig, FleetDaemon, Request};
use selfheal_runtime::{ResultCache, SeedSequence};
use selfheal_telemetry::flight;
use selfheal_units::{DutyCycle, Seconds};

/// Epochs of pre-aging so plans work on real occupancy.
const WARMUP_EPOCHS: u64 = 2;

struct Options {
    chips: usize,
    shards: usize,
    seed: u64,
    traps: f64,
    requests: u64,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            chips: 4_096,
            shards: 8,
            seed: 2014,
            traps: 8.0,
            requests: 10_000,
        }
    }
}

const USAGE: &str = "usage: flight_recorder [--chips N] [--shards N] [--seed N] [--traps MEAN]\n\
                     \x20                       [--requests N] [--json]";

fn parse_options() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or(format!("{flag} needs a value"));
        match arg.as_str() {
            "--chips" => opts.chips = parse(&value("--chips")?)?,
            "--shards" => opts.shards = parse(&value("--shards")?)?,
            "--seed" => opts.seed = parse(&value("--seed")?)?,
            "--traps" => opts.traps = parse(&value("--traps")?)?,
            "--requests" => opts.requests = parse(&value("--requests")?)?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            // BenchRun's common flags.
            "--json" | "--no-cache" => {}
            "--out" | "--trace" | "--folded" | "--status" | "--threads" => {
                let _ = args.next();
            }
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if opts.requests == 0 {
        return Err("--requests must be positive".to_string());
    }
    Ok(opts)
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("bad number {raw}"))
}

/// A fresh daemon for one measurement pass — both passes get
/// bit-identical fleets and face the bit-identical request stream.
fn build_daemon(opts: &Options) -> Result<FleetDaemon, String> {
    let mut config = FleetConfig::default();
    config.chips = opts.chips;
    config.shards = opts.shards.min(opts.chips.max(1));
    config.seed = opts.seed;
    config.trap_params.mean_trap_count = opts.traps;
    config.validate().map_err(|err| format!("config: {err}"))?;
    let mut daemon = FleetDaemon::new(config, ResultCache::disabled(), 0);
    for _ in 0..WARMUP_EPOCHS {
        daemon.advance_epoch();
    }
    Ok(daemon)
}

/// The storm's request mix, minus the sockets: plan 60 / predict 25 /
/// report 13 / stats 2 percent, seeded so every pass replays the same
/// stream.
fn drive(daemon: &mut FleetDaemon, chips: u64, requests: u64, seed: u64) -> f64 {
    let mut rng = SeedSequence::new(seed).rng(0);
    let started = Instant::now();
    for _ in 0..requests {
        let chip = rng.gen_range(0..chips);
        let roll: f64 = rng.gen_range(0.0..1.0);
        let request = if roll < 0.60 {
            Request::Plan {
                chip,
                technique: RejuvenationTechnique::Combined,
                period: None,
                horizon: None,
            }
        } else if roll < 0.85 {
            Request::Predict {
                chip,
                dt: Seconds::new(86_400.0),
            }
        } else if roll < 0.98 {
            Request::Report {
                chip,
                duty: DutyCycle::new(rng.gen_range(0.05..0.95)),
            }
        } else {
            Request::Stats
        };
        let kind = request.kind();
        drop(daemon.handle(&request));
        // Mirror the server's per-request flight record (a formatted
        // detail string, built only while the recorder is on).
        flight::record("request", kind, || format!("chip={chip}"));
    }
    started.elapsed().as_secs_f64() * 1e3
}

fn bench(opts: &Options) -> Result<(), String> {
    let mut run = BenchRun::start("flight_recorder");
    run.say("Flight recorder: request-path overhead, recorder off vs on\n");
    let chips = u64::try_from(opts.chips).map_err(|_| "too many chips".to_string())?;

    let off_ms = {
        let mut daemon = {
            let _phase = run.phase("build_off");
            build_daemon(opts)?
        };
        let _phase = run.phase("drive_off");
        flight::set_enabled(false);
        drive(&mut daemon, chips, opts.requests, opts.seed ^ 0xf11e)
    };
    let on_ms = {
        let mut daemon = {
            let _phase = run.phase("build_on");
            build_daemon(opts)?
        };
        let _phase = run.phase("drive_on");
        flight::set_enabled(true);
        drive(&mut daemon, chips, opts.requests, opts.seed ^ 0xf11e)
    };
    flight::set_enabled(true);

    // Raw record cost, amortized over a wraparound-heavy burst.
    let record_ns = {
        let _phase = run.phase("record_micro");
        let ring = flight::FlightRecorder::with_capacity(4_096);
        let rounds = 1_000_000u64;
        let started = Instant::now();
        for i in 0..rounds {
            ring.record("bench", "tick", format!("i={i}"));
        }
        #[allow(clippy::cast_precision_loss)]
        let per = started.elapsed().as_secs_f64() * 1e9 / rounds as f64;
        per
    };

    let overhead_percent = (on_ms - off_ms) / off_ms * 100.0;
    #[allow(clippy::cast_precision_loss)]
    let requests_f = opts.requests as f64;
    run.say(format!(
        "chips={chips} requests={}\n\
         recorder off: {off_ms:9.1} ms  ({:.2} µs/request)\n\
         recorder on:  {on_ms:9.1} ms  ({:.2} µs/request)\n\
         overhead:     {overhead_percent:+8.3} %\n\
         raw record:   {record_ns:9.1} ns/event",
        opts.requests,
        off_ms * 1e3 / requests_f,
        on_ms * 1e3 / requests_f,
    ));
    run.value("off_ms", off_ms);
    run.value("on_ms", on_ms);
    run.value("record_ns", record_ns);
    run.value("overhead_percent", overhead_percent);
    run.finish(&format!(
        "chips={} traps_mean={} shards={} seed={} requests={}",
        opts.chips, opts.traps, opts.shards, opts.seed, opts.requests
    ));
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("flight_recorder: {message}");
            return ExitCode::FAILURE;
        }
    };
    match bench(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("flight_recorder: {message}");
            ExitCode::FAILURE
        }
    }
}
