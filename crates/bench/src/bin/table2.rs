//! Table 2 — delay change (%) for the different temperature conditions.
//!
//! Run with `cargo run -p selfheal-bench --release --bin table2`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{campaign, fmt, BenchRun, Table};

fn main() {
    let mut run = BenchRun::start("table2");
    run.say("Table 2: Delay change (%) under different stress conditions (24 h)\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };

    let mut table = Table::new(&[
        "Case", "Chip", "T (degC)", "Activity", "Delay change (%)", "Freq. degradation (%)",
    ]);
    for stress in &outputs.stresses {
        let delay_change_percent =
            100.0 * stress.total_shift().get() / stress.start_delay.get();
        let activity = match stress.case.kind {
            selfheal_testbench::PhaseKind::Stress { activity } => activity.code(),
            selfheal_testbench::PhaseKind::Recovery { .. } => "-",
        };
        table.row(&[
            stress.case.name,
            &stress.case.chip.get().to_string(),
            &fmt(stress.case.temperature.get(), 0),
            activity,
            &fmt(delay_change_percent, 3),
            &fmt(stress.total_degradation().get(), 3),
        ]);
    }
    run.table(&table);

    run.say(
        "\npaper shape: 110 degC DC > 100 degC DC > 110 degC AC; the 48 h case adds only\n\
         a little over the 24 h case (log-time wearout).",
    );

    let degradation = |name: &str| {
        outputs
            .stress(name)
            .map(|s| s.total_degradation().get())
            .unwrap_or(f64::NAN)
    };
    run.value("dc110_degradation_pct", degradation("AS110DC24"));
    run.value("dc100_degradation_pct", degradation("AS100DC24"));
    run.value("ac110_degradation_pct", degradation("AS110AC24"));
    run.finish("campaign seed=2014 window=24h");
}
