//! `selfheal-top` — live terminal dashboard over a running bench.
//!
//! Tails the Prometheus text-exposition status file a `--status <path>`
//! bench run rewrites atomically at the sampling cadence, and renders
//! pool queue depth, steal ratio, cache hit rate, trap-kernel
//! throughput and the top self-time spans:
//!
//! ```text
//! # terminal 1
//! cargo run --release -p selfheal-bench --bin fig5 -- --threads 8 --status target/status.prom
//! # terminal 2
//! cargo run --release -p selfheal-bench --bin selfheal-top -- target/status.prom
//! ```
//!
//! Rates (traps/s, steals/s) are derived from deltas between successive
//! scrapes of the cumulative counters, divided by the sampler's own
//! embedded clock (`selfheal_sample_ts_ns`) — the dashboard needs no
//! wall clock of its own.
//!
//! Modes:
//!
//! * default — redraw at `--interval <dur>` (default 250ms) until killed;
//! * `--once` — render a single frame and exit;
//! * `--check` — parse and validate the file (the CI smoke uses this),
//!   printing a one-line summary; exit 1 on malformed exposition. With
//!   `--max-age <dur>` it also fails when the file's mtime is older
//!   than the bound — `selfheal_sample_ts_ns` is relative to the
//!   *writer's* process start, so a dead writer's file still parses;
//!   only the mtime against the checker's own clock proves liveness.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use selfheal_telemetry::timeseries::{parse_exposition, parse_interval, Exposition};

/// One scrape of the status file that the rate derivations compare.
#[derive(Debug, Clone, Default)]
struct Scrape {
    ts_ns: f64,
    traps: f64,
    advances: f64,
    steals: f64,
    executed: f64,
}

impl Scrape {
    fn from_exposition(exposition: &Exposition) -> Scrape {
        let v = |name: &str| exposition.value(name).unwrap_or(0.0);
        Scrape {
            ts_ns: v("selfheal_sample_ts_ns"),
            traps: v("selfheal_bti_td_kernel_traps_advanced"),
            advances: v("selfheal_bti_td_kernel_advance_calls"),
            steals: v("selfheal_runtime_pool_steals_total"),
            executed: v("selfheal_runtime_pool_jobs_executed_total"),
        }
    }
}

/// `Δcounter / Δt` between two scrapes, `None` until time advances.
fn rate(now: f64, before: f64, dt_s: f64) -> Option<f64> {
    (dt_s > 0.0).then(|| (now - before).max(0.0) / dt_s)
}

/// Bucket-derived quantile from exposition `_bucket{le=...}` samples
/// (reported as the covering bucket's upper bound).
fn exposition_quantile(exposition: &Exposition, family: &str, q: f64) -> Option<f64> {
    let buckets = exposition.samples_named(&format!("{family}_bucket"));
    let total = exposition.value(&format!("{family}_count"))?;
    if total <= 0.0 {
        return None;
    }
    let target = q * total;
    let mut best: Option<f64> = None;
    // Rendered in ascending le order; the first bucket whose cumulative
    // count covers the target rank wins.
    for sample in buckets {
        let le = sample
            .labels
            .iter()
            .find(|(k, _)| k == "le")
            .and_then(|(_, v)| v.parse::<f64>().ok())?;
        if sample.value >= target && best.is_none() && le.is_finite() {
            best = Some(le);
        }
    }
    best
}

/// True when the status file's last rewrite is older than `max_age`:
/// the writer is gone or wedged. The embedded heartbeat
/// (`selfheal_sample_ts_ns`) cannot prove liveness — it is relative to
/// the writer's own process start and a dead writer's final file keeps
/// parsing forever — so staleness comes from the file mtime against the
/// checker's clock. A future mtime is clock skew, not staleness.
fn is_stale(modified: SystemTime, now: SystemTime, max_age: Duration) -> bool {
    now.duration_since(modified)
        .is_ok_and(|age| age > max_age)
}

/// Renders one dashboard frame.
fn render_frame(path: &Path, exposition: &Exposition, previous: &Scrape, stale: bool) -> String {
    let now = Scrape::from_exposition(exposition);
    let dt_s = (now.ts_ns - previous.ts_ns) / 1e9;
    let mut out = String::new();
    let t_s = now.ts_ns / 1e9;
    out.push_str(&format!(
        "selfheal-top — {} — t={t_s:.2}s{}\n\n",
        path.display(),
        if stale { " (stale)" } else { "" },
    ));

    let value = |name: &str| exposition.value(name);
    let fmt_opt = |v: Option<f64>, unit: &str| match v {
        Some(v) if v.abs() >= 10_000.0 => format!("{v:.3e}{unit}"),
        Some(v) => format!("{v:.1}{unit}"),
        None => "-".to_string(),
    };

    // Pool: live queue depth probe + steal ratio derived from the
    // cumulative counters (recent = this scrape interval, run = overall).
    let depth = value("selfheal_runtime_pool_queue_depth");
    let run_ratio = (now.executed > 0.0).then(|| now.steals / now.executed);
    let recent_jobs = now.executed - previous.executed;
    let recent_ratio =
        (recent_jobs > 0.0).then(|| (now.steals - previous.steals).max(0.0) / recent_jobs);
    out.push_str(&format!(
        "pool    queue depth {}   steal ratio {} (run {})   jobs/s {}\n",
        fmt_opt(depth, ""),
        fmt_opt(recent_ratio.or(run_ratio), ""),
        fmt_opt(run_ratio, ""),
        fmt_opt(rate(now.executed, previous.executed, dt_s), ""),
    ));

    // Cache hit rate from the registry counters.
    let hits = value("selfheal_runtime_cache_hits").unwrap_or(0.0);
    let misses = value("selfheal_runtime_cache_misses").unwrap_or(0.0);
    if hits + misses > 0.0 {
        out.push_str(&format!(
            "cache   hit rate {:.1}%   ({hits:.0} hit(s) / {misses:.0} miss(es))\n",
            100.0 * hits / (hits + misses),
        ));
    }

    // Trap-kernel throughput from counter deltas.
    if now.traps > 0.0 || now.advances > 0.0 {
        out.push_str(&format!(
            "kernel  traps/s {}   advances/s {}   traps total {:.3e}\n",
            fmt_opt(rate(now.traps, previous.traps, dt_s), ""),
            fmt_opt(rate(now.advances, previous.advances, dt_s), ""),
            now.traps,
        ));
    }

    // Latency objectives published by the fleet's per-epoch SLO judge
    // (fleetd --slo): one row per selfheal_slo_*_ok gauge, with the
    // observed quantile, the target, and the error-budget burn rate.
    let mut slo_rows = String::new();
    for sample in &exposition.samples {
        let Some(base) = sample.name.strip_suffix("_ok") else {
            continue;
        };
        let Some(objective) = base.strip_prefix("selfheal_slo_") else {
            continue;
        };
        let verdict = if sample.value >= 1.0 { "ok" } else { "VIOLATED" };
        slo_rows.push_str(&format!(
            "  {:<16} observed {:>10} target {:>10} burn {:>6} {verdict}\n",
            objective.replace('_', " "),
            fmt_opt(value(&format!("{base}_us")), "us"),
            fmt_opt(value(&format!("{base}_target_us")), "us"),
            fmt_opt(value(&format!("{base}_burn")), "x"),
        ));
    }
    if !slo_rows.is_empty() {
        out.push_str("\nslo\n");
        out.push_str(&slo_rows);
    }

    // Per-shard epoch time as a heat line: fleet daemons publish
    // selfheal_fleet_shard_<i>_epoch_us for each timed epoch advance,
    // so a lopsided line means one shard is dragging the barrier.
    let mut shard_us: Vec<f64> = Vec::new();
    while let Some(v) = value(&format!("selfheal_fleet_shard_{}_epoch_us", shard_us.len())) {
        shard_us.push(v);
    }
    if !shard_us.is_empty() {
        const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let peak = shard_us
            .iter()
            .copied()
            .fold(0.0, selfheal_units::float::max_total);
        let heat: String = shard_us
            .iter()
            .map(|&v| {
                let level = if peak > 0.0 { v / peak * 7.0 } else { 0.0 };
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let index = level.round() as usize;
                BLOCKS[index.min(7)]
            })
            .collect();
        out.push_str(&format!(
            "\nshards  epoch us {heat}  peak {} over {} shard(s)\n",
            fmt_opt(Some(peak), "us"),
            shard_us.len(),
        ));
    }

    // Every exported histogram family: count + bucket-derived p50/p99.
    let histograms: Vec<&String> = exposition
        .types
        .iter()
        .filter(|(_, kind)| kind.as_str() == "histogram")
        .map(|(name, _)| name)
        .collect();
    if !histograms.is_empty() {
        out.push_str("\nhistograms\n");
        for family in histograms {
            let count = exposition.value(&format!("{family}_count")).unwrap_or(0.0);
            out.push_str(&format!(
                "  {family:<44} n={count:<8.0} p50≤{} p99≤{}\n",
                fmt_opt(exposition_quantile(exposition, family, 0.5), ""),
                fmt_opt(exposition_quantile(exposition, family, 0.99), ""),
            ));
        }
    }

    // Top self-time spans (the exposition carries the top five).
    let spans = exposition.samples_named("selfheal_span_self_seconds");
    if !spans.is_empty() {
        out.push_str("\ntop self-time spans\n");
        for sample in spans {
            let stack = sample
                .labels
                .iter()
                .find(|(k, _)| k == "stack")
                .map_or("?", |(_, v)| v.as_str());
            out.push_str(&format!("  {stack:<52} {:>10.3} s\n", sample.value));
        }
    }
    out
}

/// Reads and parses the status file.
fn scrape(path: &Path) -> Result<Exposition, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("cannot read {}: {err}", path.display()))?;
    parse_exposition(&text)
}

fn usage() -> ! {
    eprintln!(
        "usage: selfheal-top <status-file> [--interval <dur>] [--once] [--check]\n\
         \x20                              [--max-age <dur>]\n\
         \n\
         Tails the Prometheus status file written by any bench binary's\n\
         `--status <path>` flag and renders a live dashboard.\n\
         `--check` validates the exposition and exits (CI smoke);\n\
         with `--max-age <dur>` (e.g. 30s) it also fails when the file's\n\
         mtime is older than the bound — a stale file means the writer\n\
         is dead even though its last exposition still parses."
    );
    std::process::exit(2);
}

fn main() {
    let mut path: Option<PathBuf> = None;
    let mut interval = Duration::from_millis(250);
    let mut once = false;
    let mut check = false;
    let mut max_age: Option<Duration> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--check" => check = true,
            "--interval" => match args.next().as_deref().and_then(parse_interval) {
                Some(parsed) => interval = parsed,
                None => usage(),
            },
            "--max-age" => match args.next().as_deref().and_then(parse_interval) {
                Some(parsed) => max_age = Some(parsed),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => {
                path = Some(PathBuf::from(other));
            }
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };

    if check {
        if let Some(max_age) = max_age {
            match std::fs::metadata(&path).and_then(|meta| meta.modified()) {
                Ok(modified) => {
                    if is_stale(modified, SystemTime::now(), max_age) {
                        eprintln!(
                            "selfheal-top: {} is stale (mtime older than {max_age:?}; \
                             the writer looks dead)",
                            path.display(),
                        );
                        std::process::exit(1);
                    }
                }
                Err(err) => {
                    eprintln!("selfheal-top: cannot stat {}: {err}", path.display());
                    std::process::exit(1);
                }
            }
        }
        match scrape(&path) {
            Ok(exposition) => {
                let Some(ts) = exposition.value("selfheal_sample_ts_ns") else {
                    eprintln!(
                        "selfheal-top: {} parses but lacks selfheal_sample_ts_ns",
                        path.display(),
                    );
                    std::process::exit(1);
                };
                println!(
                    "selfheal-top: {} OK — {} sample(s), {} familie(s), ts={ts:.0}ns",
                    path.display(),
                    exposition.samples.len(),
                    exposition.types.len(),
                );
                return;
            }
            Err(err) => {
                eprintln!("selfheal-top: invalid exposition: {err}");
                std::process::exit(1);
            }
        }
    }

    let mut previous = Scrape::default();
    let mut last_ts = f64::NEG_INFINITY;
    loop {
        match scrape(&path) {
            Ok(exposition) => {
                let now = Scrape::from_exposition(&exposition);
                let stale = now.ts_ns <= last_ts;
                let frame = render_frame(&path, &exposition, &previous, stale);
                if once {
                    print!("{frame}");
                    return;
                }
                // Clear + home, then the frame: a flicker-free redraw.
                print!("\u{1b}[2J\u{1b}[H{frame}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                if !stale {
                    previous = now;
                    last_ts = previous.ts_ns;
                }
            }
            Err(err) => {
                if once {
                    eprintln!("selfheal-top: {err}");
                    std::process::exit(1);
                }
                print!("\u{1b}[2J\u{1b}[Hselfheal-top — waiting: {err}\n");
            }
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrape_reads_counters() {
        let text = "\
# TYPE selfheal_sample_ts_ns gauge
selfheal_sample_ts_ns 2000000000
# TYPE selfheal_bti_td_kernel_traps_advanced counter
selfheal_bti_td_kernel_traps_advanced 500000
# TYPE selfheal_runtime_pool_steals_total gauge
selfheal_runtime_pool_steals_total 5
# TYPE selfheal_runtime_pool_jobs_executed_total gauge
selfheal_runtime_pool_jobs_executed_total 50
";
        let exposition = parse_exposition(text).expect("valid");
        let s = Scrape::from_exposition(&exposition);
        assert_eq!(s.ts_ns, 2e9);
        assert_eq!(s.traps, 5e5);
        assert_eq!(s.steals, 5.0);
        assert_eq!(s.executed, 50.0);
    }

    #[test]
    fn rates_derive_from_deltas() {
        assert_eq!(rate(100.0, 40.0, 2.0), Some(30.0));
        assert_eq!(rate(100.0, 40.0, 0.0), None, "no time elapsed");
        assert_eq!(rate(40.0, 100.0, 2.0), Some(0.0), "reset clamps to zero");
    }

    #[test]
    fn frame_renders_sections() {
        let text = "\
selfheal_sample_ts_ns 3000000000
selfheal_runtime_pool_queue_depth 7
selfheal_runtime_cache_hits 30
selfheal_runtime_cache_misses 10
selfheal_bti_td_kernel_traps_advanced 1000
selfheal_span_self_seconds{stack=\"fig5;campaign\"} 1.25
";
        let exposition = parse_exposition(text).expect("valid");
        let previous = Scrape {
            ts_ns: 2e9,
            traps: 0.0,
            ..Scrape::default()
        };
        let frame = render_frame(Path::new("x.prom"), &exposition, &previous, false);
        assert!(frame.contains("queue depth 7"), "{frame}");
        assert!(frame.contains("hit rate 75.0%"), "{frame}");
        assert!(frame.contains("traps/s 1000"), "{frame}");
        assert!(frame.contains("fig5;campaign"), "{frame}");
    }

    #[test]
    fn frame_renders_slo_rows_and_shard_heat_line() {
        let text = "\
selfheal_sample_ts_ns 3000000000
selfheal_slo_plan_p99_target_us 500
selfheal_slo_plan_p99_us 9800
selfheal_slo_plan_p99_ok 0
selfheal_slo_plan_p99_burn 2
selfheal_slo_stats_p50_target_us 100
selfheal_slo_stats_p50_us 40
selfheal_slo_stats_p50_ok 1
selfheal_slo_stats_p50_burn 0.1
selfheal_fleet_shard_0_epoch_us 100
selfheal_fleet_shard_1_epoch_us 800
selfheal_fleet_shard_2_epoch_us 400
";
        let exposition = parse_exposition(text).expect("valid");
        let frame = render_frame(Path::new("x.prom"), &exposition, &Scrape::default(), false);
        assert!(frame.contains("plan p99"), "{frame}");
        assert!(frame.contains("VIOLATED"), "{frame}");
        assert!(frame.contains("stats p50"), "{frame}");
        assert!(frame.contains("2.0x"), "{frame}");
        // 100/800/400 of peak 800 → rounded ramp levels 1, 7, 4.
        assert!(frame.contains("▂█▅"), "{frame}");
        assert!(frame.contains("over 3 shard(s)"), "{frame}");
    }

    #[test]
    fn staleness_is_mtime_versus_now() {
        let now = SystemTime::UNIX_EPOCH + Duration::from_secs(1_000);
        let bound = Duration::from_secs(30);
        let written = |secs_ago: u64| now - Duration::from_secs(secs_ago);
        assert!(is_stale(written(31), now, bound));
        assert!(!is_stale(written(30), now, bound), "bound is inclusive");
        assert!(!is_stale(written(0), now, bound));
        // An mtime *after* now is clock skew, never staleness.
        assert!(!is_stale(now + Duration::from_secs(60), now, bound));
        // A zero bound fails anything but a same-instant write.
        assert!(is_stale(written(1), now, Duration::ZERO));
        assert!(!is_stale(written(0), now, Duration::ZERO));
    }

    #[test]
    fn exposition_quantiles_walk_cumulative_buckets() {
        let text = "\
# TYPE selfheal_x histogram
selfheal_x_bucket{le=\"1\"} 5
selfheal_x_bucket{le=\"2\"} 9
selfheal_x_bucket{le=\"+Inf\"} 10
selfheal_x_sum 12
selfheal_x_count 10
";
        let exposition = parse_exposition(text).expect("valid");
        assert_eq!(exposition_quantile(&exposition, "selfheal_x", 0.5), Some(1.0));
        assert_eq!(exposition_quantile(&exposition, "selfheal_x", 0.9), Some(2.0));
        // Rank lands past the last finite bucket: no finite bound.
        assert_eq!(exposition_quantile(&exposition, "selfheal_x", 1.0), None);
    }
}
