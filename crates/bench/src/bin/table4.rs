//! Table 4 — the design-margin-relaxed parameter per recovery condition,
//! plus the "within 90 % of original margin" headline check.
//!
//! Run with `cargo run -p selfheal-bench --release --bin table4`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal::MarginBudget;
use selfheal_bench::{campaign, fmt, paper, BenchRun, Table};

fn main() {
    let mut run = BenchRun::start("table4");
    run.say("Table 4: Design-margin-relaxed parameter per recovery condition\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };
    let budget = MarginBudget::typical();

    let mut table = Table::new(&[
        "Case",
        "T (degC)",
        "V (V)",
        "Inflicted (ns)",
        "Recovered (ns)",
        "Margin relaxed (%)",
        "Margin available (%)",
        "Within 90%?",
    ]);
    let mut all_within_90 = true;
    for rec in &outputs.recoveries {
        if rec.case.name == "AR110N12" {
            continue; // Table 5's row
        }
        let a = &rec.assessment;
        // Margin accounting against a 10 % guardband on a ~90 ns path.
        let fresh = selfheal_units::Nanoseconds::new(90.0);
        let current = fresh + a.remaining();
        let available = budget.available_fraction(fresh, current);
        let within = budget.within_90_percent(fresh, current);
        all_within_90 &= within || rec.case.name == "R20Z6";
        table.row(&[
            rec.case.name,
            &fmt(rec.case.temperature.get(), 0),
            &fmt(rec.case.supply.get(), 1),
            &fmt(a.inflicted.get(), 3),
            &fmt(a.recovered.get(), 3),
            &fmt(rec.margin_relaxed().get(), 1),
            &fmt(available.get() * 100.0, 1),
            if within { "yes" } else { "no" },
        ]);
    }
    run.table(&table);

    let headline = outputs
        .recovery("AR110N6")
        .expect("headline case ran")
        .margin_relaxed()
        .get();
    run.say("\n--- paper vs measured ---");
    let mut cmp = Table::new(&["quantity", "paper", "measured"]);
    cmp.row(&[
        "AR110N6 margin relaxed (%)",
        &fmt(paper::AR110N6_MARGIN_RELAXED_PERCENT, 1),
        &fmt(headline, 1),
    ]);
    run.table(&cmp);
    run.say(
        "\npaper: \"the design margin relaxed parameter is as high as 72.4 %, which means\n\
         we can bring the stressed chip back to 27.6 % of original design margin in only\n\
         1/4 of the stress time. In all accelerated cases, we can bring the stressed\n\
         chips back to within 90 % of their original margin.\"",
    );

    run.value("ar110n6_margin_relaxed_pct", headline);
    run.value("paper_margin_relaxed_pct", paper::AR110N6_MARGIN_RELAXED_PERCENT);
    run.value(
        "accelerated_cases_within_90pct",
        if all_within_90 { 1.0 } else { 0.0 },
    );
    run.finish("campaign seed=2014 fresh=90ns guardband=10pct");
}
