//! Appends a noise-aware entry to the perf ledger.
//!
//! Runs a benchmark command N times (or reads pre-captured manifest
//! files), collapses each headline value to its median and IQR, and
//! appends one JSONL record to `bench_history/<name>.jsonl` — the history
//! `perf_gate` compares future runs against.
//!
//! ```text
//! perf_ledger --repeats 5 -- target/release/trap_kernel --json
//! perf_ledger --manifest run1.json --manifest run2.json --manifest run3.json
//! perf_ledger --keys soa_ns_per_trap_10000 --repeats 3 -- target/release/trap_kernel --json
//! perf_ledger --prune [--keep 50]            # cap every history file
//! ```
//!
//! `--prune` caps every `bench_history/*.jsonl` at the `--keep`
//! most-recent entries *per config hash* — history stays bounded without
//! ever evicting a live config's baseline window.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use selfheal_bench::ledger;
use selfheal_telemetry::{git_describe, json};

struct Args {
    history: PathBuf,
    repeats: usize,
    keys: Option<Vec<String>>,
    manifests: Vec<PathBuf>,
    command: Vec<String>,
    prune: bool,
    keep: usize,
}

const USAGE: &str = "usage: perf_ledger [--history <dir>] [--repeats <n>] [--keys k1,k2] \
                     (--manifest <path>... | -- <benchmark command printing --json>)\n\
                     \x20      perf_ledger [--history <dir>] --prune [--keep <n>]";

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        history: PathBuf::from("bench_history"),
        repeats: 5,
        keys: None,
        manifests: Vec::new(),
        command: Vec::new(),
        prune: false,
        keep: 50,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--history" => {
                parsed.history = args.next().map(PathBuf::from).ok_or("--history needs a dir")?;
            }
            "--repeats" => {
                parsed.repeats = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--repeats needs a positive count")?;
            }
            "--keys" => {
                let list = args.next().ok_or("--keys needs a comma-separated list")?;
                parsed.keys = Some(list.split(',').map(str::to_string).collect());
            }
            "--manifest" => {
                parsed
                    .manifests
                    .push(args.next().map(PathBuf::from).ok_or("--manifest needs a path")?);
            }
            "--prune" => parsed.prune = true,
            "--keep" => {
                parsed.keep = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--keep needs a positive count")?;
            }
            "--" => {
                parsed.command = args.collect();
                break;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if parsed.prune {
        if !parsed.manifests.is_empty() || !parsed.command.is_empty() {
            return Err(format!("--prune takes no manifests or command\n{USAGE}"));
        }
    } else if parsed.manifests.is_empty() == parsed.command.is_empty() {
        return Err(format!(
            "pass either --manifest files or a benchmark command after --\n{USAGE}"
        ));
    }
    Ok(parsed)
}

/// Caps every `<history>/*.jsonl` at `keep` entries per config hash.
fn prune_all(history: &PathBuf, keep: usize) -> Result<(), String> {
    let entries = match std::fs::read_dir(history) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            println!("perf_ledger: {} does not exist, nothing to prune", history.display());
            return Ok(());
        }
        Err(err) => return Err(format!("{}: {err}", history.display())),
    };
    let mut names: Vec<String> = entries
        .filter_map(Result::ok)
        .filter_map(|e| {
            let path = e.path();
            (path.extension().is_some_and(|x| x == "jsonl"))
                .then(|| path.file_stem()?.to_str().map(ToString::to_string))
                .flatten()
        })
        .collect();
    names.sort();
    let mut total = 0usize;
    for name in &names {
        let dropped = ledger::prune(history, name, keep).map_err(|err| format!("{name}: {err}"))?;
        if dropped > 0 {
            println!("perf_ledger: pruned {dropped} entry(ies) from {name}.jsonl");
        }
        total += dropped;
    }
    println!(
        "perf_ledger: prune done — {total} entry(ies) dropped across {} file(s) (keep={keep} per config)",
        names.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.prune {
        return prune_all(&args.history, args.keep);
    }
    let manifests: Vec<json::Json> = if args.command.is_empty() {
        args.manifests
            .iter()
            .map(|path| {
                let text = std::fs::read_to_string(path)
                    .map_err(|err| format!("{}: {err}", path.display()))?;
                json::parse(&text).map_err(|err| format!("{}: {err}", path.display()))
            })
            .collect::<Result<_, _>>()?
    } else {
        eprintln!(
            "perf_ledger: running `{}` ×{}",
            args.command.join(" "),
            args.repeats
        );
        ledger::run_repeats(&args.command, args.repeats).map_err(|err| err.to_string())?
    };
    let (name, config_hash, mut samples) = ledger::collect_samples(&manifests)
        .ok_or("manifests disagree on name/config or are not bench manifests")?;
    if let Some(keys) = &args.keys {
        samples.retain(|key, _| keys.iter().any(|k| k == key));
        for key in keys {
            if !samples.contains_key(key) {
                return Err(format!("key {key} not found in the manifest values"));
            }
        }
    }
    if samples.is_empty() {
        return Err(format!("{name}: no numeric values to record"));
    }
    let created_unix_s = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let entry = ledger::LedgerEntry::from_samples(
        &name,
        &config_hash,
        git_describe(),
        created_unix_s,
        &samples,
    );
    ledger::append(&args.history, &entry).map_err(|err| err.to_string())?;
    let path = ledger::history_path(&args.history, &name);
    println!(
        "perf_ledger: appended {} (n={}, {} key(s)) to {}",
        name,
        entry.n,
        entry.keys.len(),
        path.display()
    );
    let entries: BTreeMap<String, ledger::KeyStats> = entry.keys;
    for (key, stats) in entries {
        println!("  {key}: median={:.6} iqr={:.6}", stats.median, stats.iqr);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("perf_ledger: {message}");
            ExitCode::FAILURE
        }
    }
}
