//! The perf regression gate: compares a current benchmark run against
//! the `bench_history/` ledger with an IQR-based tolerance.
//!
//! Exits non-zero when any gated key's current median exceeds the recent
//! same-config baseline by more than `max(iqr_mult × pooled IQR,
//! rel_floor × baseline)` — noise passes, real slowdowns do not.
//!
//! ```text
//! perf_gate --manifest target/manifests/trap_kernel.json
//! perf_gate --repeats 3 -- target/release/trap_kernel --json
//! perf_gate --smoke            # CI self-check: history parses, gate logic sane
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use selfheal_bench::ledger;
use selfheal_telemetry::json;

struct Args {
    history: PathBuf,
    repeats: usize,
    keys: Option<Vec<String>>,
    manifest: Option<PathBuf>,
    command: Vec<String>,
    config: ledger::GateConfig,
    smoke: bool,
}

const USAGE: &str = "usage: perf_gate [--history <dir>] [--window <n>] [--iqr-mult <x>] \
                     [--rel-floor <f>] [--keys k1,k2] [--repeats <n>] \
                     (--manifest <path> | -- <benchmark command printing --json> | --smoke)";

fn parse_args() -> Result<Args, String> {
    let mut parsed = Args {
        history: PathBuf::from("bench_history"),
        repeats: 1,
        keys: None,
        manifest: None,
        command: Vec::new(),
        config: ledger::GateConfig::default(),
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--history" => {
                parsed.history = args.next().map(PathBuf::from).ok_or("--history needs a dir")?;
            }
            "--window" => {
                parsed.config.window = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--window needs a positive count")?;
            }
            "--iqr-mult" => {
                parsed.config.iqr_mult = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .filter(|x: &f64| x.is_finite() && *x >= 0.0)
                    .ok_or("--iqr-mult needs a non-negative number")?;
            }
            "--rel-floor" => {
                parsed.config.rel_floor = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .filter(|x: &f64| x.is_finite() && *x >= 0.0)
                    .ok_or("--rel-floor needs a non-negative number")?;
            }
            "--repeats" => {
                parsed.repeats = args
                    .next()
                    .and_then(|raw| raw.parse().ok())
                    .filter(|n| *n > 0)
                    .ok_or("--repeats needs a positive count")?;
            }
            "--keys" => {
                let list = args.next().ok_or("--keys needs a comma-separated list")?;
                parsed.keys = Some(list.split(',').map(str::to_string).collect());
            }
            "--manifest" => {
                parsed.manifest = Some(args.next().map(PathBuf::from).ok_or("--manifest needs a path")?);
            }
            "--smoke" => parsed.smoke = true,
            "--" => {
                parsed.command = args.collect();
                break;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if !parsed.smoke && parsed.manifest.is_none() && parsed.command.is_empty() {
        return Err(format!("pass --manifest, a command after --, or --smoke\n{USAGE}"));
    }
    Ok(parsed)
}

/// `--smoke`: every committed history file must parse, and the gate's
/// discrimination must hold on synthetic data (a 2× slowdown regresses,
/// IQR-level noise does not). The cheap always-runnable CI hook.
fn smoke(history_dir: &PathBuf) -> Result<(), String> {
    let mut files = 0usize;
    if let Ok(read_dir) = std::fs::read_dir(history_dir) {
        for dir_entry in read_dir.flatten() {
            let path = dir_entry.path();
            if path.extension().is_none_or(|ext| ext != "jsonl") {
                continue;
            }
            let name = path
                .file_stem()
                .and_then(|stem| stem.to_str())
                .ok_or_else(|| format!("{}: non-UTF-8 file name", path.display()))?;
            let entries =
                ledger::load(history_dir, name).map_err(|err| format!("smoke: {err}"))?;
            println!(
                "perf_gate: smoke: {} — {} entr{} ok",
                path.display(),
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" }
            );
            files += 1;
        }
    }
    let mk = |median: f64, iqr: f64| ledger::LedgerEntry {
        name: "smoke".to_string(),
        created_unix_s: 0,
        git_describe: None,
        config_hash: "smoke".to_string(),
        n: 5,
        keys: [(
            "ms".to_string(),
            ledger::KeyStats { median, iqr },
        )]
        .into_iter()
        .collect(),
    };
    let history: Vec<ledger::LedgerEntry> =
        (0..5).map(|i| mk(100.0 + i as f64, 3.0)).collect();
    let config = ledger::GateConfig::default();
    let noisy = ledger::gate(&history, &mk(106.0, 3.0), &config);
    if noisy.iter().any(|v| v.regressed) {
        return Err("smoke: IQR-level noise must pass the gate".to_string());
    }
    let doubled = ledger::gate(&history, &mk(204.0, 3.0), &config);
    if !doubled.iter().all(|v| v.regressed) {
        return Err("smoke: a synthetic 2× slowdown must fail the gate".to_string());
    }
    println!("perf_gate: smoke ok ({files} history file(s), gate logic verified)");
    Ok(())
}

/// True when the gate passed (no regressions).
fn run_gate(args: &Args) -> Result<bool, String> {
    let manifests: Vec<json::Json> = if let Some(path) = &args.manifest {
        let text = std::fs::read_to_string(path)
            .map_err(|err| format!("{}: {err}", path.display()))?;
        vec![json::parse(&text).map_err(|err| format!("{}: {err}", path.display()))?]
    } else {
        eprintln!(
            "perf_gate: running `{}` ×{}",
            args.command.join(" "),
            args.repeats
        );
        ledger::run_repeats(&args.command, args.repeats).map_err(|err| err.to_string())?
    };
    let (name, config_hash, mut samples) = ledger::collect_samples(&manifests)
        .ok_or("manifests disagree on name/config or are not bench manifests")?;
    if let Some(keys) = &args.keys {
        samples.retain(|key, _| keys.iter().any(|k| k == key));
    }
    if samples.is_empty() {
        return Err(format!("{name}: no numeric values to gate"));
    }
    let current = ledger::LedgerEntry::from_samples(&name, &config_hash, None, 0, &samples);
    let history = ledger::load(&args.history, &name).map_err(|err| err.to_string())?;
    let verdicts = ledger::gate(&history, &current, &args.config);
    let mut regressed = false;
    for verdict in &verdicts {
        match verdict.baseline {
            None => println!(
                "perf_gate: {name}.{}: {:.6} — no same-config baseline, pass",
                verdict.key, verdict.current
            ),
            Some(baseline) => {
                let status = if verdict.regressed { "REGRESSED" } else { "ok" };
                println!(
                    "perf_gate: {name}.{}: {:.6} vs baseline {:.6} (+{:.6} allowed) — {status}",
                    verdict.key, verdict.current, baseline, verdict.tolerance
                );
                regressed |= verdict.regressed;
            }
        }
    }
    Ok(!regressed)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("perf_gate: {message}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return match smoke(&args.history) {
            Ok(()) => ExitCode::SUCCESS,
            Err(message) => {
                eprintln!("perf_gate: {message}");
                ExitCode::FAILURE
            }
        };
    }
    match run_gate(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("perf_gate: performance regression detected");
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("perf_gate: {message}");
            ExitCode::FAILURE
        }
    }
}
