//! Ablation: sweep the active-vs-sleep ratio α (§5.2.3).
//!
//! The paper demonstrates α = 4 (and argues the ratio, not the absolute
//! time, governs the margin relaxation); this sweep shows what other
//! ratios would have bought, on both the single stress/heal cycle of the
//! chamber experiments and the year-long steady state.
//!
//! Run with `cargo run -p selfheal-bench --release --bin ablation_alpha`.

use rand::SeedableRng;
use selfheal::metrics::RecoveryAssessment;
use selfheal::{RejuvenationTechnique, SchedulePlanner};
use selfheal_bench::{fmt, Table};
use selfheal_bti::Environment;
use selfheal_fpga::{Chip, ChipId, RoMode};
use selfheal_units::{Celsius, Hours, Millivolts, Ratio, Seconds, Volts};

fn main() {
    println!("Ablation: the active-vs-sleep ratio alpha\n");

    // Part 1 — single chamber cycle: 24 h stress, then 24/alpha hours of
    // combined-technique sleep on the same chip population.
    println!("Single cycle (24 h DC stress @110 degC, sleep = 24 h / alpha):\n");
    let stress_env = Environment::new(Volts::new(1.2), Celsius::new(110.0));
    let heal_env = RejuvenationTechnique::Combined.environment();

    let mut single = Table::new(&["alpha", "sleep (h)", "margin relaxed (%)"]);
    for alpha in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
        let fresh = chip.measure(&mut rng).cut_delay;
        chip.advance(RoMode::Static, stress_env, Hours::new(24.0).into());
        let aged = chip.measure(&mut rng).cut_delay;
        chip.advance(RoMode::Sleep, heal_env, Hours::new(24.0 / alpha).into());
        let healed = chip.measure(&mut rng).cut_delay;
        let assessment = RecoveryAssessment::new(fresh, aged, healed);
        single.row(&[
            &fmt(alpha, 0),
            &fmt(24.0 / alpha, 1),
            &fmt(assessment.margin_relaxed().get(), 1),
        ]);
    }
    single.print();

    // Part 2 — steady state: year-long peak shift under a daily rhythm.
    println!("\nYear-long steady state (24 h period, 90 degC operation):\n");
    let planner = SchedulePlanner::with_default_models(
        Environment::new(Volts::new(1.2), Celsius::new(90.0)),
        Millivolts::new(1e9), // margin irrelevant here; we only use predicted_peak
    );
    let year = Seconds::new(365.0 * 86_400.0);
    let period: Seconds = Hours::new(24.0).into();

    let mut steady = Table::new(&["alpha", "availability (%)", "peak dVth (mV)"]);
    for alpha in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let ratio = Ratio::new(alpha).expect("positive");
        let peak = planner.predicted_peak(ratio, RejuvenationTechnique::Combined, period, year);
        steady.row(&[
            &fmt(alpha, 1),
            &fmt(ratio.active_fraction().get() * 100.0, 1),
            &fmt(peak.get(), 2),
        ]);
    }
    steady.row(&[
        "(none)",
        "100.0",
        &fmt(planner.unhealed_peak(year).get(), 2),
    ]);
    steady.print();

    println!(
        "\nreading: the single-cycle margin relaxation falls gently with alpha (log-slow\n\
         recovery), while the steady-state peak shows the big jump is from *any*\n\
         scheduled deep rejuvenation versus none — the paper's alpha = 4 sits at the\n\
         knee, trading 20 % availability for most of the achievable relaxation."
    );
}
