//! Ablation: sweep the active-vs-sleep ratio α (§5.2.3).
//!
//! The paper demonstrates α = 4 (and argues the ratio, not the absolute
//! time, governs the margin relaxation); this sweep shows what other
//! ratios would have bought, on both the single stress/heal cycle of the
//! chamber experiments and the year-long steady state.
//!
//! Run with `cargo run -p selfheal-bench --release --bin ablation_alpha`.
//! Pass `--json` for the run manifest instead of the human report.

use rand::SeedableRng;
use selfheal::metrics::RecoveryAssessment;
use selfheal::{RejuvenationTechnique, SchedulePlanner};
use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_bti::Environment;
use selfheal_fpga::{Chip, ChipId, RoMode};
use selfheal_units::{Celsius, Hours, Millivolts, Ratio, Seconds, Volts};

fn main() {
    let mut run = BenchRun::start("ablation_alpha");
    run.say("Ablation: the active-vs-sleep ratio alpha\n");

    // Part 1 — single chamber cycle: 24 h stress, then 24/alpha hours of
    // combined-technique sleep on the same chip population.
    run.say("Single cycle (24 h DC stress @110 degC, sleep = 24 h / alpha):\n");
    let stress_env = Environment::new(Volts::new(1.2), Celsius::new(110.0));
    let heal_env = RejuvenationTechnique::Combined.environment();

    let mut single = Table::new(&["alpha", "sleep (h)", "margin relaxed (%)"]);
    let mut relaxed_at_4 = f64::NAN;
    {
        let _phase = run.phase("single-cycle-sweep");
        for alpha in [1.0, 2.0, 4.0, 8.0, 16.0] {
            let mut rng = rand::rngs::StdRng::seed_from_u64(99);
            let mut chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
            let fresh = chip.measure(&mut rng).cut_delay;
            chip.advance(RoMode::Static, stress_env, Hours::new(24.0).into());
            let aged = chip.measure(&mut rng).cut_delay;
            chip.advance(RoMode::Sleep, heal_env, Hours::new(24.0 / alpha).into());
            let healed = chip.measure(&mut rng).cut_delay;
            let assessment = RecoveryAssessment::new(fresh, aged, healed);
            if alpha == 4.0 {
                relaxed_at_4 = assessment.margin_relaxed().get();
            }
            single.row(&[
                &fmt(alpha, 0),
                &fmt(24.0 / alpha, 1),
                &fmt(assessment.margin_relaxed().get(), 1),
            ]);
        }
    }
    run.table(&single);

    // Part 2 — steady state: year-long peak shift under a daily rhythm.
    run.say("\nYear-long steady state (24 h period, 90 degC operation):\n");
    let planner = SchedulePlanner::with_default_models(
        Environment::new(Volts::new(1.2), Celsius::new(90.0)),
        Millivolts::new(1e9), // margin irrelevant here; we only use predicted_peak
    );
    let year = Seconds::new(365.0 * 86_400.0);
    let period: Seconds = Hours::new(24.0).into();

    let mut steady = Table::new(&["alpha", "availability (%)", "peak dVth (mV)"]);
    let mut peak_at_4 = f64::NAN;
    let unhealed_peak;
    {
        let _phase = run.phase("steady-state-sweep");
        for alpha in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
            let ratio = Ratio::new(alpha).expect("positive");
            let peak = planner.predicted_peak(ratio, RejuvenationTechnique::Combined, period, year);
            if alpha == 4.0 {
                peak_at_4 = peak.get();
            }
            steady.row(&[
                &fmt(alpha, 1),
                &fmt(ratio.active_fraction().get() * 100.0, 1),
                &fmt(peak.get(), 2),
            ]);
        }
        unhealed_peak = planner.unhealed_peak(year).get();
    }
    steady.row(&["(none)", "100.0", &fmt(unhealed_peak, 2)]);
    run.table(&steady);

    run.say(
        "\nreading: the single-cycle margin relaxation falls gently with alpha (log-slow\n\
         recovery), while the steady-state peak shows the big jump is from *any*\n\
         scheduled deep rejuvenation versus none — the paper's alpha = 4 sits at the\n\
         knee, trading 20 % availability for most of the achievable relaxation.",
    );

    run.value("margin_relaxed_at_alpha4_pct", relaxed_at_4);
    run.value("steady_peak_at_alpha4_mv", peak_at_4);
    run.value("unhealed_peak_mv", unhealed_peak);
    run.finish("alphas=1..16 stress=1.2V/110C technique=Combined year=365d");
}
