//! Pool-scaling microbenchmark: the same deterministic workload run
//! inline-serial and through the global work-stealing pool.
//!
//! Produces the `runtime_scaling` manifest the perf ledger tracks
//! (`serial_ms`, `par_ms`, `speedup`): a regression in either wall-clock
//! key means the pool's dispatch overhead or the workload kernel itself
//! got slower. `--threads <n>` sizes the pool as usual; the workload is
//! bit-for-bit identical at any worker count, so only timing varies.

use std::time::Instant;

use selfheal_bench::BenchRun;
use selfheal_runtime as runtime;

/// Items per batch — enough chunks that every worker steals.
const ITEMS: u64 = 2_048;
/// Mixing rounds per item (arithmetic-bound, allocation-free).
const ROUNDS: u64 = 20_000;

/// A SplitMix64-style mixing loop: cheap, deterministic, unoptimizable
/// to a closed form.
fn mix(seed: u64) -> u64 {
    let mut x = seed;
    for _ in 0..ROUNDS {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= z ^ (z >> 31);
    }
    x
}

/// One timed pass over all items; returns (wall ms, checksum).
fn timed(pool: &runtime::Pool) -> (f64, u64) {
    let items: Vec<u64> = (0..ITEMS).collect();
    let started = Instant::now();
    let mixed = pool.par_map(items, mix);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let checksum = mixed.into_iter().fold(0u64, u64::wrapping_add);
    (wall_ms, checksum)
}

fn main() {
    let mut run = BenchRun::start("runtime_scaling");
    run.say("Pool scaling: inline-serial vs the global work-stealing pool\n");

    let pool = runtime::global_pool();
    let workers = pool.workers();
    let serial = runtime::Pool::serial();

    // Warm up both paths (page in, spin up workers) before the clock.
    let (_, warm_serial) = timed(&serial);
    let (_, warm_par) = timed(&pool);
    assert_eq!(
        warm_serial, warm_par,
        "determinism contract: pool output must match serial"
    );

    let serial_ms = {
        let _phase = run.phase("serial");
        timed(&serial).0
    };
    let par_ms = {
        let _phase = run.phase("parallel");
        timed(&pool).0
    };
    let speedup = serial_ms / par_ms;

    run.say(format!(
        "items={ITEMS} rounds={ROUNDS} workers={workers}\n\
         serial:   {serial_ms:8.3} ms\n\
         parallel: {par_ms:8.3} ms  ({speedup:.2}x, {} steal(s) lifetime)",
        pool.steal_count(),
    ));
    run.value("serial_ms", serial_ms);
    run.value("par_ms", par_ms);
    run.value("speedup", speedup);
    run.finish(&format!("items={ITEMS} rounds={ROUNDS} workers={workers}"));
}
