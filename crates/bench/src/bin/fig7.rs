//! Fig. 7 — the same four recovery runs sliced the other way: recovery
//! under (a) 0 V and (b) −0.3 V, comparing 20 °C against 110 °C.
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig7`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{campaign, fmt, BenchRun, Table};

fn main() {
    let mut run = BenchRun::start("fig7");
    run.say("Fig. 7: Recovery under (a) 0 V and (b) -0.3 V, 20 degC vs 110 degC\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };

    for (panel, cold_case, hot_case) in [
        ("(a) 0 V", "R20Z6", "AR110Z6"),
        ("(b) -0.3 V", "AR20N6", "AR110N6"),
    ] {
        let cold = outputs.recovery(cold_case).expect("case ran");
        let hot = outputs.recovery(hot_case).expect("case ran");

        run.say(format!("{panel}:"));
        let mut table = Table::new(&[
            "t2 (h)",
            &format!("{cold_case} RD (ns)"),
            &format!("{hot_case} RD (ns)"),
        ]);
        for (c, h) in cold.series.iter().zip(&hot.series).step_by(2) {
            table.row(&[
                &fmt(c.elapsed.to_hours().get(), 1),
                &fmt(c.recovered_delay.get(), 3),
                &fmt(h.recovered_delay.get(), 3),
            ]);
        }
        run.table(&table);
        run.say("");
    }

    let rd = |name: &str| {
        outputs
            .recovery(name)
            .and_then(|r| r.series.last())
            .map(|p| p.recovered_delay.get())
            .unwrap_or(0.0)
    };
    run.say("--- shape checks (paper) ---");
    let mut cmp = Table::new(&["claim", "holds?", "values"]);
    cmp.row(&[
        "heat accelerates recovery at 0 V",
        if rd("AR110Z6") > rd("R20Z6") { "yes" } else { "NO" },
        &format!("{} vs {}", fmt(rd("AR110Z6"), 2), fmt(rd("R20Z6"), 2)),
    ]);
    cmp.row(&[
        "heat accelerates recovery at -0.3 V",
        if rd("AR110N6") > rd("AR20N6") { "yes" } else { "NO" },
        &format!("{} vs {}", fmt(rd("AR110N6"), 2), fmt(rd("AR20N6"), 2)),
    ]);
    run.table(&cmp);
    run.say(
        "\npaper: \"High temperature not only accelerates wearout, but also accelerates\n\
         recovery ... in both cases, high temperature accelerates recovery.\"",
    );

    run.value("recovered_delay_ar110z6_ns", rd("AR110Z6"));
    run.value("recovered_delay_r20z6_ns", rd("R20Z6"));
    run.value("recovered_delay_ar110n6_ns", rd("AR110N6"));
    run.value("recovered_delay_ar20n6_ns", rd("AR20N6"));
    run.finish("campaign seed=2014 cases=R20Z6,AR110Z6,AR20N6,AR110N6");
}
