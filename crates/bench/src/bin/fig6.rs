//! Fig. 6 — recovered delay over 6 h of sleep at (a) 20 °C and
//! (b) 110 °C, comparing 0 V gating against the −0.3 V reverse bias, with
//! model curves.
//!
//! Run with `cargo run -p selfheal-bench --release --bin fig6`.
//! Pass `--json` for the run manifest instead of the human report.

use selfheal_bench::{campaign, fmt, sparkline, BenchRun, Table};

fn main() {
    let mut run = BenchRun::start("fig6");
    run.say("Fig. 6: Recovery at (a) 20 degC and (b) 110 degC, 0 V vs -0.3 V\n");
    let outputs = {
        let _phase = run.phase("campaign");
        campaign()
    };

    for (panel, zero_case, neg_case) in [
        ("(a) 20 degC", "R20Z6", "AR20N6"),
        ("(b) 110 degC", "AR110Z6", "AR110N6"),
    ] {
        let zero = outputs.recovery(zero_case).expect("case ran");
        let neg = outputs.recovery(neg_case).expect("case ran");
        let zero_fit = zero.fit.as_ref().expect("fit");
        let neg_fit = neg.fit.as_ref().expect("fit");

        run.say(format!("{panel}:"));
        let mut table = Table::new(&[
            "t2 (h)",
            &format!("{zero_case} RD (ns)"),
            "model (ns)",
            &format!("{neg_case} RD (ns)"),
            "model (ns)",
        ]);
        for (z, n) in zero.series.iter().zip(&neg.series).step_by(2) {
            table.row(&[
                &fmt(z.elapsed.to_hours().get(), 1),
                &fmt(z.recovered_delay.get(), 3),
                &fmt(zero_fit.predict(z.elapsed).get(), 3),
                &fmt(n.recovered_delay.get(), 3),
                &fmt(neg_fit.predict(n.elapsed).get(), 3),
            ]);
        }
        run.table(&table);
        let neg_curve: Vec<f64> = neg.series.iter().map(|p| p.recovered_delay.get()).collect();
        run.say(format!("{neg_case} shape: {}\n", sparkline(&neg_curve)));
    }

    run.say("--- shape checks (paper) ---");
    let rd = |name: &str| {
        outputs
            .recovery(name)
            .and_then(|r| r.series.last())
            .map(|p| p.recovered_delay.get())
            .unwrap_or(0.0)
    };
    let mut cmp = Table::new(&["claim", "holds?", "values"]);
    cmp.row(&[
        "-0.3 V beats 0 V at 20 degC",
        if rd("AR20N6") > rd("R20Z6") { "yes" } else { "NO" },
        &format!("{} vs {}", fmt(rd("AR20N6"), 2), fmt(rd("R20Z6"), 2)),
    ]);
    cmp.row(&[
        "-0.3 V beats 0 V at 110 degC",
        if rd("AR110N6") > rd("AR110Z6") { "yes" } else { "NO" },
        &format!("{} vs {}", fmt(rd("AR110N6"), 2), fmt(rd("AR110Z6"), 2)),
    ]);
    run.table(&cmp);
    run.say(
        "\npaper: \"stressed chips rejuvenate faster with a negative supply voltage for\n\
         both temperatures ... the recovery is significantly accelerated even at room\n\
         temperature.\"",
    );

    run.value("recovered_delay_ar20n6_ns", rd("AR20N6"));
    run.value("recovered_delay_r20z6_ns", rd("R20Z6"));
    run.value("recovered_delay_ar110n6_ns", rd("AR110N6"));
    run.value("recovered_delay_ar110z6_ns", rd("AR110Z6"));
    run.finish("campaign seed=2014 cases=R20Z6,AR20N6,AR110Z6,AR110N6");
}
