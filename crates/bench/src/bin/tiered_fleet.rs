//! Fleet-scale macrobenchmark: full-resolution vs tiered epoch advance.
//!
//! Builds the same fleet twice — once untiered (every chip's trap slice
//! advanced every epoch) and once with the tiered analytic/trap
//! integrator — and times steady-state epoch advances at 100k and 1M
//! chips. After a short warm-up, most chips in the tiered fleet sit in
//! the cold tier, where an epoch costs one integer wake-check instead
//! of a trap-bank traversal; the ledger tracks the wall milliseconds
//! per epoch for both variants.
//!
//! Accuracy is *not* traded for this speed inside the benchmark's
//! margin: `tests/tiered_accuracy.rs` pins the tiered fleet within the
//! guard band of the full-resolution one, and the resume suite pins its
//! determinism. This bin only measures the wall-clock gap.
//!
//! ```text
//! cargo run -p selfheal-bench --release --bin tiered_fleet -- --json
//! ```

use std::time::Instant;

use selfheal_bench::{fmt, BenchRun, Table};
use selfheal_fleet::{FleetConfig, FleetState};

/// Fleet sizes swept, in chips.
const SIZES: [usize; 2] = [100_000, 1_000_000];
/// Epochs run before the clock starts. Demotion itself converges within
/// the first dozen epochs, but early cold windows are short (demotion
/// rates are still high), so wake-rehydration traffic keeps falling for
/// a few dozen more as each re-demotion earns a longer window. Forty
/// epochs lands the timed window in that steady state.
const WARMUP_EPOCHS: u64 = 40;
/// Epochs averaged for the quoted per-epoch time.
const TIMED_EPOCHS: u64 = 8;

fn fleet_config(chips: usize, tiered: bool) -> FleetConfig {
    let mut config = FleetConfig::default();
    config.chips = chips;
    // Enough shards that every pool worker stays busy at either size.
    config.shards = 64;
    config.seed = 2014;
    config.trap_params.mean_trap_count = 8.0;
    config.tiered = tiered;
    config
}

/// Steady-state epoch cost: warm up, then average the timed window.
fn ms_per_epoch(state: &mut FleetState) -> f64 {
    for _ in 0..WARMUP_EPOCHS {
        state.advance_epoch();
    }
    let started = Instant::now();
    for _ in 0..TIMED_EPOCHS {
        state.advance_epoch();
    }
    #[allow(clippy::cast_precision_loss)]
    let per_epoch = started.elapsed().as_secs_f64() * 1e3 / TIMED_EPOCHS as f64;
    per_epoch
}

fn main() {
    let mut run = BenchRun::start("tiered_fleet");
    run.say("Fleet epoch advance: full trap resolution vs tiered integrator\n");

    let mut table = Table::new(&[
        "chips",
        "full (ms/epoch)",
        "tiered (ms/epoch)",
        "cold chips",
        "speedup",
    ]);

    for &chips in &SIZES {
        let phase = run.phase_named(format!("fleet_{chips}"));

        let mut full = FleetState::build(fleet_config(chips, false));
        let full_ms = ms_per_epoch(&mut full);
        drop(full);

        let mut tiered = FleetState::build(fleet_config(chips, true));
        let tiered_ms = ms_per_epoch(&mut tiered);
        let counts = tiered.tier_counts();
        drop(tiered);
        drop(phase);

        let speedup = full_ms / tiered_ms;
        #[allow(clippy::cast_precision_loss)]
        let cold_fraction = counts.cold as f64 / chips as f64;
        table.row(&[
            &chips.to_string(),
            &fmt(full_ms, 2),
            &fmt(tiered_ms, 2),
            &format!("{} ({:.0}%)", counts.cold, cold_fraction * 100.0),
            &format!("{speedup:.1}x"),
        ]);
        run.value(&format!("full_ms_per_epoch_{chips}"), full_ms);
        run.value(&format!("tiered_ms_per_epoch_{chips}"), tiered_ms);
        run.value(&format!("speedup_{chips}"), speedup);
        run.value(&format!("cold_fraction_{chips}"), cold_fraction);
    }

    run.table(&table);
    run.say(
        "\nThe tiered fleet pays trap-resolution cost only for hot/pinned chips and\n\
         wake-epoch rehydrations; a cold chip's epoch is one integer compare.",
    );
    run.finish("sizes=100k,1M shards=64 traps/chip=8 warmup=40 timed=8 guard_band=10mV");
}
