//! Analyzer throughput benchmark: one full-workspace static-analysis
//! pass (token lints + call-graph purity dataflow), timed end to end.
//!
//! Produces the `analyzer` manifest the perf ledger tracks (`wall_ms`,
//! plus graph-shape gauges): a regression in `wall_ms` means lexing,
//! call resolution, or the taint fixpoint got slower — the analyzer
//! runs in CI on every change, so its wall time is a budget, not a
//! curiosity. The node/edge counts contextualize timing shifts that
//! merely track workspace growth.

use std::time::Instant;

use selfheal_analyzer as analyzer;
use selfheal_bench::BenchRun;

fn main() {
    let mut run = BenchRun::start("analyzer");
    run.say("Analyzer pass: full-workspace lints + purity dataflow\n");

    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let Some(root) = analyzer::walk::find_workspace_root(&cwd) else {
        eprintln!("analyzer_pass: no workspace root above {}", cwd.display());
        std::process::exit(2);
    };

    // Warm the page cache so the timed pass measures analysis, not disk.
    let flow = analyzer::workspace_dataflow(&root).expect("warm-up pass");
    let nodes = flow.graph.nodes.len();
    let edges: usize = flow.graph.edges.iter().map(Vec::len).sum();
    let roots = flow.graph.roots.len();

    let started = Instant::now();
    let findings = {
        let _phase = run.phase("analyze");
        analyzer::analyze_workspace(&root).expect("analysis pass")
    };
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    run.say(format!(
        "root={}\nnodes={nodes} edges={edges} roots={roots} findings={}\nwall: {wall_ms:8.3} ms",
        root.display(),
        findings.len(),
    ));
    run.value("wall_ms", wall_ms);
    run.value("graph_nodes", nodes as f64);
    run.value("graph_edges", edges as f64);
    run.value("graph_roots", roots as f64);
    // Stable config repr: history must stay comparable as the workspace
    // grows — organic growth shows up against the IQR tolerance, which
    // is exactly the budget this benchmark enforces.
    run.finish("full-workspace");
}
