//! Round-trip test for the Chrome trace exporter: spans, instants and
//! counter samples emitted through [`ChromeTraceSink`] must come back as
//! schema-valid trace-event JSON — balanced `B`/`E` pairs, thread-scoped
//! instants, named per-thread rows, and non-decreasing timestamps within
//! each row (about://tracing rejects out-of-order rows silently).

use std::collections::BTreeMap;
use std::sync::Arc;

use selfheal_telemetry::{self as telemetry, json, ChromeTraceSink, Json};

/// The per-row timestamp/phase payload of one trace event.
struct Row {
    ph: String,
    ts_us: f64,
    scope: Option<String>,
}

fn tid_of(event: &Json) -> Option<i64> {
    #[allow(clippy::cast_possible_truncation)]
    event.get("tid").and_then(Json::as_f64).map(|t| t as i64)
}

#[test]
fn trace_file_round_trips_with_balanced_spans() {
    let path = telemetry::sink::scratch_path("selfheal_trace_roundtrip.trace.json");
    let sink = ChromeTraceSink::create(&path).expect("trace sink creates its file eagerly");
    let _guard = telemetry::install_sink(Arc::new(sink));
    telemetry::register_thread_name("rt-main");

    {
        let _outer = telemetry::span!("rt.outer");
        {
            let _inner = telemetry::span!("rt.inner", step = 1u64);
            telemetry::event!("rt.instant", tick = 7u64);
        }
        telemetry::trace_counter!("rt.queue_depth", 3.0);
    }

    // Two extra "workers": every emitting thread gets its own timeline row.
    let workers: Vec<_> = (0u64..2)
        .map(|w| {
            std::thread::spawn(move || {
                telemetry::register_thread_name(&format!("rt-worker-{w}"));
                let _span = telemetry::span!("rt.work", worker = w);
                telemetry::event!("rt.instant", tick = w);
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker thread panicked");
    }

    telemetry::flush_all();
    let text = std::fs::read_to_string(&path).expect("trace file written on flush");
    let doc = json::parse(&text).expect("trace file is valid JSON");

    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms"),
        "trace document declares its display unit"
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("top-level traceEvents array");

    // Thread-name metadata rows map compact tids back to our registrations.
    let mut names: BTreeMap<i64, String> = BTreeMap::new();
    for event in events {
        if event.get("ph").and_then(Json::as_str) == Some("M")
            && event.get("name").and_then(Json::as_str) == Some("thread_name")
        {
            let tid = tid_of(event).expect("metadata row has a tid");
            let name = event
                .get("args")
                .and_then(|args| args.get("name"))
                .and_then(Json::as_str)
                .expect("thread_name metadata carries args.name");
            names.insert(tid, name.to_string());
        }
    }
    let ours: BTreeMap<i64, &String> = names
        .iter()
        .filter(|(_, name)| name.starts_with("rt-"))
        .map(|(tid, name)| (*tid, name))
        .collect();
    assert_eq!(
        ours.len(),
        3,
        "main thread + 2 workers each get a named row, got {names:?}"
    );

    // Per row: balanced B/E nesting, non-decreasing timestamps, pid 1.
    for (&tid, row_name) in &ours {
        let rows: Vec<Row> = events
            .iter()
            .filter(|event| tid_of(event) == Some(tid))
            .filter(|event| event.get("ph").and_then(Json::as_str) != Some("M"))
            .map(|event| {
                assert_eq!(
                    event.get("pid").and_then(Json::as_f64),
                    Some(1.0),
                    "{row_name}: single-process trace"
                );
                Row {
                    ph: event.get("ph").and_then(Json::as_str).expect("ph").to_string(),
                    ts_us: event.get("ts").and_then(Json::as_f64).expect("ts"),
                    scope: event.get("s").and_then(Json::as_str).map(str::to_string),
                }
            })
            .collect();
        assert!(!rows.is_empty(), "{row_name}: row recorded no events");

        let mut depth = 0i64;
        let mut last_ts = f64::NEG_INFINITY;
        for row in &rows {
            assert!(
                row.ts_us >= last_ts,
                "{row_name}: timestamps must be non-decreasing within a row"
            );
            last_ts = row.ts_us;
            match row.ph.as_str() {
                "B" => depth += 1,
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "{row_name}: E with no matching B");
                }
                "i" => assert_eq!(
                    row.scope.as_deref(),
                    Some("t"),
                    "{row_name}: instants are thread-scoped"
                ),
                "C" => {}
                other => panic!("{row_name}: unexpected phase {other:?}"),
            }
        }
        assert_eq!(depth, 0, "{row_name}: unbalanced B/E pairs");
    }

    // The counter track carries its sampled value in args.
    let counter = events
        .iter()
        .find(|event| {
            event.get("ph").and_then(Json::as_str) == Some("C")
                && event.get("name").and_then(Json::as_str) == Some("rt.queue_depth")
        })
        .expect("counter event present");
    assert_eq!(
        counter
            .get("args")
            .and_then(|args| args.get("value"))
            .and_then(Json::as_f64),
        Some(3.0),
        "counter args carry the sampled value"
    );
}
