//! Property tests for the flight-recorder ring: wraparound always
//! retains exactly the newest-N records in claim order, and concurrent
//! writers never lose their own most-recent record (provided the ring
//! holds at least one slot per writer, which the claim counter
//! guarantees for the final round of writes).

use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use selfheal_telemetry::FlightRecorder;

proptest! {
    #[test]
    fn wraparound_keeps_the_newest_records_in_order(
        capacity in 1usize..96,
        events in 0usize..400,
    ) {
        let ring = FlightRecorder::with_capacity(capacity);
        for i in 0..events {
            ring.record("prop", "tick", format!("i={i}"));
        }
        let snapshot = ring.snapshot();
        let retained = events.min(capacity);
        prop_assert_eq!(snapshot.len(), retained);
        prop_assert_eq!(ring.len(), retained);
        // Exactly the newest `retained` claims, oldest first.
        let expected: Vec<u64> =
            ((events - retained) as u64..events as u64).collect();
        let seqs: Vec<u64> = snapshot.iter().map(|r| r.seq).collect();
        prop_assert_eq!(seqs, expected);
        if let Some(last) = snapshot.last() {
            prop_assert_eq!(last.detail.clone(), format!("i={}", events - 1));
        }
    }

    #[test]
    fn concurrent_writers_keep_their_own_last_record(
        writers in 2usize..8,
        per_writer in 1usize..120,
        extra_capacity in 0usize..32,
    ) {
        // Capacity of at least `writers`: after the barrier each writer
        // claims exactly one final slot, so even a full wrap during the
        // free-for-all phase cannot evict another writer's closing record.
        let capacity = writers + extra_capacity;
        let ring = Arc::new(FlightRecorder::with_capacity(capacity));
        let barrier = Arc::new(Barrier::new(writers));
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let ring = Arc::clone(&ring);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    for i in 0..per_writer - 1 {
                        ring.record("prop", "burst", format!("w={w} i={i}"));
                    }
                    barrier.wait();
                    ring.record("prop", "final", format!("w={w}"));
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("writer thread joins");
        }

        let total = (writers * per_writer) as u64;
        prop_assert_eq!(ring.recorded(), total);
        let snapshot = ring.snapshot();
        prop_assert_eq!(snapshot.len(), (total as usize).min(capacity));
        // Snapshot stays sorted by claim sequence even across threads.
        for pair in snapshot.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq);
        }
        // Every writer's closing record survived the wraparound.
        for w in 0..writers {
            let wanted = format!("w={w}");
            prop_assert!(
                snapshot
                    .iter()
                    .any(|r| r.name == "final" && r.detail == wanted),
                "writer {} lost its final record (capacity {}, {} writers)",
                w, capacity, writers
            );
        }
    }
}
