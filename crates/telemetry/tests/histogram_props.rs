//! Property tests for the mergeable log-bucketed histogram — the two
//! guarantees fleet-shard aggregation rests on:
//!
//! 1. **Merge is exact, associative and order-independent**: splitting an
//!    observation stream into shards any way and merging them in any
//!    grouping yields state identical to observing the interleaved
//!    stream.
//! 2. **Bucket-derived quantiles are within one bucket width** (≈ 4.4 %
//!    relative) of the exact sample quantiles.

use proptest::prelude::*;
use selfheal_telemetry::Histogram;

/// Observes a slice into a fresh histogram.
fn observed(values: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

/// A value domain spanning signs, magnitudes and the zero bucket.
fn sample_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        5 => -1e6f64..1e6f64,
        2 => -1e-6f64..1e-6f64,
        1 => Just(0.0),
        1 => Just(-0.0),
    ]
}

/// Exact sample quantile by the same rank convention the histogram uses:
/// the smallest value whose cumulative count reaches `q * n`.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let target = q * sorted.len() as f64;
    let rank = (target.ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn merge_matches_interleaved_stream(
        values in proptest::collection::vec(sample_value(), 1..200),
        cuts in proptest::collection::vec(0usize..4, 1..200),
    ) {
        // Partition the stream into up to 4 shards by the cut tape.
        let mut shards: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for (i, &v) in values.iter().enumerate() {
            shards[cuts[i % cuts.len()]].push(v);
        }
        let interleaved = observed(&values);

        // Left fold: ((a ∪ b) ∪ c) ∪ d.
        let mut left = Histogram::new();
        for shard in &shards {
            left.merge(&observed(shard));
        }
        prop_assert_eq!(&left, &interleaved);

        // Reversed order and a different grouping: (d ∪ c) ∪ (b ∪ a).
        let mut dc = observed(&shards[3]);
        dc.merge(&observed(&shards[2]));
        let mut ba = observed(&shards[1]);
        ba.merge(&observed(&shards[0]));
        dc.merge(&ba);
        prop_assert_eq!(&dc, &interleaved);
    }

    #[test]
    fn merge_preserves_exact_extremes_and_counts(
        a in proptest::collection::vec(sample_value(), 0..100),
        b in proptest::collection::vec(sample_value(), 0..100),
    ) {
        let mut merged = observed(&a);
        merged.merge(&observed(&b));
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), all.len() as u64);
        let mut sorted = all.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(merged.min(), sorted.first().copied());
        prop_assert_eq!(merged.max(), sorted.last().copied());
    }

    #[test]
    fn quantiles_within_one_bucket_width(
        values in proptest::collection::vec(1e-3f64..1e9f64, 1..300),
        q in 0.0f64..=1.0f64,
    ) {
        let h = observed(&values);
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let exact = exact_quantile(&sorted, q);
        let estimate = h.quantile(q).expect("non-empty");
        // One log bucket spans a relative width of 2^(1/16) − 1; the
        // estimate (bucket midpoint, clamped to [min, max]) must sit
        // within one bucket width of the exact sample quantile.
        let width = 2f64.powf(1.0 / 16.0) - 1.0;
        let tolerance = exact.abs() * width + 1e-12;
        prop_assert!(
            (estimate - exact).abs() <= tolerance,
            "q={q}: estimate {estimate} vs exact {exact} (tolerance {tolerance})"
        );
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(sample_value(), 1..200),
    ) {
        let h = observed(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let estimates: Vec<f64> = qs
            .iter()
            .map(|&q| h.quantile(q).expect("non-empty"))
            .collect();
        for pair in estimates.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles monotone: {estimates:?}");
        }
        let (min, max) = (h.min().expect("non-NaN"), h.max().expect("non-NaN"));
        for &e in &estimates {
            prop_assert!(e >= min && e <= max, "clamped to [{min}, {max}]: {e}");
        }
    }
}
