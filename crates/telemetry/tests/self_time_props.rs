//! Property tests for the self-time ledger: over arbitrary span trees,
//! self time never exceeds total time, and every parent's total
//! decomposes *exactly* into its own self time plus the totals of its
//! direct children (the invariant that makes folded-stack flamegraphs
//! add up).

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use selfheal_telemetry::{self as telemetry, SelfTimeEntry, Span};

/// Unique root name per generated case, so the process-global ledger
/// never aggregates across cases (or across parallel test threads).
static CASE: AtomicU64 = AtomicU64::new(0);

/// Runs one op tape as a span tree under a fresh root and returns the
/// ledger entries belonging to that root.
fn run_tape(ops: &[u8]) -> (String, Vec<SelfTimeEntry>) {
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let root = format!("case{case}");
    {
        let mut stack: Vec<Span> = vec![Span::enter(&root, Vec::new())];
        for &op in ops {
            match op {
                // Open a child span; three names so paths repeat and the
                // ledger's (count, total, self) aggregation is exercised.
                0..=2 => {
                    let name = ["a", "b", "c"][op as usize];
                    stack.push(Span::enter(name, Vec::new()));
                }
                // Close the innermost span, never the case root.
                3 => {
                    if stack.len() > 1 {
                        stack.pop();
                    }
                }
                // Burn a little real time so self-time is non-trivial.
                _ => {
                    let mut acc = op as u64;
                    for i in 0..512u64 {
                        acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
                    }
                    std::hint::black_box(acc);
                }
            }
        }
        // Drop guards innermost-first.
        while stack.len() > 1 {
            stack.pop();
        }
    }
    let entries = telemetry::self_time_snapshot()
        .into_iter()
        .filter(|entry| {
            entry.stack == root || entry.stack.starts_with(&format!("{root};"))
        })
        .collect();
    (root, entries)
}

proptest! {
    #[test]
    fn self_time_decomposes_exactly(ops in proptest::collection::vec(0u8..6, 0..64)) {
        let (root, entries) = run_tape(&ops);
        prop_assert!(!entries.is_empty(), "the case root must reach the ledger");

        for entry in &entries {
            prop_assert!(
                entry.self_ns <= entry.total_ns,
                "{}: self {} ns exceeds total {} ns",
                entry.stack, entry.self_ns, entry.total_ns
            );
            prop_assert!(entry.count >= 1);

            // total == self + Σ direct children's totals, exactly: every
            // nanosecond a child runs is credited to the parent's child
            // bucket, nothing else is.
            let child_prefix = format!("{};", entry.stack);
            let children_total: u128 = entries
                .iter()
                .filter(|child| {
                    child.stack.starts_with(&child_prefix)
                        && !child.stack[child_prefix.len()..].contains(';')
                })
                .map(|child| child.total_ns)
                .sum();
            prop_assert_eq!(
                entry.total_ns,
                entry.self_ns + children_total,
                "{}: total must equal self + direct children",
                entry.stack.clone()
            );
        }

        // The root's phase-ledger record agrees: self wall-clock never
        // exceeds total wall-clock.
        let phases = telemetry::take_phase_timings();
        let phase = phases.iter().find(|p| p.name == root);
        prop_assert!(phase.is_some(), "depth-0 span lands in the phase ledger");
        let phase = phase.unwrap();
        prop_assert!(
            phase.self_s <= phase.wall_s + 1e-12,
            "{}: phase self {} s exceeds wall {} s",
            root, phase.self_s, phase.wall_s
        );
    }
}
