//! A minimal JSON value, writer and parser.
//!
//! The workspace builds fully offline; the vendored `serde`/`serde_json`
//! stand-ins are no-op stubs, so the telemetry layer carries its own tiny
//! JSON implementation. It covers exactly what sinks and manifests need:
//! objects with string keys, arrays, finite numbers, strings, booleans and
//! null. Non-finite numbers serialize as `null` (JSON has no NaN), which a
//! manifest diff surfaces as an anomaly instead of a parse error.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
///
/// Object keys are kept in a [`BTreeMap`] so rendering is deterministic —
/// two manifests with the same content are byte-identical, which is what
/// makes benchmark trajectories diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite double (non-finite values render as `null`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with deterministically ordered keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn object(pairs: Vec<(String, Json)>) -> Json {
        Json::Object(pairs.into_iter().collect())
    }

    /// The value at `key`, when this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compact single-line JSON (the JSONL sink's format).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation (the manifest file format).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i, lvl| {
                    items[i].write(out, indent, lvl);
                });
            }
            Json::Object(map) => {
                let entries: Vec<(&String, &Json)> = map.iter().collect();
                write_seq(out, indent, level, '{', '}', entries.len(), |out, i, lvl| {
                    write_string(out, entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, lvl);
                });
            }
        }
    }
}

/// Shared array/object layout: separators, newlines and indentation.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        item(out, i, level + 1);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

/// Writes a number; non-finite values become `null`.
fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{:?}` is Rust's shortest round-trip float rendering, which is
        // also valid JSON for finite values.
        let _ = fmt::Write::write_fmt(out, format_args!("{n:?}"));
    } else {
        out.push_str("null");
    }
}

/// Writes a JSON string with the escapes the grammar requires.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (used by round-trip tests and manifest
/// readers; trailing whitespace is allowed, trailing garbage is not).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after value"));
    }
    Ok(value)
}

fn err(at: usize, message: &str) -> ParseError {
    ParseError {
        at,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "unexpected token"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected ':' after object key"));
                }
                *pos += 1;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(map));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Number),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed for telemetry
                        // payloads (all emitters write BMP text); map them
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is &str, so this is
                // always well-formed).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|_| err(*pos, "invalid UTF-8"))?;
                let Some(c) = s.chars().next() else {
                    return Err(err(*pos, "unterminated string"));
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, ParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| err(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_sorted() {
        let value = Json::object(vec![
            ("b".to_string(), Json::Number(2.0)),
            ("a".to_string(), Json::Array(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(value.render(), r#"{"a":[true,null],"b":2.0}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let value = Json::object(vec![("k".to_string(), Json::Number(1.0))]);
        assert_eq!(value.render_pretty(), "{\n  \"k\": 1.0\n}");
    }

    #[test]
    fn escapes_and_round_trips_strings() {
        let original = Json::String("line\n\"quoted\"\tand \\ unicode £".to_string());
        let text = original.render();
        assert_eq!(parse(&text).expect("test value"), original);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null");
    }

    #[test]
    fn round_trips_nested_structures() {
        let value = Json::object(vec![
            ("metrics".to_string(), Json::object(vec![
                ("count".to_string(), Json::Number(42.0)),
                ("ratio".to_string(), Json::Number(0.724)),
            ])),
            ("phases".to_string(), Json::Array(vec![
                Json::object(vec![
                    ("name".to_string(), Json::String("stress".to_string())),
                    ("wall_s".to_string(), Json::Number(1.5e-3)),
                ]),
            ])),
            ("git".to_string(), Json::Null),
        ]);
        assert_eq!(parse(&value.render()).expect("test value"), value);
        assert_eq!(parse(&value.render_pretty()).expect("test value"), value);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_numbers_in_all_common_shapes() {
        assert_eq!(parse("-1.5e3").expect("test value"), Json::Number(-1500.0));
        assert_eq!(parse("0").expect("test value"), Json::Number(0.0));
        assert_eq!(parse("[1,2.25]").expect("test value").as_array().expect("test value").len(), 2);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 1.5, "s": "x", "l": [1]}"#).expect("test value");
        assert_eq!(v.get("a").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("l").and_then(Json::as_array).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
    }
}
