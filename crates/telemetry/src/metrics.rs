//! The metrics registry: counters, gauges and mergeable log-bucketed
//! histograms.
//!
//! Metrics are the "virtual odometers" of the simulation stack — cheap
//! running aggregates (trap occupancy, RO frequency samples, per-core
//! `ΔVth`, scheduler activations) that a run manifest snapshots at the end.
//! Recording is globally gated by [`set_enabled`]: with metrics off every
//! call is a single relaxed atomic load, so instrumentation can sit on hot
//! paths without taxing the tier-1 test suite.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::json::Json;

/// Whether metric recording is active (off by default).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The registry. A single mutex-protected map is deliberate: the
/// simulation stack is effectively single-threaded per run, and the
/// uncontended lock costs nanoseconds against micro-to-milliseconds of
/// physics per instrumented call.
static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Turns metric recording on or off.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric recording is active.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotone accumulator. Float-valued because the trap-ensemble
    /// instrumentation counts *expected* (fractional) capture/emission
    /// events.
    Counter(f64),
    /// Last-value-wins.
    Gauge(f64),
    /// A log-bucketed histogram.
    Histogram(Histogram),
}

impl Metric {
    /// JSON representation used by manifests and sinks.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Metric::Counter(v) | Metric::Gauge(v) => Json::Number(*v),
            Metric::Histogram(h) => h.to_json(),
        }
    }
}

/// Sub-buckets per power of two: bucket boundaries sit at
/// `2^(idx / SUBBUCKETS)`, so each bucket spans a relative width of
/// `2^(1/16) − 1 ≈ 4.4 %` — the quantile error bound.
const SUBBUCKETS: f64 = 16.0;

/// A mergeable log-bucketed (HDR-style) histogram.
///
/// Observations land in geometrically-spaced buckets: positive values in
/// bucket `⌊log2(v) · 16⌋`, negatives mirrored by magnitude, with
/// dedicated exact-zero and NaN buckets. The state is pure integer
/// counts (plus total-order min/max), so [`Histogram::merge`] is **exact,
/// associative and order-independent**: merging shard A into shard B
/// produces bit-identical state to observing the interleaved stream —
/// the property that lets fleet shards combine latency distributions
/// without loss.
///
/// Quantiles ([`Histogram::quantile`]) are derived from the buckets
/// (geometric-midpoint representative, clamped to the exact observed
/// min/max), so every estimate is within one bucket width (≈ 4.4 %
/// relative) of the exact sample quantile. The mean is bucket-derived
/// too — mergeability is bought by giving up the exact running sum,
/// whose floating-point accumulation order would have made merges
/// order-dependent.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Bucket index → count, for positive observations.
    positive: BTreeMap<i32, u64>,
    /// Bucket index (of the magnitude) → count, for negative observations.
    negative: BTreeMap<i32, u64>,
    /// Exact zeros (either sign).
    zero: u64,
    /// NaN observations — counted, ordered after every number (matching
    /// `f64::total_cmp`), and poisoning the mean visibly.
    nan: u64,
    /// Total observations, including zeros and NaNs.
    count: u64,
    /// Exact smallest non-NaN observation (`None` until one arrives).
    min: Option<f64>,
    /// Exact largest non-NaN observation.
    max: Option<f64>,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index covering a positive magnitude:
    /// `[2^(idx/16), 2^((idx+1)/16))`.
    fn bucket_index(magnitude: f64) -> i32 {
        // Finite positive magnitudes give log2 in ±1075; the clamp only
        // guards the infinite-input edge so the cast stays defined.
        let raw = (magnitude.log2() * SUBBUCKETS).floor();
        raw.clamp(-65536.0, 65536.0) as i32
    }

    /// The inclusive lower boundary of a (positive-side) bucket.
    #[must_use]
    pub fn bucket_lower(idx: i32) -> f64 {
        (f64::from(idx) / SUBBUCKETS).exp2()
    }

    /// The exclusive upper boundary of a (positive-side) bucket.
    #[must_use]
    pub fn bucket_upper(idx: i32) -> f64 {
        (f64::from(idx + 1) / SUBBUCKETS).exp2()
    }

    /// The representative value quantiles report for a bucket: its
    /// geometric midpoint, within half a bucket width of every member.
    fn representative(idx: i32) -> f64 {
        ((f64::from(idx) + 0.5) / SUBBUCKETS).exp2()
    }

    /// Records one observation. Zero lands in the exact-zero bucket; NaN
    /// lands in a dedicated NaN bucket (ordered last, as `total_cmp`
    /// orders it) and poisons [`Histogram::mean`] — visible, not silently
    /// dropped.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        if value.is_nan() {
            self.nan += 1;
            return;
        }
        match self.min {
            Some(current) if value.total_cmp(&current).is_lt() => self.min = Some(value),
            None => self.min = Some(value),
            Some(_) => {}
        }
        match self.max {
            Some(current) if value.total_cmp(&current).is_gt() => self.max = Some(value),
            None => self.max = Some(value),
            Some(_) => {}
        }
        if value == 0.0 {
            self.zero += 1;
        } else if value > 0.0 {
            *self.positive.entry(Self::bucket_index(value)).or_insert(0) += 1;
        } else {
            *self.negative.entry(Self::bucket_index(-value)).or_insert(0) += 1;
        }
    }

    /// Folds `other` into `self`, bucket-wise. Pure integer additions
    /// plus total-order min/max, so the operation is exact, associative
    /// and commutative: any merge tree over any partition of an
    /// observation stream yields bit-identical state.
    pub fn merge(&mut self, other: &Histogram) {
        for (idx, n) in &other.positive {
            *self.positive.entry(*idx).or_insert(0) += n;
        }
        for (idx, n) in &other.negative {
            *self.negative.entry(*idx).or_insert(0) += n;
        }
        self.zero += other.zero;
        self.nan += other.nan;
        self.count += other.count;
        if let Some(theirs) = other.min {
            match self.min {
                Some(mine) if theirs.total_cmp(&mine).is_lt() => self.min = Some(theirs),
                None => self.min = Some(theirs),
                Some(_) => {}
            }
        }
        if let Some(theirs) = other.max {
            match self.max {
                Some(mine) if theirs.total_cmp(&mine).is_gt() => self.max = Some(theirs),
                None => self.max = Some(theirs),
                Some(_) => {}
            }
        }
    }

    /// Total number of observations (including zeros and NaNs).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// How many observations were exactly zero.
    #[must_use]
    pub fn zero_count(&self) -> u64 {
        self.zero
    }

    /// How many observations were NaN.
    #[must_use]
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Exact smallest non-NaN observation.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Exact largest non-NaN observation.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Number of occupied (non-empty) log buckets, both signs.
    #[must_use]
    pub fn occupied_buckets(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    /// Bucket-derived sum: each bucket contributes its representative
    /// times its count. NaN observations poison the result to NaN.
    #[must_use]
    pub fn approx_sum(&self) -> f64 {
        if self.nan > 0 {
            return f64::NAN;
        }
        let mut sum = 0.0;
        for (idx, n) in &self.positive {
            sum += Self::representative(*idx) * *n as f64;
        }
        for (idx, n) in &self.negative {
            sum -= Self::representative(*idx) * *n as f64;
        }
        sum
    }

    /// Bucket-derived mean (`None` when empty; NaN when any observation
    /// was NaN). Within one bucket width (≈ 4.4 % relative) of the exact
    /// mean, because every representative is.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.approx_sum() / self.count as f64)
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), derived from the log
    /// buckets: the covering bucket's geometric midpoint, clamped to the
    /// exact observed `[min, max]`, so the estimate sits within one
    /// bucket width of the exact sample quantile. A rank landing in the
    /// NaN bucket (ordered last) reports NaN. `None` when the histogram
    /// is empty or `q` is NaN.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly; report them rather than a
        // bucket midpoint (min/max are None only for all-NaN streams).
        if q == 0.0 {
            if let Some(min) = self.min {
                return Some(min);
            }
        }
        if q == 1.0 && self.nan == 0 {
            return self.max;
        }
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        let hit = |n: u64, cumulative: &mut u64| -> bool {
            let next = *cumulative + n;
            let covered = n > 0 && target <= next as f64;
            *cumulative = next;
            covered
        };
        // Ascending value order: most-negative first (largest magnitude),
        // then zero, positives, and NaN last (total_cmp order).
        for (idx, n) in self.negative.iter().rev() {
            if hit(*n, &mut cumulative) {
                return Some(self.clamp_to_range(-Self::representative(*idx)));
            }
        }
        if hit(self.zero, &mut cumulative) {
            return Some(0.0);
        }
        for (idx, n) in &self.positive {
            if hit(*n, &mut cumulative) {
                return Some(self.clamp_to_range(Self::representative(*idx)));
            }
        }
        if self.nan > 0 {
            return Some(f64::NAN);
        }
        // All counts consumed without covering the target (q == 1.0 with
        // rounding); report the exact maximum.
        self.max
    }

    /// Clamps a bucket representative to the exact observed range, so
    /// extreme quantiles report real observations.
    fn clamp_to_range(&self, value: f64) -> f64 {
        match (self.min, self.max) {
            (Some(min), Some(max)) => value.clamp(min, max),
            _ => value,
        }
    }

    /// Cumulative `(upper_bound, count)` pairs in ascending value order —
    /// the Prometheus `_bucket{le=...}` series (without the trailing
    /// `+Inf`, which is [`Histogram::count`]).
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.occupied_buckets() + 1);
        let mut cumulative = 0u64;
        for (idx, n) in self.negative.iter().rev() {
            cumulative += n;
            // v in (−upper, −lower]: the algebraic upper edge is −lower.
            out.push((-Self::bucket_lower(*idx), cumulative));
        }
        if self.zero > 0 {
            cumulative += self.zero;
            out.push((0.0, cumulative));
        }
        for (idx, n) in &self.positive {
            cumulative += n;
            out.push((Self::bucket_upper(*idx), cumulative));
        }
        out
    }

    /// JSON representation: sparse buckets plus bucket-derived
    /// p50/p90/p99/p999 summaries (the quantiles flow into manifest
    /// metric snapshots automatically).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let sparse = |map: &BTreeMap<i32, u64>| {
            Json::Array(
                map.iter()
                    .map(|(idx, n)| {
                        Json::Array(vec![
                            Json::Number(f64::from(*idx)),
                            Json::Number(*n as f64),
                        ])
                    })
                    .collect(),
            )
        };
        let mut fields = vec![
            ("count".to_string(), Json::Number(self.count as f64)),
            ("zero".to_string(), Json::Number(self.zero as f64)),
            ("nan".to_string(), Json::Number(self.nan as f64)),
            ("buckets".to_string(), sparse(&self.positive)),
            ("neg_buckets".to_string(), sparse(&self.negative)),
        ];
        if let Some(min) = self.min {
            fields.push(("min".to_string(), Json::Number(min)));
        }
        if let Some(max) = self.max {
            fields.push(("max".to_string(), Json::Number(max)));
        }
        if let Some(mean) = self.mean() {
            fields.push(("mean".to_string(), Json::Number(mean)));
        }
        for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)] {
            if let Some(value) = self.quantile(q) {
                fields.push((label.to_string(), Json::Number(value)));
            }
        }
        Json::object(fields)
    }
}

/// Adds `delta` to the named counter (creating it at zero). Negative
/// deltas are clamped to zero: counters are monotone by contract.
pub fn counter_add(name: &str, delta: f64) {
    if !enabled() {
        return;
    }
    let mut map = registry();
    match map
        .entry(name.to_string())
        .or_insert(Metric::Counter(0.0))
    {
        Metric::Counter(total) => *total += delta.max(0.0),
        _ => debug_assert!(false, "metric {name} is not a counter"),
    }
}

/// Sets the named gauge.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut map = registry();
    match map.entry(name.to_string()).or_insert(Metric::Gauge(0.0)) {
        Metric::Gauge(current) => *current = value,
        _ => debug_assert!(false, "metric {name} is not a gauge"),
    }
}

/// Raises the named gauge to `value` if it is below it (creating it at
/// `value`) — a high-water mark. Useful for quantities observed many
/// times per run where only the peak matters (queue depths, fan-out
/// widths).
pub fn gauge_max(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut map = registry();
    match map
        .entry(name.to_string())
        .or_insert(Metric::Gauge(value))
    {
        Metric::Gauge(current) => *current = current.max(value),
        _ => debug_assert!(false, "metric {name} is not a gauge"),
    }
}

/// Records an observation into the named histogram, registering an empty
/// log-bucketed histogram on first use.
pub fn histogram_observe(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut map = registry();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Histogram::new()))
    {
        Metric::Histogram(h) => h.observe(value),
        _ => debug_assert!(false, "metric {name} is not a histogram"),
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Metric name → value, deterministically ordered.
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// Number of named metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The named metric, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// JSON object keyed by metric name.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(
            self.metrics
                .iter()
                .map(|(name, metric)| (name.clone(), metric.to_json()))
                .collect(),
        )
    }
}

/// Copies the current registry contents.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        metrics: registry().clone(),
    }
}

/// Clears the registry (manifest capture resets between runs; tests use
/// unique metric names instead, since the registry is process-global).
pub fn reset() {
    registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enables metrics for the duration of a test body. Tests use unique
    /// metric names, so parallel tests sharing the global registry and
    /// the enabled flag (sticky-on during the suite) do not interfere.
    fn with_metrics<T>(body: impl FnOnce() -> T) -> T {
        set_enabled(true);
        body()
    }

    #[test]
    fn counters_accumulate_and_clamp() {
        with_metrics(|| {
            counter_add("test.m.counter_a", 2.0);
            counter_add("test.m.counter_a", 0.5);
            counter_add("test.m.counter_a", -10.0); // clamped: monotone
            let snap = snapshot();
            assert_eq!(snap.get("test.m.counter_a"), Some(&Metric::Counter(2.5)));
        });
    }

    #[test]
    fn gauges_take_the_last_value() {
        with_metrics(|| {
            gauge_set("test.m.gauge_a", 1.0);
            gauge_set("test.m.gauge_a", -3.5);
            assert_eq!(snapshot().get("test.m.gauge_a"), Some(&Metric::Gauge(-3.5)));
        });
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        with_metrics(|| {
            gauge_max("test.m.gauge_hwm", 2.0);
            gauge_max("test.m.gauge_hwm", 7.5);
            gauge_max("test.m.gauge_hwm", 3.0);
            assert_eq!(snapshot().get("test.m.gauge_hwm"), Some(&Metric::Gauge(7.5)));
        });
    }

    #[test]
    fn buckets_have_relative_width() {
        let mut h = Histogram::new();
        // Values within one sub-bucket (4.4 % relative) share a bucket;
        // values an octave apart never do.
        h.observe(100.0);
        h.observe(101.0);
        h.observe(200.0);
        assert_eq!(h.occupied_buckets(), 2);
        assert_eq!(h.count(), 3);
        // Bucket boundaries bracket their members.
        let idx = 100.0_f64.log2() * 16.0;
        let idx = idx.floor() as i32;
        assert!(Histogram::bucket_lower(idx) <= 100.0);
        assert!(Histogram::bucket_upper(idx) > 101.0);
    }

    #[test]
    fn zero_negative_and_sign_buckets() {
        let mut h = Histogram::new();
        h.observe(0.0);
        h.observe(-0.0);
        h.observe(-5.0);
        h.observe(5.0);
        assert_eq!(h.zero_count(), 2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(5.0));
        // Symmetric observations cancel in the bucket-derived mean.
        assert!(h.mean().expect("non-empty").abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_one_bucket_width() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(f64::from(i));
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        assert!((p50 - 500.0).abs() / 500.0 < 0.045, "p50 = {p50}");
        let p99 = h.quantile(0.99).expect("non-empty");
        assert!((p99 - 990.0).abs() / 990.0 < 0.045, "p99 = {p99}");
        // Extremes clamp to the exact observed range.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1000.0));
    }

    #[test]
    fn quantile_degenerate_cases() {
        let empty = Histogram::new();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.mean(), None);
        let mut h = Histogram::new();
        h.observe(42.0);
        assert_eq!(h.quantile(0.5), Some(42.0), "single value clamps exact");
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn merge_is_exact_and_order_independent() {
        let values = [0.5, -3.0, 0.0, 120.0, 120.5, 1e-9, -3.0, 7.7];
        let mut interleaved = Histogram::new();
        for v in values {
            interleaved.observe(v);
        }
        let mut shard_a = Histogram::new();
        let mut shard_b = Histogram::new();
        for (i, v) in values.iter().enumerate() {
            if i % 2 == 0 {
                shard_a.observe(*v);
            } else {
                shard_b.observe(*v);
            }
        }
        let mut ab = shard_a.clone();
        ab.merge(&shard_b);
        let mut ba = shard_b.clone();
        ba.merge(&shard_a);
        assert_eq!(ab, interleaved);
        assert_eq!(ba, interleaved);
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let mut h = Histogram::new();
        h.observe(1.5);
        h.observe(f64::NAN);
        let mut empty = Histogram::new();
        empty.merge(&h);
        assert_eq!(empty, h);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
    }

    #[test]
    fn histogram_json_carries_quantiles() {
        let mut h = Histogram::new();
        h.observe(0.5);
        h.observe(1.5);
        let json = h.to_json();
        for label in ["p50", "p90", "p99", "p999"] {
            assert!(json.get(label).and_then(Json::as_f64).is_some(), "{label}");
        }
        assert_eq!(json.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(json.get("min").and_then(Json::as_f64), Some(0.5));
        assert_eq!(json.get("max").and_then(Json::as_f64), Some(1.5));
        // Empty histograms omit the summaries rather than inventing them.
        let empty = Histogram::new();
        assert!(empty.to_json().get("p50").is_none());
        assert!(empty.to_json().get("min").is_none());
    }

    #[test]
    fn histogram_nan_is_counted_and_poisons_mean() {
        let mut h = Histogram::new();
        h.observe(1.0);
        h.observe(f64::NAN);
        assert_eq!(h.nan_count(), 1);
        assert_eq!(h.count(), 2);
        assert!(h.mean().expect("non-empty").is_nan(), "NaN poisons visibly");
        // NaN sorts last: the top quantile reports it.
        assert!(h.quantile(1.0).expect("non-empty").is_nan());
        assert_eq!(h.quantile(0.25), Some(1.0));
    }

    #[test]
    fn cumulative_buckets_ascend_and_cover_the_count() {
        let mut h = Histogram::new();
        for v in [-2.0, 0.0, 0.0, 3.0, 300.0] {
            h.observe(v);
        }
        let buckets = h.cumulative_buckets();
        let bounds: Vec<f64> = buckets.iter().map(|(le, _)| *le).collect();
        let mut sorted = bounds.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(bounds, sorted, "le bounds ascend");
        let counts: Vec<u64> = buckets.iter().map(|(_, n)| *n).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "cumulative");
        assert_eq!(*counts.last().expect("non-empty"), h.count());
    }

    #[test]
    fn registry_histograms_accumulate() {
        with_metrics(|| {
            histogram_observe("test.m.hist_a", 5.0);
            histogram_observe("test.m.hist_a", 15.0);
            let snap = snapshot();
            let Some(Metric::Histogram(h)) = snap.get("test.m.hist_a") else {
                panic!("histogram registered");
            };
            assert_eq!(h.count(), 2);
        });
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        // Run in a dedicated thread-agnostic way: flip off, record, flip
        // back on. Unique name keeps this observable regardless of other
        // tests' ordering.
        set_enabled(false);
        counter_add("test.m.disabled", 1.0);
        set_enabled(true);
        assert_eq!(snapshot().get("test.m.disabled"), None);
    }

    #[test]
    fn snapshot_renders_to_json() {
        with_metrics(|| {
            counter_add("test.m.json_counter", 3.0);
            let json = snapshot().to_json();
            assert_eq!(
                json.get("test.m.json_counter").and_then(Json::as_f64),
                Some(3.0)
            );
        });
    }
}
