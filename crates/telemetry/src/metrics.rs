//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Metrics are the "virtual odometers" of the simulation stack — cheap
//! running aggregates (trap occupancy, RO frequency samples, per-core
//! `ΔVth`, scheduler activations) that a run manifest snapshots at the end.
//! Recording is globally gated by [`set_enabled`]: with metrics off every
//! call is a single relaxed atomic load, so instrumentation can sit on hot
//! paths without taxing the tier-1 test suite.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::json::Json;

/// Whether metric recording is active (off by default).
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The registry. A single mutex-protected map is deliberate: the
/// simulation stack is effectively single-threaded per run, and the
/// uncontended lock costs nanoseconds against micro-to-milliseconds of
/// physics per instrumented call.
static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

fn registry() -> MutexGuard<'static, BTreeMap<String, Metric>> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Turns metric recording on or off.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric recording is active.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotone accumulator. Float-valued because the trap-ensemble
    /// instrumentation counts *expected* (fractional) capture/emission
    /// events.
    Counter(f64),
    /// Last-value-wins.
    Gauge(f64),
    /// A fixed-bucket histogram.
    Histogram(Histogram),
}

impl Metric {
    /// JSON representation used by manifests and sinks.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Metric::Counter(v) | Metric::Gauge(v) => Json::Number(*v),
            Metric::Histogram(h) => h.to_json(),
        }
    }
}

/// A histogram over fixed, caller-supplied bucket bounds.
///
/// Bucket `i` counts observations with `value <= bounds[i]` (and greater
/// than the previous bound); one overflow bucket counts everything above
/// the last bound. The bound list is fixed at first registration —
/// re-registering the same name with different bounds keeps the original
/// bounds (first writer wins, so concurrent tests cannot corrupt shape).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// An empty histogram over the given upper bounds (must be finite and
    /// strictly increasing; violations are a programming error).
    ///
    /// # Panics
    ///
    /// Panics on empty, non-finite or non-increasing bounds.
    #[must_use]
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation. NaN observations land in the overflow
    /// bucket (they compare greater-or-unordered against every bound) and
    /// poison `sum`, which the manifest renders as `null` — visible, not
    /// silently dropped.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|b| value <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += value;
        self.count += 1;
    }

    /// The bucket upper bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries, overflow last).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the covering bucket — the classic fixed-bucket estimator.
    /// The first bucket interpolates from `min(0, bounds[0])`; overflow
    /// observations report the last finite bound (the estimator cannot
    /// see past it). `None` when the histogram is empty or `q` is NaN.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || q.is_nan() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cumulative = 0u64;
        for (slot, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cumulative + n;
            if target <= next as f64 {
                if slot >= self.bounds.len() {
                    // Overflow bucket: unbounded above, report the edge.
                    return self.bounds.last().copied();
                }
                let upper = self.bounds[slot];
                let lower = if slot == 0 {
                    self.bounds[0].min(0.0)
                } else {
                    self.bounds[slot - 1]
                };
                let within = (target - cumulative as f64) / n as f64;
                return Some(lower + (upper - lower) * within.clamp(0.0, 1.0));
            }
            cumulative = next;
        }
        self.bounds.last().copied()
    }

    /// JSON representation: raw buckets plus p50/p90/p99 summaries (the
    /// quantiles flow into manifest metric snapshots automatically).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            (
                "bounds".to_string(),
                Json::Array(self.bounds.iter().map(|b| Json::Number(*b)).collect()),
            ),
            (
                "counts".to_string(),
                Json::Array(self.counts.iter().map(|c| Json::Number(*c as f64)).collect()),
            ),
            ("sum".to_string(), Json::Number(self.sum)),
            ("count".to_string(), Json::Number(self.count as f64)),
        ];
        for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
            if let Some(value) = self.quantile(q) {
                fields.push((label.to_string(), Json::Number(value)));
            }
        }
        Json::object(fields)
    }
}

/// Adds `delta` to the named counter (creating it at zero). Negative
/// deltas are clamped to zero: counters are monotone by contract.
pub fn counter_add(name: &str, delta: f64) {
    if !enabled() {
        return;
    }
    let mut map = registry();
    match map
        .entry(name.to_string())
        .or_insert(Metric::Counter(0.0))
    {
        Metric::Counter(total) => *total += delta.max(0.0),
        _ => debug_assert!(false, "metric {name} is not a counter"),
    }
}

/// Sets the named gauge.
pub fn gauge_set(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut map = registry();
    match map.entry(name.to_string()).or_insert(Metric::Gauge(0.0)) {
        Metric::Gauge(current) => *current = value,
        _ => debug_assert!(false, "metric {name} is not a gauge"),
    }
}

/// Raises the named gauge to `value` if it is below it (creating it at
/// `value`) — a high-water mark. Useful for quantities observed many
/// times per run where only the peak matters (queue depths, fan-out
/// widths).
pub fn gauge_max(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut map = registry();
    match map
        .entry(name.to_string())
        .or_insert(Metric::Gauge(value))
    {
        Metric::Gauge(current) => *current = current.max(value),
        _ => debug_assert!(false, "metric {name} is not a gauge"),
    }
}

/// Records an observation into the named histogram, registering it with
/// `bounds` on first use.
pub fn histogram_observe(name: &str, bounds: &[f64], value: f64) {
    if !enabled() {
        return;
    }
    let mut map = registry();
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds)))
    {
        Metric::Histogram(h) => h.observe(value),
        _ => debug_assert!(false, "metric {name} is not a histogram"),
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Metric name → value, deterministically ordered.
    pub metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    /// Number of named metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The named metric, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// JSON object keyed by metric name.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(
            self.metrics
                .iter()
                .map(|(name, metric)| (name.clone(), metric.to_json()))
                .collect(),
        )
    }
}

/// Copies the current registry contents.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        metrics: registry().clone(),
    }
}

/// Clears the registry (manifest capture resets between runs; tests use
/// unique metric names instead, since the registry is process-global).
pub fn reset() {
    registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Enables metrics for the duration of a test body. Tests use unique
    /// metric names, so parallel tests sharing the global registry and
    /// the enabled flag (sticky-on during the suite) do not interfere.
    fn with_metrics<T>(body: impl FnOnce() -> T) -> T {
        set_enabled(true);
        body()
    }

    #[test]
    fn counters_accumulate_and_clamp() {
        with_metrics(|| {
            counter_add("test.m.counter_a", 2.0);
            counter_add("test.m.counter_a", 0.5);
            counter_add("test.m.counter_a", -10.0); // clamped: monotone
            let snap = snapshot();
            assert_eq!(snap.get("test.m.counter_a"), Some(&Metric::Counter(2.5)));
        });
    }

    #[test]
    fn gauges_take_the_last_value() {
        with_metrics(|| {
            gauge_set("test.m.gauge_a", 1.0);
            gauge_set("test.m.gauge_a", -3.5);
            assert_eq!(snapshot().get("test.m.gauge_a"), Some(&Metric::Gauge(-3.5)));
        });
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        with_metrics(|| {
            gauge_max("test.m.gauge_hwm", 2.0);
            gauge_max("test.m.gauge_hwm", 7.5);
            gauge_max("test.m.gauge_hwm", 3.0);
            assert_eq!(snapshot().get("test.m.gauge_hwm"), Some(&Metric::Gauge(7.5)));
        });
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0, 4.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // exactly on a bound → that bucket (le semantics)
        h.observe(1.0000001); // bucket 1
        h.observe(4.0); // bucket 2
        h.observe(100.0); // overflow
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 106.500_000_1).abs() < 1e-6);
        assert!((h.mean().expect("test value") - 21.3).abs() < 0.1);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::with_bounds(&[10.0, 20.0, 40.0]);
        for _ in 0..50 {
            h.observe(5.0); // bucket 0: (0, 10]
        }
        for _ in 0..40 {
            h.observe(15.0); // bucket 1: (10, 20]
        }
        for _ in 0..10 {
            h.observe(30.0); // bucket 2: (20, 40]
        }
        // p50 sits exactly at the bucket-0/1 edge.
        assert!((h.quantile(0.5).expect("test value") - 10.0).abs() < 1e-9);
        // p90 at the bucket-1/2 edge, p99 deep in bucket 2.
        assert!((h.quantile(0.9).expect("test value") - 20.0).abs() < 1e-9);
        let p99 = h.quantile(0.99).expect("test value");
        assert!(p99 > 20.0 && p99 <= 40.0, "p99 = {p99}");
        // Extremes are clamped to the histogram's range.
        assert!(h.quantile(0.0).expect("test value") >= 0.0);
        assert!((h.quantile(1.0).expect("test value") - 40.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_degenerate_cases() {
        let empty = Histogram::with_bounds(&[1.0]);
        assert_eq!(empty.quantile(0.5), None);
        let mut h = Histogram::with_bounds(&[1.0, 2.0]);
        h.observe(100.0); // everything in overflow
        assert_eq!(h.quantile(0.5), Some(2.0), "overflow reports the edge");
        assert_eq!(h.quantile(f64::NAN), None);
    }

    #[test]
    fn histogram_json_carries_quantiles() {
        let mut h = Histogram::with_bounds(&[1.0, 2.0]);
        h.observe(0.5);
        h.observe(1.5);
        let json = h.to_json();
        assert!(json.get("p50").and_then(Json::as_f64).is_some());
        assert!(json.get("p90").and_then(Json::as_f64).is_some());
        assert!(json.get("p99").and_then(Json::as_f64).is_some());
        // Empty histograms omit the summaries rather than inventing them.
        let empty = Histogram::with_bounds(&[1.0]);
        assert!(empty.to_json().get("p50").is_none());
    }

    #[test]
    fn histogram_nan_lands_in_overflow() {
        let mut h = Histogram::with_bounds(&[1.0]);
        h.observe(f64::NAN);
        assert_eq!(h.counts(), &[0, 1]);
        assert!(h.sum().is_nan(), "NaN poisons the sum visibly");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unordered_bounds() {
        let _ = Histogram::with_bounds(&[2.0, 1.0]);
    }

    #[test]
    fn registry_histogram_first_bounds_win() {
        with_metrics(|| {
            histogram_observe("test.m.hist_a", &[10.0, 20.0], 5.0);
            histogram_observe("test.m.hist_a", &[999.0], 15.0);
            let snap = snapshot();
            let Some(Metric::Histogram(h)) = snap.get("test.m.hist_a") else {
                panic!("histogram registered");
            };
            assert_eq!(h.bounds(), &[10.0, 20.0]);
            assert_eq!(h.count(), 2);
        });
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        // Run in a dedicated thread-agnostic way: flip off, record, flip
        // back on. Unique name keeps this observable regardless of other
        // tests' ordering.
        set_enabled(false);
        counter_add("test.m.disabled", 1.0);
        set_enabled(true);
        assert_eq!(snapshot().get("test.m.disabled"), None);
    }

    #[test]
    fn snapshot_renders_to_json() {
        with_metrics(|| {
            counter_add("test.m.json_counter", 3.0);
            let json = snapshot().to_json();
            assert_eq!(
                json.get("test.m.json_counter").and_then(Json::as_f64),
                Some(3.0)
            );
        });
    }
}
