//! Pluggable event sinks and the global sink registry.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::event::{current_thread_hash, thread_name, Event, EventKind, FieldValue};
use crate::json::Json;

/// A destination for telemetry events.
///
/// Sinks must be cheap and infallible from the caller's point of view:
/// I/O errors are swallowed (telemetry must never fail the simulation it
/// observes).
pub trait Sink: Send + Sync {
    /// Delivers one event.
    fn record(&self, event: &Event);
    /// Flushes buffered output (no-op by default).
    fn flush(&self) {}
}

/// The global sink registry. Events broadcast to every installed sink.
static SINKS: Mutex<Vec<(u64, Arc<dyn Sink>)>> = Mutex::new(Vec::new());
/// Cached "any sink installed" flag, readable without the lock.
static EVENTS_ON: AtomicBool = AtomicBool::new(false);
/// Monotone ids for sink registrations.
static NEXT_SINK_ID: AtomicU64 = AtomicU64::new(1);
/// Global event sequence counter.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Telemetry state is always consistent even if a panicking test poisoned
/// the mutex: recover the guard and keep going.
fn sinks() -> MutexGuard<'static, Vec<(u64, Arc<dyn Sink>)>> {
    SINKS.lock().unwrap_or_else(PoisonError::into_inner)
}

/// True when at least one sink is installed (fast atomic check — the
/// instrumentation's early-out).
#[must_use]
pub fn events_enabled() -> bool {
    EVENTS_ON.load(Ordering::Relaxed)
}

/// Installs a sink; events flow to it until the returned guard drops.
#[must_use = "the sink is removed when the guard drops"]
pub fn install_sink(sink: Arc<dyn Sink>) -> SinkGuard {
    let id = NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed);
    let mut registry = sinks();
    registry.push((id, sink));
    EVENTS_ON.store(true, Ordering::Relaxed);
    SinkGuard { ids: vec![id] }
}

/// Removes the guarded sinks on drop (flushing each first). One guard can
/// own several sinks: [`init_from_env`] installs every comma-separated
/// spec under a single guard.
#[derive(Debug)]
pub struct SinkGuard {
    ids: Vec<u64>,
}

impl SinkGuard {
    /// Folds another guard's sinks into this one (both are then removed
    /// when `self` drops).
    pub fn merge(&mut self, mut other: SinkGuard) {
        self.ids.append(&mut other.ids);
    }
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let mut registry = sinks();
        for owned in self.ids.drain(..) {
            if let Some(at) = registry.iter().position(|(id, _)| *id == owned) {
                let (_, sink) = registry.remove(at);
                sink.flush();
            }
        }
        EVENTS_ON.store(!registry.is_empty(), Ordering::Relaxed);
    }
}

/// Broadcasts a fully-formed event to every sink. Callers are expected to
/// have checked [`events_enabled`] first; this re-checks cheaply anyway.
pub fn dispatch(event: &Event) {
    if !events_enabled() {
        return;
    }
    let registry = sinks();
    for (_, sink) in registry.iter() {
        sink.record(event);
    }
}

/// Claims the next global sequence number.
#[must_use]
pub fn next_seq() -> u64 {
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Flushes every installed sink (bench binaries call this before exit).
pub fn flush_all() {
    let registry = sinks();
    for (_, sink) in registry.iter() {
        sink.flush();
    }
}

/// Pretty-printer for interactive runs: one line per event on stderr,
/// indented by span depth.
#[derive(Debug, Default)]
pub struct StderrSink {
    /// The end-of-run summary must print once even though flush runs
    /// both at manifest capture and at sink-guard drop.
    summarized: AtomicBool,
}

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        let indent = "  ".repeat(event.depth);
        let mut line = format!("[telemetry] {indent}{} {}", event.kind.id(), event.name);
        if let Some(ns) = event.wall_ns {
            let ms = ns as f64 / 1e6;
            line.push_str(&format!(" ({ms:.3} ms)"));
        }
        for (key, value) in &event.fields {
            line.push_str(&format!(" {key}={}", value.to_json().render()));
        }
        eprintln!("{line}");
    }

    /// On flush (end of run), summarize every registered histogram with
    /// count/mean and bucket-derived p50/p90/p99/p999 — the interactive
    /// counterpart of the quantiles the manifest snapshot stores — plus a
    /// one-line pool utilisation digest when the run used the execution
    /// pool.
    fn flush(&self) {
        if self.summarized.swap(true, Ordering::Relaxed) {
            return;
        }
        let snapshot = crate::metrics::snapshot();
        for (name, metric) in &snapshot.metrics {
            let crate::metrics::Metric::Histogram(h) = metric else {
                continue;
            };
            let (Some(p50), Some(p90), Some(p99), Some(p999)) = (
                h.quantile(0.5),
                h.quantile(0.9),
                h.quantile(0.99),
                h.quantile(0.999),
            ) else {
                continue; // empty histogram: nothing to summarize
            };
            let mean = h.mean().unwrap_or(f64::NAN);
            eprintln!(
                "[telemetry] histogram {name}: n={} mean={mean:.4} p50={p50:.4} p90={p90:.4} p99={p99:.4} p999={p999:.4}",
                h.count(),
            );
        }
        let scalar = |name: &str| match snapshot.get(name) {
            Some(crate::metrics::Metric::Counter(v) | crate::metrics::Metric::Gauge(v)) => {
                Some(*v)
            }
            _ => None,
        };
        if let (Some(batches), Some(jobs)) = (
            scalar("runtime.pool.batches"),
            scalar("runtime.pool.jobs"),
        ) {
            let mut line = format!(
                "[telemetry] pool: {batches:.0} parallel region(s), {jobs:.0} job(s)"
            );
            if let Some(depth) = scalar("runtime.pool.max_queue_depth") {
                line.push_str(&format!(", max queue depth {depth:.0}"));
            }
            if let Some(crate::metrics::Metric::Histogram(h)) =
                snapshot.get("runtime.pool.steal_ratio")
            {
                if let Some(mean) = h.mean() {
                    line.push_str(&format!(", mean steal ratio {mean:.3}"));
                }
            }
            eprintln!("{line}");
        }
        // A fully-hit (or fully-missed) run only ever creates one of the
        // two counters; the absent one reads as zero.
        let hits = scalar("runtime.cache.hits");
        let misses = scalar("runtime.cache.misses");
        if hits.is_some() || misses.is_some() {
            let (hits, misses) = (hits.unwrap_or(0.0), misses.unwrap_or(0.0));
            let total = hits + misses;
            if total > 0.0 {
                eprintln!(
                    "[telemetry] cache: {hits:.0} hit(s) / {misses:.0} miss(es) ({:.1}% hit rate)",
                    100.0 * hits / total,
                );
            }
        }
        let self_time = crate::span::self_time_snapshot();
        if !self_time.is_empty() {
            eprintln!(
                "[telemetry] self-time (top {} of {} stacks):",
                self_time.len().min(5),
                self_time.len(),
            );
            for entry in self_time.iter().take(5) {
                eprintln!(
                    "[telemetry]   {:<40} calls={:>6} self={:>10.3} ms total={:>10.3} ms",
                    entry.stack,
                    entry.count,
                    entry.self_ns as f64 / 1e6,
                    entry.total_ns as f64 / 1e6,
                );
            }
        }
    }
}

/// JSONL file sink: one compact JSON object per line.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the output file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // Telemetry never fails the host program; a full disk just loses
        // events.
        let _ = writeln!(writer, "{}", event.to_json().render());
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writer.flush();
    }
}

/// Chrome/Perfetto trace-event exporter (`SELFHEAL_TELEMETRY=trace:<path>`).
///
/// Buffers every event in memory and, on flush, rewrites the output file
/// as one strict-JSON trace (`{"traceEvents": [...]}`) that loads in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
///
/// * spans become `B`/`E` (duration begin/end) pairs on the emitting
///   thread's timeline row;
/// * `event!` points become thread-scoped instants (`ph: "i"`);
/// * `trace_counter!` samples become counter tracks (`ph: "C"`);
/// * threads that called [`crate::register_thread_name`] (the runtime
///   pool's workers do) get `thread_name` metadata, so a `fig5 --threads 8`
///   run shows one labelled row per worker.
///
/// Thread ids are remapped to small integers in order of first
/// appearance (tid 0 is whichever thread emitted first — in practice the
/// main thread, since it opens the first span before the pool spins up).
/// Flushing is idempotent: the buffer is kept so a later flush rewrites
/// the file with strictly more events.
#[derive(Debug)]
pub struct ChromeTraceSink {
    path: PathBuf,
    events: Mutex<Vec<Event>>,
}

impl ChromeTraceSink {
    /// Creates the sink and verifies the output file is writable now
    /// (truncating it), so a bad path fails at init rather than at the
    /// end of a long run.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: &Path) -> io::Result<Self> {
        File::create(path)?;
        Ok(ChromeTraceSink {
            path: path.to_path_buf(),
            events: Mutex::new(Vec::new()),
        })
    }

    /// Renders the buffered events as a Chrome trace-event JSON document.
    fn render(&self) -> String {
        let events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        // Remap thread hashes to compact tids in order of first appearance.
        let mut tids: Vec<u64> = Vec::new();
        let tid_of = |thread: u64, tids: &mut Vec<u64>| -> f64 {
            match tids.iter().position(|&t| t == thread) {
                Some(at) => at as f64,
                None => {
                    tids.push(thread);
                    (tids.len() - 1) as f64
                }
            }
        };
        let mut trace: Vec<Json> = Vec::new();
        for event in events.iter() {
            let tid = tid_of(event.thread, &mut tids);
            let ts_us = event.ts_ns as f64 / 1e3;
            let mut pairs = vec![
                ("name".to_string(), Json::String(event.name.clone())),
                ("ph".to_string(), Json::String(phase_of(event.kind).to_string())),
                ("ts".to_string(), Json::Number(ts_us)),
                ("pid".to_string(), Json::Number(1.0)),
                ("tid".to_string(), Json::Number(tid)),
            ];
            if event.kind == EventKind::Point {
                // Thread-scoped instant: a tick on the emitting row only.
                pairs.push(("s".to_string(), Json::String("t".to_string())));
            }
            if matches!(event.kind, EventKind::FlowStart | EventKind::FlowEnd) {
                // Flow arrows pair by (cat, name, id); the end binds to
                // its enclosing slice (`bp: "e"`) so viewers draw the
                // arrow into the executing span rather than past it.
                let flow_id = event
                    .fields
                    .iter()
                    .find_map(|(k, v)| match (k.as_str(), v) {
                        ("flow_id", FieldValue::U64(id)) => Some(*id),
                        _ => None,
                    })
                    .unwrap_or(0);
                pairs.push(("cat".to_string(), Json::String("flow".to_string())));
                pairs.push(("id".to_string(), Json::Number(flow_id as f64)));
                if event.kind == EventKind::FlowEnd {
                    pairs.push(("bp".to_string(), Json::String("e".to_string())));
                }
            }
            if !event.fields.is_empty() {
                pairs.push((
                    "args".to_string(),
                    Json::object(
                        event
                            .fields
                            .iter()
                            .map(|(k, v)| (k.clone(), v.to_json()))
                            .collect(),
                    ),
                ));
            }
            trace.push(Json::object(pairs));
        }
        // Name the rows: registered names (pool workers, harness threads)
        // win; anonymous threads keep a stable hash-derived label.
        for (tid, thread) in tids.iter().enumerate() {
            let label =
                thread_name(*thread).unwrap_or_else(|| format!("thread-{thread:016x}"));
            trace.push(Json::object(vec![
                ("name".to_string(), Json::String("thread_name".to_string())),
                ("ph".to_string(), Json::String("M".to_string())),
                ("pid".to_string(), Json::Number(1.0)),
                ("tid".to_string(), Json::Number(tid as f64)),
                (
                    "args".to_string(),
                    Json::object(vec![("name".to_string(), Json::String(label))]),
                ),
            ]));
        }
        trace.push(Json::object(vec![
            ("name".to_string(), Json::String("process_name".to_string())),
            ("ph".to_string(), Json::String("M".to_string())),
            ("pid".to_string(), Json::Number(1.0)),
            (
                "args".to_string(),
                Json::object(vec![(
                    "name".to_string(),
                    Json::String("selfheal".to_string()),
                )]),
            ),
        ]));
        Json::object(vec![
            ("traceEvents".to_string(), Json::Array(trace)),
            (
                "displayTimeUnit".to_string(),
                Json::String("ms".to_string()),
            ),
        ])
        .render()
    }
}

/// The trace-event phase character for each event kind.
fn phase_of(kind: EventKind) -> &'static str {
    match kind {
        EventKind::SpanStart => "B",
        EventKind::SpanEnd => "E",
        EventKind::Point => "i",
        EventKind::Counter => "C",
        EventKind::FlowStart => "s",
        EventKind::FlowEnd => "f",
    }
}

impl Sink for ChromeTraceSink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }

    fn flush(&self) {
        // Whole-file rewrite keeps the output valid JSON at every flush.
        let _ = std::fs::write(&self.path, self.render());
    }
}

/// In-memory collector for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// A fresh, empty collector.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(MemorySink::default())
    }

    /// Removes and returns every collected event.
    #[must_use]
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Removes and returns the events emitted by the calling thread —
    /// the isolation primitive for tests running under a parallel harness.
    #[must_use]
    pub fn drain_current_thread(&self) -> Vec<Event> {
        let me = current_thread_hash();
        let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let (mine, others): (Vec<Event>, Vec<Event>) =
            std::mem::take(&mut *events).into_iter().partition(|e| e.thread == me);
        *events = others;
        mine
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// The environment variable holding the sink configuration.
pub const ENV_VAR: &str = "SELFHEAL_TELEMETRY";

/// Configures sinks from `SELFHEAL_TELEMETRY` — a comma-separated list
/// of specs, installed under one guard:
///
/// * unset / empty / `off` — no sink (returns `None`);
/// * `pretty` or `stderr` — the stderr pretty-printer;
/// * `jsonl:<path>` — the JSONL file sink;
/// * `trace:<path>` — the Chrome/Perfetto trace exporter;
/// * `timeseries:<path>` — not an event sink: records the sampled
///   time-series JSONL path for the next
///   [`crate::timeseries::Sampler`] start.
///
/// Unrecognized specs and file-creation failures print one warning to
/// stderr and are skipped — a typo in an env var must not kill a
/// multi-hour simulation. Returns `None` when no event sink was
/// installed (a lone `timeseries:` spec still takes effect).
#[must_use = "the sink is removed when the guard drops"]
pub fn init_from_env() -> Option<SinkGuard> {
    let value = std::env::var(ENV_VAR).ok()?;
    let mut guard: Option<SinkGuard> = None;
    let add = |g: SinkGuard, guard: &mut Option<SinkGuard>| match guard {
        Some(existing) => existing.merge(g),
        None => *guard = Some(g),
    };
    for spec in value.split(',') {
        match spec.trim() {
            "" | "off" => {}
            "pretty" | "stderr" => {
                add(install_sink(Arc::new(StderrSink::default())), &mut guard);
            }
            spec => {
                if let Some(path) = spec.strip_prefix("jsonl:") {
                    match JsonlSink::create(Path::new(path)) {
                        Ok(sink) => add(install_sink(Arc::new(sink)), &mut guard),
                        Err(err) => {
                            eprintln!("[telemetry] cannot open {path}: {err}; spec skipped");
                        }
                    }
                } else if let Some(path) = spec.strip_prefix("trace:") {
                    match ChromeTraceSink::create(Path::new(path)) {
                        Ok(sink) => add(install_sink(Arc::new(sink)), &mut guard),
                        Err(err) => {
                            eprintln!("[telemetry] cannot open {path}: {err}; spec skipped");
                        }
                    }
                } else if let Some(path) = spec.strip_prefix("timeseries:") {
                    crate::timeseries::set_jsonl_path(Some(PathBuf::from(path)));
                } else {
                    eprintln!(
                        "[telemetry] unrecognized {ENV_VAR} spec {spec:?}; expected off | pretty | jsonl:<path> | trace:<path> | timeseries:<path>"
                    );
                }
            }
        }
    }
    guard
}

/// A scratch file path under the target directory (used by doc examples
/// and tests; respects `TMPDIR` indirectly via [`std::env::temp_dir`]).
#[must_use]
pub fn scratch_path(file_name: &str) -> PathBuf {
    std::env::temp_dir().join(file_name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, FieldValue};

    fn sample_event(name: &str) -> Event {
        Event {
            kind: EventKind::Point,
            name: name.to_string(),
            span_id: 0,
            parent_id: 0,
            depth: 0,
            seq: next_seq(),
            ts_ns: crate::event::trace_epoch_ns(),
            thread: current_thread_hash(),
            wall_ns: None,
            fields: vec![("k".to_string(), FieldValue::U64(1))],
        }
    }

    #[test]
    fn install_dispatch_drop_cycle() {
        let memory = MemorySink::new();
        {
            let _guard = install_sink(memory.clone());
            assert!(events_enabled());
            dispatch(&sample_event("a"));
        }
        let mine = memory.drain_current_thread();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].name, "a");
        // After the guard dropped, dispatch is a no-op for this sink.
        dispatch(&sample_event("b"));
        assert!(memory.drain_current_thread().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = scratch_path(&format!(
            "selfheal-telemetry-test-{}.jsonl",
            current_thread_hash()
        ));
        {
            let sink = JsonlSink::create(&path).expect("test value");
            sink.record(&sample_event("x"));
            sink.record(&sample_event("y"));
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("test value");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let json = crate::json::parse(line).expect("test value");
            assert_eq!(json.get("kind").and_then(crate::json::Json::as_str), Some("event"));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chrome_trace_sink_emits_valid_trace_events() {
        let path = scratch_path(&format!(
            "selfheal-telemetry-trace-{}.json",
            current_thread_hash()
        ));
        {
            let sink = ChromeTraceSink::create(&path).expect("test value");
            let span = Event {
                kind: EventKind::SpanStart,
                name: "phase".to_string(),
                ..sample_event("phase")
            };
            sink.record(&span);
            sink.record(&sample_event("tick"));
            sink.record(&Event {
                kind: EventKind::Counter,
                fields: vec![("value".to_string(), FieldValue::F64(3.0))],
                ..sample_event("queue_depth")
            });
            sink.record(&Event {
                kind: EventKind::SpanEnd,
                wall_ns: Some(10),
                ..span
            });
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("test value");
        let json = crate::json::parse(&text).expect("strict JSON");
        let Some(Json::Array(trace)) = json.get("traceEvents") else {
            panic!("traceEvents array present: {text}");
        };
        let phases: Vec<&str> = trace
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        // B/E pair, instant, counter, then metadata rows.
        assert_eq!(phases, vec!["B", "i", "C", "E", "M", "M"]);
        let counter = &trace[2];
        assert_eq!(
            counter
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        let instant = &trace[1];
        assert_eq!(instant.get("s").and_then(Json::as_str), Some("t"));
        // All four events came from this thread: one shared compact tid.
        let tids: Vec<f64> = trace[..4]
            .iter()
            .filter_map(|e| e.get("tid").and_then(Json::as_f64))
            .collect();
        assert_eq!(tids, vec![0.0; 4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chrome_trace_flow_events_pair_by_id() {
        let path = scratch_path(&format!(
            "selfheal-telemetry-trace-flow-{}.json",
            current_thread_hash()
        ));
        {
            let sink = ChromeTraceSink::create(&path).expect("test value");
            for kind in [EventKind::FlowStart, EventKind::FlowEnd] {
                sink.record(&Event {
                    kind,
                    fields: vec![("flow_id".to_string(), FieldValue::U64(42))],
                    ..sample_event("runtime.pool.job")
                });
            }
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).expect("test value");
        let json = crate::json::parse(&text).expect("strict JSON");
        let Some(Json::Array(trace)) = json.get("traceEvents") else {
            panic!("traceEvents array present: {text}");
        };
        let start = &trace[0];
        assert_eq!(start.get("ph").and_then(Json::as_str), Some("s"));
        assert_eq!(start.get("cat").and_then(Json::as_str), Some("flow"));
        assert_eq!(start.get("id").and_then(Json::as_f64), Some(42.0));
        assert_eq!(start.get("bp"), None);
        let end = &trace[1];
        assert_eq!(end.get("ph").and_then(Json::as_str), Some("f"));
        assert_eq!(end.get("id").and_then(Json::as_f64), Some(42.0));
        // The end binds to its enclosing slice so the arrow lands on it.
        assert_eq!(end.get("bp").and_then(Json::as_str), Some("e"));
        // Both ends share the (cat, name) pair viewers match on.
        assert_eq!(end.get("cat").and_then(Json::as_str), Some("flow"));
        assert_eq!(end.get("name"), start.get("name"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chrome_trace_flush_is_idempotent_and_names_threads() {
        let path = scratch_path(&format!(
            "selfheal-telemetry-trace-names-{}.json",
            current_thread_hash()
        ));
        {
            let sink = ChromeTraceSink::create(&path).expect("test value");
            crate::event::register_thread_name("trace-test-main");
            sink.record(&sample_event("a"));
            sink.flush();
            sink.flush(); // second flush rewrites, must stay valid
        }
        let text = std::fs::read_to_string(&path).expect("test value");
        let json = crate::json::parse(&text).expect("strict JSON");
        let Some(Json::Array(trace)) = json.get("traceEvents") else {
            panic!("traceEvents array present");
        };
        let named = trace.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("thread_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("trace-test-main")
        });
        assert!(named, "thread_name metadata present: {text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn memory_sink_thread_isolation() {
        let memory = MemorySink::new();
        let _guard = install_sink(memory.clone());
        dispatch(&sample_event("mine"));
        let other = {
            let memory = memory.clone();
            std::thread::spawn(move || {
                memory.record(&Event {
                    thread: current_thread_hash(),
                    ..sample_event("theirs")
                });
            })
        };
        other.join().expect("helper thread");
        let mine = memory.drain_current_thread();
        assert!(mine.iter().all(|e| e.name == "mine"), "{mine:?}");
    }
}
