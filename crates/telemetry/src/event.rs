//! Events: the unit of data every sink consumes.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crate::json::Json;

/// A typed field value attached to an event or span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A float (physical quantities enter telemetry as raw unit values).
    F64(f64),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
}

impl FieldValue {
    /// Converts to the JSON representation.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            FieldValue::F64(v) => Json::Number(*v),
            // Telemetry counts stay far below 2^53, so the f64 mapping is
            // exact for every value this workspace produces.
            FieldValue::I64(v) => Json::Number(*v as f64),
            FieldValue::U64(v) => Json::Number(*v as f64),
            FieldValue::Bool(v) => Json::Bool(*v),
            FieldValue::Str(v) => Json::String(v.clone()),
        }
    }
}

macro_rules! impl_from {
    ($($ty:ty => $variant:ident via $conv:expr),* $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(value: $ty) -> Self {
                #[allow(clippy::redundant_closure_call)]
                FieldValue::$variant(($conv)(value))
            }
        })*
    };
}

impl_from! {
    f64 => F64 via |v| v,
    f32 => F64 via f64::from,
    i64 => I64 via |v| v,
    i32 => I64 via i64::from,
    u64 => U64 via |v| v,
    u32 => U64 via u64::from,
    usize => U64 via |v| v as u64,
    bool => Bool via |v| v,
    &str => Str via str::to_string,
    String => Str via |v| v,
}

/// A named field.
pub type Field = (&'static str, FieldValue);

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An instantaneous observation (`event!`).
    Point,
    /// A span opened (`span!` guard created).
    SpanStart,
    /// A span closed (guard dropped); carries the wall-clock duration.
    SpanEnd,
    /// A sampled counter value (`trace_counter!`) — rendered as a counter
    /// track by the Chrome trace sink, one JSONL line elsewhere.
    Counter,
    /// The producing end of an async flow (`ph: "s"` in trace exports):
    /// marks where work was enqueued. Carries a `flow_id` field pairing
    /// it with its [`EventKind::FlowEnd`].
    FlowStart,
    /// The consuming end of an async flow (`ph: "f"`): marks where the
    /// enqueued work actually ran, possibly on another thread. Trace
    /// viewers draw an arrow from the matching [`EventKind::FlowStart`].
    FlowEnd,
}

impl EventKind {
    /// Stable identifier used in JSON output.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            EventKind::Point => "event",
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::FlowStart => "flow_start",
            EventKind::FlowEnd => "flow_end",
        }
    }
}

/// One telemetry event, as delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What kind of record this is.
    pub kind: EventKind,
    /// The event or span name.
    pub name: String,
    /// Id of the span this event belongs to (its own id for span events,
    /// the enclosing span's for points; 0 when outside any span).
    pub span_id: u64,
    /// Id of the enclosing span (0 at the root).
    pub parent_id: u64,
    /// Nesting depth (0 for root spans and top-level points).
    pub depth: usize,
    /// Global monotone sequence number (total order across threads).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch ([`trace_epoch_ns`]) at
    /// emission — the timeline position trace exports plot events at.
    pub ts_ns: u64,
    /// Hash of the emitting thread's id — lets collectors running under a
    /// multi-threaded test harness separate interleaved streams.
    pub thread: u64,
    /// Wall-clock duration in nanoseconds ([`EventKind::SpanEnd`] only).
    pub wall_ns: Option<u128>,
    /// The attached key/value fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Renders the event as a JSON object (one JSONL line).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("kind".to_string(), Json::String(self.kind.id().to_string())),
            ("name".to_string(), Json::String(self.name.clone())),
            ("span_id".to_string(), Json::Number(self.span_id as f64)),
            ("parent_id".to_string(), Json::Number(self.parent_id as f64)),
            ("depth".to_string(), Json::Number(self.depth as f64)),
            ("seq".to_string(), Json::Number(self.seq as f64)),
            ("ts_ns".to_string(), Json::Number(self.ts_ns as f64)),
        ];
        if let Some(ns) = self.wall_ns {
            pairs.push(("wall_ns".to_string(), Json::Number(ns as f64)));
        }
        if !self.fields.is_empty() {
            pairs.push((
                "fields".to_string(),
                Json::object(
                    self.fields
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ));
        }
        Json::object(pairs)
    }
}

/// A stable hash of the current thread's id.
#[must_use]
pub fn current_thread_hash() -> u64 {
    let mut hasher = DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    hasher.finish()
}

/// The process trace epoch: the `Instant` every event timestamp is
/// measured from, pinned on first use.
static TRACE_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds elapsed since the process trace epoch. Monotone within a
/// thread and comparable across threads (one shared `Instant` origin);
/// the first caller anchors the epoch at zero.
#[must_use]
pub fn trace_epoch_ns() -> u64 {
    // analyzer: trust(clock): trace timestamps are observability-only —
    // they label events and spans but never flow into computed results.
    let epoch = TRACE_EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Human-readable names for threads, keyed by [`current_thread_hash`].
/// Pool workers register here so trace exports label their timeline rows.
static THREAD_NAMES: Mutex<BTreeMap<u64, String>> = Mutex::new(BTreeMap::new());

fn thread_names() -> MutexGuard<'static, BTreeMap<u64, String>> {
    THREAD_NAMES.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Names the calling thread for trace exports (last registration wins —
/// thread ids can be reused after a thread exits).
pub fn register_thread_name(name: &str) {
    thread_names().insert(current_thread_hash(), name.to_string());
}

/// The registered name for a thread hash, if any.
#[must_use]
pub fn thread_name(hash: u64) -> Option<String> {
    thread_names().get(&hash).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_conversions_cover_the_common_types() {
        assert_eq!(FieldValue::from(1.5f64), FieldValue::F64(1.5));
        assert_eq!(FieldValue::from(-3i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(7usize), FieldValue::U64(7));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".to_string()));
    }

    #[test]
    fn event_json_shape() {
        let event = Event {
            kind: EventKind::SpanEnd,
            name: "recovery_phase".to_string(),
            span_id: 3,
            parent_id: 1,
            depth: 1,
            seq: 42,
            ts_ns: 7,
            thread: 9,
            wall_ns: Some(1500),
            fields: vec![("vddr_mv".to_string(), FieldValue::F64(-300.0))],
        };
        let json = event.to_json();
        assert_eq!(json.get("kind").and_then(Json::as_str), Some("span_end"));
        assert_eq!(json.get("wall_ns").and_then(Json::as_f64), Some(1500.0));
        let fields = json.get("fields").expect("test value");
        assert_eq!(fields.get("vddr_mv").and_then(Json::as_f64), Some(-300.0));
    }

    #[test]
    fn point_event_omits_duration() {
        let event = Event {
            kind: EventKind::Point,
            name: "chamber.set".to_string(),
            span_id: 0,
            parent_id: 0,
            depth: 0,
            seq: 1,
            ts_ns: 0,
            thread: 2,
            wall_ns: None,
            fields: Vec::new(),
        };
        let json = event.to_json();
        assert!(json.get("wall_ns").is_none());
        assert!(json.get("fields").is_none());
    }

    #[test]
    fn thread_hash_is_stable_within_a_thread() {
        assert_eq!(current_thread_hash(), current_thread_hash());
    }

    #[test]
    fn trace_epoch_is_monotone() {
        let a = trace_epoch_ns();
        let b = trace_epoch_ns();
        assert!(b >= a);
    }

    #[test]
    fn thread_names_register_and_resolve() {
        register_thread_name("event-test-thread");
        assert_eq!(
            thread_name(current_thread_hash()).as_deref(),
            Some("event-test-thread")
        );
        assert_eq!(thread_name(u64::MAX), None, "unregistered hash");
    }
}
