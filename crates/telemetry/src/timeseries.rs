//! Streaming time-series telemetry: the periodic sampler, per-metric ring
//! buffers, the JSONL time-series export and the Prometheus
//! text-exposition status file.
//!
//! Everything else in this crate produces *end-of-run* artifacts; this
//! module is the live half. A background sampler thread snapshots the
//! metrics registry (plus any registered live [`register_probe`] values)
//! at a configurable cadence and fans each tick out to four surfaces:
//!
//! * fixed-capacity **ring buffers** per metric (`series_snapshot`,
//!   summarized into run manifests),
//! * a **JSONL** time-series file (`SELFHEAL_TELEMETRY=timeseries:<path>`),
//! * an atomically-rewritten **Prometheus text-exposition** status file
//!   (`--status <path>` on bench binaries; `selfheal-top` tails it),
//! * **Chrome-trace counter tracks** (via [`crate::emit_counter`]), so
//!   Perfetto shows queue depth and cache hit-rate *over time*.
//!
//! # Determinism
//!
//! The sampler is strictly *read-only* with respect to the metrics
//! registry and the span ledgers: probe values flow into rings, files
//! and trace counters, never back into metrics. Simulation results and
//! manifest metric snapshots are therefore bit-identical with sampling
//! on or off — pinned by `tests/runtime_determinism.rs`. Wall-clock
//! access goes through the crate's single trusted chokepoint
//! ([`crate::trace_epoch_ns`]); the only other nondeterminism is the
//! sampling cadence itself, which is why everything the sampler writes
//! lands in surfaces `manifest_diff` ignores.

use std::collections::{BTreeMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use crate::event::trace_epoch_ns;
use crate::json::Json;
use crate::metrics::{self, Metric};

/// The environment variable holding the sampling cadence (`250ms`, `2s`,
/// `off`). Setting it enables the sampler even without a `--status` path
/// or JSONL export, so ring buffers fill for the manifest summary.
pub const SAMPLE_ENV_VAR: &str = "SELFHEAL_TELEMETRY_SAMPLE";

/// Default sampling cadence when outputs are requested but no cadence is
/// configured.
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(250);

/// Ring-buffer capacity per series: at the default 250 ms cadence this
/// holds the trailing ~8.5 minutes; older points fall off the front.
const RING_CAPACITY: usize = 2048;

/// One sampled point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Nanoseconds since the process trace epoch (same clock as
    /// `Event.ts_ns`).
    pub ts_ns: u64,
    /// The sampled value.
    pub value: f64,
}

/// A fixed-capacity ring of sampled points for one metric.
#[derive(Debug, Clone, Default)]
struct Ring {
    points: VecDeque<SeriesPoint>,
}

impl Ring {
    fn push(&mut self, point: SeriesPoint) {
        if self.points.len() == RING_CAPACITY {
            self.points.pop_front();
        }
        self.points.push_back(point);
    }
}

/// End-of-run summary of one series, reported by [`summaries`] and
/// embedded in run manifests (where `manifest_diff` auto-ignores it —
/// sampling cadence is wall-clock dependent by nature).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSummary {
    /// Metric name (dotted, as registered).
    pub name: String,
    /// Number of retained points.
    pub points: usize,
    /// Smallest sampled value.
    pub min: f64,
    /// Largest sampled value.
    pub max: f64,
    /// Arithmetic mean of the retained points.
    pub mean: f64,
    /// Most recent sampled value.
    pub last: f64,
}

impl SeriesSummary {
    /// JSON object with the per-metric summary fields.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object(vec![
            ("points".to_string(), Json::Number(self.points as f64)),
            ("min".to_string(), Json::Number(self.min)),
            ("max".to_string(), Json::Number(self.max)),
            ("mean".to_string(), Json::Number(self.mean)),
            ("last".to_string(), Json::Number(self.last)),
        ])
    }
}

/// The ring-buffer store. Locked briefly per tick; never held across any
/// other lock acquisition (the registry snapshot completes first).
static SERIES: Mutex<BTreeMap<String, Ring>> = Mutex::new(BTreeMap::new());

fn series_store() -> MutexGuard<'static, BTreeMap<String, Ring>> {
    SERIES.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A live-value probe: sampled by the sampler thread each tick. Returning
/// `None` unregisters the probe (probes holding `Weak` references to
/// pool internals expire this way when the pool is dropped).
type Probe = Box<dyn Fn() -> Option<f64> + Send + Sync>;

/// Registered probes, sampled in registration order.
static PROBES: Mutex<Vec<(String, Probe)>> = Mutex::new(Vec::new());

fn probe_store() -> MutexGuard<'static, Vec<(String, Probe)>> {
    PROBES.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Registers a live-value probe under `name`, replacing any existing
/// probe with the same name (a new global pool supersedes the old one's
/// probes). The probe runs on the sampler thread; it must be cheap and
/// must not touch the metrics registry. Return `None` to unregister.
pub fn register_probe(name: &str, probe: impl Fn() -> Option<f64> + Send + Sync + 'static) {
    let mut probes = probe_store();
    probes.retain(|(existing, _)| existing != name);
    probes.push((name.to_string(), Box::new(probe)));
}

/// Samples every registered probe, pruning the expired ones.
fn sample_probes() -> Vec<(String, f64)> {
    let mut probes = probe_store();
    let mut values = Vec::with_capacity(probes.len());
    probes.retain(|(name, probe)| match probe() {
        Some(value) => {
            values.push((name.clone(), value));
            true
        }
        None => false,
    });
    values
}

/// Clears every ring buffer (bench runs call this at start so manifests
/// summarize only their own run).
pub fn reset_series() {
    series_store().clear();
}

/// A copy of every ring buffer's retained points.
#[must_use]
pub fn series_snapshot() -> BTreeMap<String, Vec<SeriesPoint>> {
    series_store()
        .iter()
        .map(|(name, ring)| (name.clone(), ring.points.iter().copied().collect()))
        .collect()
}

/// Per-series min/max/mean/last summaries, deterministically ordered by
/// name — the manifest's `timeseries` section.
#[must_use]
pub fn summaries() -> Vec<SeriesSummary> {
    series_snapshot()
        .into_iter()
        .filter(|(_, points)| !points.is_empty())
        .map(|(name, points)| {
            let values: Vec<f64> = points.iter().map(|p| p.value).collect();
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut sum = 0.0;
            for v in &values {
                min = if v.total_cmp(&min).is_lt() { *v } else { min };
                max = if v.total_cmp(&max).is_gt() { *v } else { max };
                sum += v;
            }
            SeriesSummary {
                name,
                points: values.len(),
                min,
                max,
                mean: sum / values.len() as f64,
                last: *values.last().expect("filtered non-empty"),
            }
        })
        .collect()
}

/// Parses a human cadence: `250ms`, `2s`, `1500us`. `None` for anything
/// else (including `off`, zero and negatives).
#[must_use]
pub fn parse_interval(spec: &str) -> Option<Duration> {
    let spec = spec.trim();
    let (digits, unit): (&str, fn(u64) -> Duration) = if let Some(n) = spec.strip_suffix("ms") {
        (n, Duration::from_millis)
    } else if let Some(n) = spec.strip_suffix("us") {
        (n, Duration::from_micros)
    } else if let Some(n) = spec.strip_suffix('s') {
        (n, Duration::from_secs)
    } else {
        return None;
    };
    let count: u64 = digits.trim().parse().ok()?;
    (count > 0).then(|| unit(count))
}

/// Reads `SELFHEAL_TELEMETRY_SAMPLE` — the sampler's one environment
/// chokepoint. The cadence only modulates *when* read-only samples are
/// taken, never what the simulation computes, so it cannot perturb
/// deterministic results.
fn sample_env() -> Option<String> {
    // analyzer: trust(env): sampling cadence only affects observation timing, not simulation state
    std::env::var(SAMPLE_ENV_VAR).ok()
}

/// The JSONL time-series path configured via
/// `SELFHEAL_TELEMETRY=timeseries:<path>` (stored by
/// [`crate::init_from_env`], consumed by [`SamplerConfig::from_env`]).
static JSONL_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Records the JSONL export path for the next sampler start.
pub fn set_jsonl_path(path: Option<PathBuf>) {
    *JSONL_PATH.lock().unwrap_or_else(PoisonError::into_inner) = path;
}

fn jsonl_path() -> Option<PathBuf> {
    JSONL_PATH
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Sampler configuration: cadence plus the optional export surfaces.
#[derive(Debug, Clone, Default)]
pub struct SamplerConfig {
    /// Sampling cadence; `None` means "not explicitly configured" (the
    /// default [`DEFAULT_INTERVAL`] applies if an output enables the
    /// sampler).
    pub interval: Option<Duration>,
    /// JSONL time-series output path.
    pub jsonl: Option<PathBuf>,
    /// Prometheus text-exposition status-file path.
    pub status: Option<PathBuf>,
}

impl SamplerConfig {
    /// Builds a config from `SELFHEAL_TELEMETRY_SAMPLE` (cadence) and the
    /// `timeseries:<path>` spec recorded by [`crate::init_from_env`].
    #[must_use]
    pub fn from_env() -> SamplerConfig {
        let interval = sample_env().as_deref().and_then(parse_interval);
        SamplerConfig {
            interval,
            jsonl: jsonl_path(),
            status: None,
        }
    }

    /// Sets the status-file path (`--status <path>`).
    #[must_use]
    pub fn with_status(mut self, path: Option<PathBuf>) -> SamplerConfig {
        self.status = path;
        self
    }

    /// Whether anything asked for sampling: an explicit cadence or any
    /// output surface.
    #[must_use]
    pub fn should_run(&self) -> bool {
        self.interval.is_some() || self.jsonl.is_some() || self.status.is_some()
    }

    /// The effective cadence.
    #[must_use]
    pub fn effective_interval(&self) -> Duration {
        self.interval.unwrap_or(DEFAULT_INTERVAL)
    }
}

/// Shared state between the sampler handle and its thread.
struct SamplerShared {
    stop: Mutex<bool>,
    wake: Condvar,
}

/// Handle to the background sampler thread. Sampling runs from
/// [`Sampler::start`] until [`Sampler::stop`] (or drop), which takes one
/// final sample before joining so even sub-cadence runs export a
/// complete last tick.
pub struct Sampler {
    shared: Arc<SamplerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Sampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sampler").finish_non_exhaustive()
    }
}

impl Sampler {
    /// Spawns the sampler thread. Returns `None` when the config requests
    /// no sampling, or when a requested output file cannot be created
    /// (one warning on stderr — telemetry must never kill the run).
    #[must_use]
    pub fn start(config: SamplerConfig) -> Option<Sampler> {
        if !config.should_run() {
            return None;
        }
        let mut jsonl = None;
        if let Some(path) = &config.jsonl {
            match File::create(path) {
                Ok(file) => jsonl = Some(BufWriter::new(file)),
                Err(err) => {
                    eprintln!(
                        "[telemetry] cannot open time-series file {}: {err}; export disabled",
                        path.display(),
                    );
                }
            }
        }
        let shared = Arc::new(SamplerShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let interval = config.effective_interval();
        let status = config.status.clone();
        let thread = std::thread::Builder::new()
            .name("selfheal-sampler".to_string())
            .spawn(move || {
                crate::event::register_thread_name("selfheal-sampler");
                let mut jsonl = jsonl;
                loop {
                    sample_tick(&mut jsonl, status.as_deref());
                    let guard = thread_shared
                        .stop
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    let (guard, _) = thread_shared
                        .wake
                        .wait_timeout(guard, interval)
                        .unwrap_or_else(PoisonError::into_inner);
                    if *guard {
                        drop(guard);
                        // Final tick: the exported tail reflects end-of-run
                        // state even when the run is shorter than one period.
                        sample_tick(&mut jsonl, status.as_deref());
                        break;
                    }
                }
            });
        match thread {
            Ok(thread) => Some(Sampler {
                shared,
                thread: Some(thread),
            }),
            Err(err) => {
                eprintln!("[telemetry] cannot spawn sampler thread: {err}; sampling disabled");
                None
            }
        }
    }

    /// Stops the sampler: takes a final sample, flushes the exports and
    /// joins the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(thread) = self.thread.take() else {
            return;
        };
        *self
            .shared
            .stop
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.shared.wake.notify_all();
        let _ = thread.join();
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One sampling tick: read probes, snapshot the registry, fan out to the
/// rings, the trace counter tracks, the JSONL export and the status file.
/// Strictly read-only against the metrics registry.
fn sample_tick(jsonl: &mut Option<BufWriter<File>>, status: Option<&Path>) {
    let ts_ns = trace_epoch_ns();
    let probes = sample_probes();
    let snapshot = metrics::snapshot();
    let mut values: Vec<(String, f64)> = probes.clone();
    for (name, metric) in &snapshot.metrics {
        match metric {
            Metric::Counter(v) | Metric::Gauge(v) => values.push((name.clone(), *v)),
            Metric::Histogram(h) => {
                values.push((format!("{name}.count"), h.count() as f64));
                if let Some(mean) = h.mean() {
                    values.push((format!("{name}.mean"), mean));
                }
                if let Some(p99) = h.quantile(0.99) {
                    values.push((format!("{name}.p99"), p99));
                }
            }
        }
    }
    values.sort_by(|a, b| a.0.cmp(&b.0));
    values.dedup_by(|a, b| a.0 == b.0);
    store_points(ts_ns, &values);
    // Live probe values become Chrome-trace counter tracks, alongside a
    // derived cache hit-rate track: the Perfetto "over time" view.
    for (name, value) in &probes {
        crate::emit_counter(name, *value);
    }
    if let Some(rate) = cache_hit_rate(&snapshot) {
        crate::emit_counter("runtime.cache.hit_rate", rate);
    }
    // An all-empty tick (before the first metric registers) carries no
    // information: skip the JSONL line. The status file still rewrites
    // below — it doubles as the liveness heartbeat for dashboards.
    if let (Some(writer), false) = (jsonl.as_mut(), values.is_empty()) {
        let line = Json::object(vec![
            ("ts_ns".to_string(), Json::Number(ts_ns as f64)),
            (
                "metrics".to_string(),
                Json::object(
                    values
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::Number(*value)))
                        .collect(),
                ),
            ),
        ]);
        // A full disk loses samples, never the run.
        let _ = writeln!(writer, "{}", line.render());
        let _ = writer.flush();
    }
    if let Some(path) = status {
        write_status_file(path, ts_ns, &snapshot, &probes);
    }
}

/// Derived cache hit rate from the registry counters (absent counter
/// reads as zero; `None` until any cache traffic exists).
fn cache_hit_rate(snapshot: &metrics::MetricsSnapshot) -> Option<f64> {
    let scalar = |name: &str| match snapshot.get(name) {
        Some(Metric::Counter(v) | Metric::Gauge(v)) => Some(*v),
        _ => None,
    };
    let hits = scalar("runtime.cache.hits");
    let misses = scalar("runtime.cache.misses");
    if hits.is_none() && misses.is_none() {
        return None;
    }
    let (hits, misses) = (hits.unwrap_or(0.0), misses.unwrap_or(0.0));
    let total = hits + misses;
    (total > 0.0).then(|| hits / total)
}

/// Appends one tick's values into the ring buffers.
fn store_points(ts_ns: u64, values: &[(String, f64)]) {
    let mut store = series_store();
    for (name, value) in values {
        store
            .entry(name.clone())
            .or_default()
            .push(SeriesPoint {
                ts_ns,
                value: *value,
            });
    }
}

/// Sanitizes a dotted metric name into a Prometheus metric name:
/// `runtime.pool.queue_depth` → `selfheal_runtime_pool_queue_depth`.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("selfheal_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Formats a sample value the way Prometheus expects (`+Inf`, `-Inf`,
/// `NaN`, plain decimal otherwise).
fn format_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Renders the full Prometheus text exposition for one sample tick:
/// every registry metric (histograms as cumulative `_bucket`/`_sum`/
/// `_count` families), every probe value as a gauge, the sample
/// timestamp (`selfheal_sample_ts_ns`, the clock `selfheal-top` derives
/// rates against) and the top self-time spans as labelled gauges.
#[must_use]
pub fn render_exposition(
    ts_ns: u64,
    snapshot: &metrics::MetricsSnapshot,
    probes: &[(String, f64)],
) -> String {
    let mut out = String::new();
    let mut emit = |name: &str, kind: &str, lines: &[String]| {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
    };
    emit(
        "selfheal_sample_ts_ns",
        "gauge",
        &[format!("selfheal_sample_ts_ns {}", format_value(ts_ns as f64))],
    );
    for (name, value) in probes {
        let name = prometheus_name(name);
        emit(&name, "gauge", &[format!("{name} {}", format_value(*value))]);
    }
    for (name, metric) in &snapshot.metrics {
        // A probe with the same name owns the family (live beats
        // registry); skip the registry copy to keep names unique.
        if probes.iter().any(|(p, _)| p == name) {
            continue;
        }
        let prom = prometheus_name(name);
        match metric {
            Metric::Counter(v) => {
                emit(&prom, "counter", &[format!("{prom} {}", format_value(*v))]);
            }
            Metric::Gauge(v) => {
                emit(&prom, "gauge", &[format!("{prom} {}", format_value(*v))]);
            }
            Metric::Histogram(h) => {
                let mut lines = Vec::new();
                for (le, cumulative) in h.cumulative_buckets() {
                    lines.push(format!(
                        "{prom}_bucket{{le=\"{}\"}} {cumulative}",
                        format_value(le),
                    ));
                }
                lines.push(format!("{prom}_bucket{{le=\"+Inf\"}} {}", h.count()));
                lines.push(format!("{prom}_sum {}", format_value(h.approx_sum())));
                lines.push(format!("{prom}_count {}", h.count()));
                emit(&prom, "histogram", &lines);
            }
        }
    }
    let self_time = crate::span::self_time_snapshot();
    if !self_time.is_empty() {
        out.push_str("# TYPE selfheal_span_self_seconds gauge\n");
        for entry in self_time.iter().take(5) {
            out.push_str(&format!(
                "selfheal_span_self_seconds{{stack=\"{}\"}} {}\n",
                escape_label(&entry.stack),
                format_value(entry.self_ns as f64 / 1e9),
            ));
        }
    }
    out
}

/// Renders the exposition and atomically replaces the status file
/// (sibling tmp + rename), so a concurrent `selfheal-top` never reads a
/// torn write.
fn write_status_file(
    path: &Path,
    ts_ns: u64,
    snapshot: &metrics::MetricsSnapshot,
    probes: &[(String, f64)],
) {
    let text = render_exposition(ts_ns, snapshot, probes);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    // Same-directory rename is atomic; errors lose one status update,
    // never the run.
    if std::fs::write(&tmp, text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// One parsed exposition sample: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric (or family member) name, e.g. `selfheal_foo_bucket`.
    pub name: String,
    /// Label key/value pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A parsed Prometheus text exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// `# TYPE` declarations: family name → type string.
    pub types: BTreeMap<String, String>,
    /// Every sample line, in order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of the first label-free sample with this exact name.
    #[must_use]
    pub fn value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }

    /// Every sample whose name matches exactly.
    #[must_use]
    pub fn samples_named<'a>(&'a self, name: &str) -> Vec<&'a Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    (first.is_ascii_alphabetic() || first == '_' || first == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_metric_name(&key) {
            return Err(format!("line {line_no}: bad label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (at, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(at);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: expected ',' between labels"));
        }
    }
    Ok(labels)
}

/// Parses (and thereby validates) a Prometheus text exposition — the
/// tiny in-tree parser backing `selfheal-top` and the CI smoke check.
///
/// Accepts the subset this crate emits: `# TYPE`/`# HELP`/comment lines
/// and `name{labels} value` samples. Rejects malformed metric names,
/// label syntax and unparseable values.
///
/// # Errors
///
/// A human-readable description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    for (at, line) in text.lines().enumerate() {
        let line_no = at + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            if words.next() == Some("TYPE") {
                let name = words
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a name"))?;
                let kind = words
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without a type"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: bad metric name {name:?}"));
                }
                if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                    return Err(format!("line {line_no}: unknown type {kind:?}"));
                }
                exposition.types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, labels, value_part) = if let Some(open) = line.find('{') {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
            if close < open {
                return Err(format!("line {line_no}: mismatched braces"));
            }
            (
                &line[..open],
                parse_labels(&line[open + 1..close], line_no)?,
                line[close + 1..].trim(),
            )
        } else {
            let mut parts = line.splitn(2, char::is_whitespace);
            let name = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: empty sample"))?;
            (name, Vec::new(), parts.next().unwrap_or("").trim())
        };
        let name = name_part.trim();
        if !valid_metric_name(name) {
            return Err(format!("line {line_no}: bad metric name {name:?}"));
        }
        // An optional trailing timestamp is permitted by the format; we
        // take the first token as the value.
        let value_token = value_part
            .split_whitespace()
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without a value"))?;
        let value: f64 = value_token
            .parse()
            .map_err(|_| format!("line {line_no}: bad value {value_token:?}"))?;
        exposition.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    if exposition.samples.is_empty() {
        return Err("exposition contains no samples".to_string());
    }
    Ok(exposition)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_parsing() {
        assert_eq!(parse_interval("250ms"), Some(Duration::from_millis(250)));
        assert_eq!(parse_interval(" 2s "), Some(Duration::from_secs(2)));
        assert_eq!(parse_interval("1500us"), Some(Duration::from_micros(1500)));
        assert_eq!(parse_interval("0ms"), None);
        assert_eq!(parse_interval("off"), None);
        assert_eq!(parse_interval("250"), None);
        assert_eq!(parse_interval("-1s"), None);
    }

    #[test]
    fn ring_buffers_cap_and_summarize() {
        // Unique prefix: the store is process-global and tests run in
        // parallel.
        reset_series();
        let mut store = series_store();
        let ring = store.entry("test.ts.ring".to_string()).or_default();
        for i in 0..(RING_CAPACITY + 10) {
            ring.push(SeriesPoint {
                ts_ns: i as u64,
                value: i as f64,
            });
        }
        assert_eq!(ring.points.len(), RING_CAPACITY);
        assert_eq!(ring.points.front().expect("non-empty").ts_ns, 10);
        drop(store);
        let summary = summaries()
            .into_iter()
            .find(|s| s.name == "test.ts.ring")
            .expect("series summarized");
        assert_eq!(summary.points, RING_CAPACITY);
        assert_eq!(summary.min, 10.0);
        assert_eq!(summary.max, (RING_CAPACITY + 9) as f64);
        assert_eq!(summary.last, (RING_CAPACITY + 9) as f64);
    }

    #[test]
    fn probes_sample_and_expire() {
        register_probe("test.ts.probe_live", || Some(7.0));
        register_probe("test.ts.probe_dead", || None);
        let values = sample_probes();
        assert!(values.contains(&("test.ts.probe_live".to_string(), 7.0)));
        assert!(values.iter().all(|(n, _)| n != "test.ts.probe_dead"));
        // The dead probe was pruned; re-sampling sees only live ones.
        assert!(probe_store().iter().all(|(n, _)| n != "test.ts.probe_dead"));
        // Replacement: same name re-registered supersedes.
        register_probe("test.ts.probe_live", || Some(9.0));
        let values = sample_probes();
        assert_eq!(
            values
                .iter()
                .filter(|(n, _)| n == "test.ts.probe_live")
                .count(),
            1
        );
        assert!(values.contains(&("test.ts.probe_live".to_string(), 9.0)));
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let mut h = crate::metrics::Histogram::new();
        for v in [0.5, 1.0, 2.5, -1.0] {
            h.observe(v);
        }
        let mut snapshot = crate::metrics::MetricsSnapshot::default();
        snapshot
            .metrics
            .insert("test.ts.counter".to_string(), Metric::Counter(3.0));
        snapshot
            .metrics
            .insert("test.ts.hist".to_string(), Metric::Histogram(h.clone()));
        let probes = vec![("test.ts.depth".to_string(), 4.0)];
        let text = render_exposition(123, &snapshot, &probes);
        let parsed = parse_exposition(&text).expect("valid exposition");
        assert_eq!(parsed.value("selfheal_sample_ts_ns"), Some(123.0));
        assert_eq!(parsed.value("selfheal_test_ts_counter"), Some(3.0));
        assert_eq!(parsed.value("selfheal_test_ts_depth"), Some(4.0));
        assert_eq!(
            parsed.types.get("selfheal_test_ts_hist").map(String::as_str),
            Some("histogram")
        );
        assert_eq!(parsed.value("selfheal_test_ts_hist_count"), Some(4.0));
        let buckets = parsed.samples_named("selfheal_test_ts_hist_bucket");
        let inf = buckets
            .iter()
            .find(|s| s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf"))
            .expect("+Inf bucket");
        assert_eq!(inf.value, 4.0);
        // Cumulative counts ascend in le order (as rendered).
        let counts: Vec<f64> = buckets.iter().map(|s| s.value).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn exposition_rejects_malformed_input() {
        assert!(parse_exposition("").is_err(), "no samples");
        assert!(parse_exposition("9bad_name 1.0").is_err(), "bad name");
        assert!(parse_exposition("x{le=unquoted} 1").is_err(), "bad label");
        assert!(parse_exposition("x 1.0.0").is_err(), "bad value");
        assert!(parse_exposition("x{le=\"a\"").is_err(), "unterminated");
        assert!(parse_exposition("# TYPE x wavelet\nx 1").is_err(), "type");
    }

    #[test]
    fn label_escapes_round_trip() {
        let text = "m{stack=\"a;\\\"q\\\";b\\\\c\\nd\"} 2\n";
        let parsed = parse_exposition(text).expect("valid");
        assert_eq!(
            parsed.samples[0].labels,
            vec![("stack".to_string(), "a;\"q\";b\\c\nd".to_string())]
        );
        // And the escaper produces what the parser consumes.
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(
            prometheus_name("runtime.pool.queue_depth"),
            "selfheal_runtime_pool_queue_depth"
        );
        assert!(valid_metric_name(&prometheus_name("x-y.z/w 1")));
    }

    #[test]
    fn sampler_lifecycle_ticks_and_stops() {
        let dir = std::env::temp_dir();
        let unique = crate::event::current_thread_hash();
        let jsonl = dir.join(format!("selfheal-ts-{unique}.jsonl"));
        let status = dir.join(format!("selfheal-ts-{unique}.prom"));
        crate::metrics::set_enabled(true);
        crate::metrics::counter_add("test.ts.lifecycle", 5.0);
        let sampler = Sampler::start(SamplerConfig {
            interval: Some(Duration::from_millis(10)),
            jsonl: Some(jsonl.clone()),
            status: Some(status.clone()),
        })
        .expect("sampler starts");
        std::thread::sleep(Duration::from_millis(40));
        sampler.stop();
        let text = std::fs::read_to_string(&jsonl).expect("jsonl written");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "at least first+final ticks: {lines:?}");
        let mut last_ts = -1.0;
        for line in &lines {
            let json = crate::json::parse(line).expect("valid JSONL");
            let ts = json.get("ts_ns").and_then(Json::as_f64).expect("ts_ns");
            assert!(ts >= last_ts, "timestamps monotone");
            last_ts = ts;
            assert!(json.get("metrics").is_some());
        }
        let status_text = std::fs::read_to_string(&status).expect("status written");
        let parsed = parse_exposition(&status_text).expect("valid exposition");
        assert!(parsed.value("selfheal_sample_ts_ns").is_some());
        assert!(parsed.value("selfheal_test_ts_lifecycle").is_some());
        // The rings filled too.
        assert!(series_snapshot().contains_key("test.ts.lifecycle"));
        std::fs::remove_file(&jsonl).ok();
        std::fs::remove_file(&status).ok();
    }
}
