//! selfheal-telemetry: zero-dependency observability for the self-healing
//! simulation stack.
//!
//! Three cooperating layers, all off by default and gated behind single
//! atomic loads so instrumented hot paths cost nothing when unobserved:
//!
//! * **Spans** ([`span!`]) — hierarchical wall-clock timed regions with
//!   key=value fields, broadcast to pluggable [`Sink`]s (stderr
//!   pretty-printer, JSONL file, in-memory collector for tests).
//!   Completed root spans feed the phase ledger that manifests report.
//! * **Metrics** ([`counter!`], [`gauge!`], [`histogram!`]) — named
//!   aggregates (trap occupancy, RO frequency, per-core `ΔVth`, scheduler
//!   decisions) in a process-global registry.
//! * **Manifests** ([`RunManifest`]) — the end-of-run record: config
//!   hash, git revision, per-phase durations and a metrics snapshot.
//!
//! Sinks are configured programmatically ([`install_sink`]) or from the
//! `SELFHEAL_TELEMETRY` environment variable ([`init_from_env`]):
//!
//! ```text
//! SELFHEAL_TELEMETRY=pretty               # human-readable span tree on stderr
//! SELFHEAL_TELEMETRY=jsonl:out.jsonl      # one JSON object per event
//! SELFHEAL_TELEMETRY=trace:out.json       # Chrome/Perfetto trace export
//! SELFHEAL_TELEMETRY=timeseries:ts.jsonl  # sampled time-series (see below)
//! SELFHEAL_TELEMETRY=pretty,trace:t.json  # comma-separated: several at once
//! ```
//!
//! A fourth layer streams *time-resolved* metrics while the run is
//! still going: the [`timeseries`] module's background sampler snapshots
//! the registry at a `SELFHEAL_TELEMETRY_SAMPLE` cadence and exports
//! ring buffers, a JSONL series, Chrome-trace counter tracks and a
//! Prometheus text-exposition status file that `selfheal-top` tails.
//!
//! # Example
//!
//! ```
//! use selfheal_telemetry as telemetry;
//!
//! let sink = telemetry::MemorySink::new();
//! let _guard = telemetry::install_sink(sink.clone());
//! telemetry::metrics::set_enabled(true);
//!
//! {
//!     let _phase = telemetry::span!("recovery_phase", vddr_mv = -300.0);
//!     telemetry::counter!("doc.heal_cycles", 1.0);
//!     telemetry::event!("chamber.set", celsius = 85.0);
//! }
//!
//! let events = sink.drain_current_thread();
//! assert_eq!(events.len(), 3); // span_start, point event, span_end
//! let manifest = telemetry::RunManifest::capture("doc", "config");
//! assert_eq!(manifest.phases[0].name, "recovery_phase");
//! ```

#![forbid(unsafe_code)]

pub mod event;
pub mod flight;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod timeseries;

pub use event::{
    current_thread_hash, register_thread_name, thread_name, trace_epoch_ns, Event, EventKind,
    Field, FieldValue,
};
pub use flight::{FlightRecord, FlightRecorder};
pub use json::Json;
pub use manifest::{fnv1a, git_describe, RunManifest};
pub use metrics::{counter_add, gauge_set, histogram_observe, Histogram, Metric, MetricsSnapshot};
pub use sink::{
    events_enabled, flush_all, init_from_env, install_sink, ChromeTraceSink, JsonlSink,
    MemorySink, Sink, SinkGuard, StderrSink, ENV_VAR,
};
pub use span::{
    render_folded, reset_self_time, self_time_snapshot, take_phase_timings, take_self_time,
    PhaseTiming, SelfTimeEntry, Span,
};
pub use timeseries::{
    parse_exposition, parse_interval, register_probe, render_exposition, Exposition, Sampler,
    SamplerConfig, SeriesPoint, SeriesSummary, SAMPLE_ENV_VAR,
};

/// True when any telemetry consumer is active: a sink is installed or the
/// metrics registry is recording. Span guards arm themselves on this (the
/// phase ledger must fill whenever a manifest will be captured), so bench
/// binaries call [`metrics::set_enabled`] even when no sink is attached.
#[must_use]
pub fn telemetry_enabled() -> bool {
    sink::events_enabled() || metrics::enabled()
}

/// Emits a point event attached to the current span. Prefer the
/// [`event!`] macro, which skips field construction when no sink is
/// installed.
pub fn emit_point(name: &str, fields: Vec<Field>) {
    if !sink::events_enabled() {
        return;
    }
    let (span_id, depth) = span::current_span_id();
    sink::dispatch(&Event {
        kind: EventKind::Point,
        name: name.to_string(),
        span_id,
        parent_id: span_id,
        depth,
        seq: sink::next_seq(),
        ts_ns: event::trace_epoch_ns(),
        thread: current_thread_hash(),
        wall_ns: None,
        fields: fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    });
}

/// Emits a counter-sample event (a point on a counter track in trace
/// exports). Prefer the [`trace_counter!`] macro, which skips value
/// evaluation when no sink is installed.
pub fn emit_counter(name: &str, value: f64) {
    if !sink::events_enabled() {
        return;
    }
    let (span_id, depth) = span::current_span_id();
    sink::dispatch(&Event {
        kind: EventKind::Counter,
        name: name.to_string(),
        span_id,
        parent_id: span_id,
        depth,
        seq: sink::next_seq(),
        ts_ns: event::trace_epoch_ns(),
        thread: current_thread_hash(),
        wall_ns: None,
        fields: vec![("value".to_string(), FieldValue::F64(value))],
    });
}

/// Allocates a process-unique id pairing one [`emit_flow_start`] with
/// its [`emit_flow_end`].
#[must_use]
pub fn next_flow_id() -> u64 {
    static NEXT_FLOW_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
    NEXT_FLOW_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Emits the producing end of an async flow (work enqueued here). Trace
/// exports render the start/end pair as an arrow from the enqueue site
/// to wherever [`emit_flow_end`] fires with the same `flow_id`.
pub fn emit_flow_start(name: &str, flow_id: u64) {
    emit_flow(EventKind::FlowStart, name, flow_id);
}

/// Emits the consuming end of an async flow (enqueued work ran here).
pub fn emit_flow_end(name: &str, flow_id: u64) {
    emit_flow(EventKind::FlowEnd, name, flow_id);
}

fn emit_flow(kind: EventKind, name: &str, flow_id: u64) {
    if !sink::events_enabled() {
        return;
    }
    let (span_id, depth) = span::current_span_id();
    sink::dispatch(&Event {
        kind,
        name: name.to_string(),
        span_id,
        parent_id: span_id,
        depth,
        seq: sink::next_seq(),
        ts_ns: event::trace_epoch_ns(),
        thread: current_thread_hash(),
        wall_ns: None,
        fields: vec![("flow_id".to_string(), FieldValue::U64(flow_id))],
    });
}

/// Opens a timed span: `span!("recovery_phase", vddr_mv = -300.0)`.
///
/// Binds the returned guard (`let _phase = span!(...)`); the span closes
/// when the guard drops. Field values are any type with
/// `Into<FieldValue>` (floats, integers, bools, strings) and are not even
/// evaluated while telemetry is off.
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::telemetry_enabled() {
            $crate::Span::enter(
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            )
        } else {
            $crate::Span::disabled()
        }
    };
}

/// Emits an instantaneous point event: `event!("chamber.set", celsius = 85.0)`.
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::events_enabled() {
            $crate::emit_point(
                $name,
                vec![$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}

/// Samples a value onto a named counter *track* for trace exports:
/// `trace_counter!("runtime.pool.queue_depth", depth)`. Unlike
/// [`counter!`] (a metrics-registry aggregate), this emits a timestamped
/// event that the Chrome trace sink renders as a counter graph; the value
/// expression is not evaluated while no sink is installed.
#[macro_export]
macro_rules! trace_counter {
    ($name:expr, $value:expr $(,)?) => {
        if $crate::events_enabled() {
            $crate::emit_counter($name, f64::from($value));
        }
    };
}

/// Adds to a named counter: `counter!("bti.td.emission_events", n)`.
/// The delta expression is not evaluated while metrics are off.
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr $(,)?) => {
        if $crate::metrics::enabled() {
            $crate::metrics::counter_add($name, f64::from($delta));
        }
    };
}

/// Sets a named gauge: `gauge!("multicore.worst_delta_vth_mv", mv)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr $(,)?) => {
        if $crate::metrics::enabled() {
            $crate::metrics::gauge_set($name, f64::from($value));
        }
    };
}

/// Observes into a named mergeable log-bucketed histogram:
/// `histogram!("fpga.ro.frequency_mhz", mhz)`. Buckets are geometric
/// (≈ 4.4 % relative width), so no per-site bounds are needed.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr $(,)?) => {
        if $crate::metrics::enabled() {
            $crate::metrics::histogram_observe($name, f64::from($value));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_are_inert_when_telemetry_is_off() {
        // No sink installed on this thread's view and metrics toggled off:
        // the span macro must hand back a disarmed guard and the metric
        // macros must not evaluate their value expressions.
        metrics::set_enabled(false);
        if sink::events_enabled() {
            // Another test currently holds a sink; skip the inertness
            // check rather than racing it.
            metrics::set_enabled(true);
            return;
        }
        let mut evaluated = false;
        let span = span!("off", x = 1.0);
        assert_eq!(span.id(), 0);
        counter!("test.lib.never", {
            evaluated = true;
            1.0
        });
        assert!(!evaluated, "counter! must not evaluate its delta when off");
        metrics::set_enabled(true);
    }

    #[test]
    fn span_macro_records_fields_and_nesting() {
        let memory = MemorySink::new();
        let _guard = install_sink(memory.clone());
        {
            let _outer = span!("macro_outer", mode = "dvs", cores = 4usize);
            event!("macro_point", ok = true);
        }
        let events = memory.drain_current_thread();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(
            events[0].fields,
            vec![
                ("mode".to_string(), FieldValue::Str("dvs".to_string())),
                ("cores".to_string(), FieldValue::U64(4)),
            ]
        );
        let point = &events[1];
        assert_eq!(point.kind, EventKind::Point);
        assert_eq!(point.span_id, events[0].span_id);
        assert_eq!(point.depth, 1, "point sits inside the open span");
    }

    #[test]
    fn metric_macros_feed_the_registry() {
        metrics::set_enabled(true);
        counter!("test.lib.counter", 2.0);
        gauge!("test.lib.gauge", 7.5);
        histogram!("test.lib.hist", 3.0);
        let snap = metrics::snapshot();
        assert_eq!(snap.get("test.lib.counter"), Some(&Metric::Counter(2.0)));
        assert_eq!(snap.get("test.lib.gauge"), Some(&Metric::Gauge(7.5)));
        assert!(matches!(
            snap.get("test.lib.hist"),
            Some(&Metric::Histogram(_))
        ));
    }
}
