//! Run manifests: the machine-readable summary every bench binary and
//! Study/Experiment run writes on completion.
//!
//! A manifest captures *what ran and what came out*: a hash of the
//! configuration, the source revision, per-phase wall-clock durations
//! (drained from the span phase ledger) and a snapshot of the metrics
//! registry, plus arbitrary named result values the caller attaches.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::Json;
use crate::metrics::{self, MetricsSnapshot};
use crate::span::{self, PhaseTiming, SelfTimeEntry};
use crate::timeseries::{self, SeriesSummary};

/// 64-bit FNV-1a over arbitrary bytes — the config-hash function.
///
/// Deterministic across runs and platforms (unlike `DefaultHasher`), so
/// two runs of the same configuration produce the same hash and diffs in
/// manifest files mean real config changes.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `git describe --always --dirty` for the working tree, if git and a
/// repository are available (`None` otherwise — e.g. from an unpacked
/// source tarball).
#[must_use]
pub fn git_describe() -> Option<String> {
    let output = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !output.status.success() {
        return None;
    }
    let text = String::from_utf8(output.stdout).ok()?;
    let trimmed = text.trim();
    (!trimmed.is_empty()).then(|| trimmed.to_string())
}

/// The completed-run record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Name of the run (bench binary, experiment or study name).
    pub name: String,
    /// FNV-1a hash (hex) of the caller's configuration debug string.
    pub config_hash: String,
    /// `git describe --always --dirty`, when available.
    pub git_describe: Option<String>,
    /// Unix timestamp (seconds) at capture.
    pub created_unix_s: u64,
    /// Per-phase wall-clock durations, in completion order.
    pub phases: Vec<PhaseTiming>,
    /// Self-time profile at capture: per folded call stack, call counts
    /// and total vs. self wall-clock (largest self time first). Unlike
    /// `phases` this is *not* drained — it is a snapshot of the ledger
    /// accumulated since the last [`crate::reset_self_time`].
    pub self_time: Vec<SelfTimeEntry>,
    /// Snapshot of the metrics registry at capture.
    pub metrics: MetricsSnapshot,
    /// Per-metric summaries of the sampled time-series ring buffers
    /// (empty when the sampler never ran). Wall-clock shaped —
    /// `manifest_diff` auto-ignores the whole section.
    pub timeseries: Vec<SeriesSummary>,
    /// Arbitrary named result values the caller attached.
    pub values: BTreeMap<String, Json>,
}

impl RunManifest {
    /// Captures a manifest for the named run: drains the calling thread's
    /// phase ledger, snapshots the metrics registry, stamps time and
    /// revision, and hashes `config_repr` (conventionally the `{config:?}`
    /// debug rendering — any stable string representation works).
    #[must_use]
    pub fn capture(name: &str, config_repr: &str) -> RunManifest {
        RunManifest {
            name: name.to_string(),
            config_hash: format!("{:016x}", fnv1a(config_repr.as_bytes())),
            git_describe: git_describe(),
            created_unix_s: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            phases: span::take_phase_timings(),
            self_time: span::self_time_snapshot(),
            metrics: metrics::snapshot(),
            timeseries: timeseries::summaries(),
            values: BTreeMap::new(),
        }
    }

    /// Attaches a named result value (builder style).
    #[must_use]
    pub fn with_value(mut self, key: &str, value: Json) -> RunManifest {
        self.values.insert(key.to_string(), value);
        self
    }

    /// Attaches a named numeric result value (builder style).
    #[must_use]
    pub fn with_number(self, key: &str, value: f64) -> RunManifest {
        self.with_value(key, Json::Number(value))
    }

    /// The JSON representation.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let phases = Json::Array(
            self.phases
                .iter()
                .map(|p| {
                    Json::object(vec![
                        ("name".to_string(), Json::String(p.name.clone())),
                        ("wall_s".to_string(), Json::Number(p.wall_s)),
                        ("self_s".to_string(), Json::Number(p.self_s)),
                    ])
                })
                .collect(),
        );
        let self_time = Json::Array(
            self.self_time
                .iter()
                .map(|e| {
                    Json::object(vec![
                        ("stack".to_string(), Json::String(e.stack.clone())),
                        ("name".to_string(), Json::String(e.name.clone())),
                        ("count".to_string(), Json::Number(e.count as f64)),
                        ("total_ns".to_string(), Json::Number(e.total_ns as f64)),
                        ("self_ns".to_string(), Json::Number(e.self_ns as f64)),
                    ])
                })
                .collect(),
        );
        Json::object(vec![
            ("name".to_string(), Json::String(self.name.clone())),
            (
                "config_hash".to_string(),
                Json::String(self.config_hash.clone()),
            ),
            (
                "git_describe".to_string(),
                self.git_describe
                    .as_ref()
                    .map_or(Json::Null, |d| Json::String(d.clone())),
            ),
            (
                "created_unix_s".to_string(),
                Json::Number(self.created_unix_s as f64),
            ),
            ("phases".to_string(), phases),
            ("self_time".to_string(), self_time),
            ("metrics".to_string(), self.metrics.to_json()),
            (
                "timeseries".to_string(),
                Json::object(
                    self.timeseries
                        .iter()
                        .map(|s| (s.name.clone(), s.to_json()))
                        .collect(),
                ),
            ),
            (
                "values".to_string(),
                Json::object(self.values.clone().into_iter().collect()),
            ),
        ])
    }

    /// Pretty-printed JSON (what `--json` prints and `write_to` stores).
    #[must_use]
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// Writes the manifest to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.render() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn capture_drains_phases_and_hashes_config() {
        let _ = span::take_phase_timings(); // isolate from earlier tests
        {
            let _phase = Span::enter("warmup", Vec::new());
        }
        let manifest =
            RunManifest::capture("test_run", "Config { x: 1 }").with_number("answer", 42.0);
        assert_eq!(manifest.name, "test_run");
        assert_eq!(manifest.config_hash.len(), 16);
        assert_eq!(manifest.phases.len(), 1);
        assert_eq!(manifest.phases[0].name, "warmup");
        // Same config → same hash; different config → different hash.
        let again = RunManifest::capture("test_run", "Config { x: 1 }");
        assert_eq!(manifest.config_hash, again.config_hash);
        let other = RunManifest::capture("test_run", "Config { x: 2 }");
        assert_ne!(manifest.config_hash, other.config_hash);
        // The attached value round-trips through JSON.
        let json = manifest.to_json();
        assert_eq!(
            json.get("values")
                .and_then(|v| v.get("answer"))
                .and_then(Json::as_f64),
            Some(42.0)
        );
    }

    #[test]
    fn manifest_json_round_trips_through_the_parser() {
        let _ = span::take_phase_timings();
        {
            let _phase = Span::enter("measure", Vec::new());
        }
        let manifest = RunManifest::capture("roundtrip", "cfg").with_number("metric_x", 1.25);
        let rendered = manifest.render();
        let parsed = crate::json::parse(&rendered).expect("manifest parses");
        assert_eq!(
            parsed.get("name").and_then(Json::as_str),
            Some("roundtrip")
        );
        let phases = parsed.get("phases").and_then(Json::as_array).expect("test value");
        assert_eq!(phases.len(), 1);
        assert_eq!(
            phases[0].get("name").and_then(Json::as_str),
            Some("measure")
        );
    }

    #[test]
    fn write_to_creates_parent_directories() {
        let dir = crate::sink::scratch_path(&format!(
            "selfheal-manifest-test-{}",
            crate::event::current_thread_hash()
        ));
        let path = dir.join("nested").join("manifest.json");
        let manifest = RunManifest::capture("writer", "cfg");
        manifest.write_to(&path).expect("write manifest");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(crate::json::parse(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
