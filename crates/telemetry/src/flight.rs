//! Flight recorder: a fixed-capacity ring of the most recent structured
//! events, always cheap enough to leave on.
//!
//! Long-lived services (the fleet daemon) cannot afford to persist every
//! span, but a crash with *nothing* behind it is worse. The recorder
//! keeps the last N records — request summaries, epoch and checkpoint
//! markers, protocol errors, lifecycle marks — in memory at a cost of
//! one atomic increment plus one uncontended per-slot lock per record,
//! and dumps them as JSONL on demand: on panic (the daemon installs a
//! hook), on graceful shutdown, and on a `debug-dump` request.
//!
//! Concurrency model: writers claim a slot with a single
//! `fetch_add` on the head cursor, then fill `slots[seq % capacity]`
//! under that slot's own mutex. Two writers only ever contend on a slot
//! when one laps the other by a full ring — with a 4096-slot ring and
//! per-request recording that never happens in practice, so records are
//! wait-free in the common case and the crate-wide `forbid(unsafe_code)`
//! stands. A snapshot locks each slot briefly, sorts by claim sequence
//! and returns the retained records oldest-first.
//!
//! All recorder bytes reach the filesystem through one function,
//! [`persist`], which carries this module's single `analyzer: trust(io)`
//! annotation — the panic-hook, shutdown and `debug-dump` paths all
//! funnel through it.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::event::{current_thread_hash, trace_epoch_ns};
use crate::json::Json;

/// Ring capacity of the process-global recorder: enough history to see
/// *how* a daemon got wedged, small enough to dump in one write.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One retained record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Global claim sequence (total order across threads).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch at recording.
    pub ts_ns: u64,
    /// Hash of the recording thread's id.
    pub thread: u64,
    /// Record category (`"request"`, `"epoch"`, `"checkpoint"`,
    /// `"error"`, `"lifecycle"`, ...).
    pub kind: &'static str,
    /// Short name within the category (a request kind, a marker name).
    pub name: String,
    /// Free-form detail, already formatted.
    pub detail: String,
}

impl FlightRecord {
    /// Renders the record as one JSONL object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::object(vec![
            ("seq".to_string(), Json::Number(self.seq as f64)),
            ("ts_ns".to_string(), Json::Number(self.ts_ns as f64)),
            ("thread".to_string(), Json::Number(self.thread as f64)),
            ("kind".to_string(), Json::String(self.kind.to_string())),
            ("name".to_string(), Json::String(self.name.clone())),
            ("detail".to_string(), Json::String(self.detail.clone())),
        ])
    }
}

/// A fixed-capacity ring of [`FlightRecord`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightRecord>>>,
    head: AtomicU64,
}

impl FlightRecorder {
    /// Builds a recorder retaining the last `capacity` records
    /// (`capacity` is clamped to at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records claimed so far (monotone; not clamped to capacity).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Records currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        let claimed = self.recorded();
        usize::try_from(claimed).unwrap_or(usize::MAX).min(self.capacity())
    }

    /// True when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.recorded() == 0
    }

    /// Appends one record, evicting the oldest when the ring is full.
    pub fn record(&self, kind: &'static str, name: &str, detail: String) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let record = FlightRecord {
            seq,
            ts_ns: trace_epoch_ns(),
            thread: current_thread_hash(),
            kind,
            name: name.to_string(),
            detail,
        };
        let slot = usize::try_from(seq % self.slots.len() as u64).unwrap_or(0);
        *self.slots[slot]
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(record);
    }

    /// The retained records, oldest first (sorted by claim sequence).
    #[must_use]
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = self
            .slots
            .iter()
            .filter_map(|slot| {
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
            })
            .collect();
        records.sort_by_key(|record| record.seq);
        records
    }

    /// Renders the retained records as JSONL, oldest first.
    #[must_use]
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for record in self.snapshot() {
            out.push_str(&record.to_json().render());
            out.push('\n');
        }
        out
    }

    /// Dumps the retained records to `path` as JSONL, returning how many
    /// were written.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem write failure.
    pub fn dump_to(&self, path: &Path) -> io::Result<usize> {
        let records = self.snapshot();
        let mut out = String::new();
        for record in &records {
            out.push_str(&record.to_json().render());
            out.push('\n');
        }
        persist(path, &out)?;
        Ok(records.len())
    }
}

/// The single point where flight-recorder bytes reach the filesystem:
/// the panic hook, the shutdown path and the `debug-dump` request all
/// dump through here.
// analyzer: trust(io): the flight recorder's only filesystem write; it persists observability records post-hoc and nothing it writes ever flows back into simulation state
fn persist(path: &Path, jsonl: &str) -> io::Result<()> {
    std::fs::write(path, jsonl)
}

/// Recording toggle for the process-global recorder (on by default; the
/// overhead bench flips it to measure the disabled baseline).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables global recording.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the global recorder is recording.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-global recorder ([`DEFAULT_CAPACITY`] slots).
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_CAPACITY))
}

/// Records into the global ring; `detail` is only built while recording
/// is enabled, so instrumented paths pay one atomic load when it is off.
pub fn record(kind: &'static str, name: &str, detail: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    global().record(kind, name, detail());
}

/// Where [`dump`] writes (set once by the daemon CLI from
/// `--flight-dump`; `None` disables dumping).
static DUMP_PATH: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Configures the global dump destination.
pub fn set_dump_path(path: Option<PathBuf>) {
    *DUMP_PATH.lock().unwrap_or_else(PoisonError::into_inner) = path;
}

/// The configured dump destination, if any.
#[must_use]
pub fn dump_path() -> Option<PathBuf> {
    DUMP_PATH
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Dumps the global recorder to the configured path. Returns
/// `Ok(None)` when no path is configured, otherwise the path written
/// and the number of records.
///
/// # Errors
///
/// Propagates the filesystem write failure.
pub fn dump() -> io::Result<Option<(PathBuf, usize)>> {
    match dump_path() {
        None => Ok(None),
        Some(path) => {
            let written = global().dump_to(&path)?;
            Ok(Some((path, written)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_retains_newest_records_in_order() {
        let ring = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            ring.record("test", "tick", format!("i={i}"));
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.len(), 4);
        let snapshot = ring.snapshot();
        let seqs: Vec<u64> = snapshot.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest 4 of 10, oldest first");
        assert_eq!(snapshot[3].detail, "i=9");
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let ring = FlightRecorder::with_capacity(8);
        assert!(ring.is_empty());
        ring.record("test", "only", String::new());
        assert_eq!(ring.len(), 1);
        let snapshot = ring.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert_eq!(snapshot[0].name, "only");
        assert_eq!(snapshot[0].kind, "test");
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let ring = FlightRecorder::with_capacity(3);
        ring.record("epoch", "advance", "epoch=1".to_string());
        ring.record("request", "plan", "chip=3 us=12.5".to_string());
        let jsonl = ring.render_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let doc = crate::json::parse(line).expect("flight JSONL line parses");
            assert!(doc.get("seq").and_then(Json::as_f64).is_some());
            assert!(doc.get("ts_ns").and_then(Json::as_f64).is_some());
            assert!(doc.get("kind").and_then(Json::as_str).is_some());
        }
        let second = crate::json::parse(lines[1]).expect("parses");
        assert_eq!(second.get("name").and_then(Json::as_str), Some("plan"));
        assert_eq!(
            second.get("detail").and_then(Json::as_str),
            Some("chip=3 us=12.5")
        );
    }

    #[test]
    fn dump_writes_jsonl_to_disk() {
        let ring = FlightRecorder::with_capacity(4);
        ring.record("lifecycle", "start", "test".to_string());
        let path = std::env::temp_dir().join(format!(
            "selfheal-flight-dump-{}.jsonl",
            std::process::id()
        ));
        let written = ring.dump_to(&path).expect("dump");
        assert_eq!(written, 1);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn global_record_respects_the_toggle() {
        // The global ring is shared across tests; count deltas instead of
        // absolute contents, and only while enabled is definitely ours.
        set_enabled(false);
        let before = global().recorded();
        let mut built = false;
        record("test", "off", || {
            built = true;
            String::new()
        });
        assert_eq!(global().recorded(), before, "disabled recorder claims nothing");
        assert!(!built, "detail must not be built while disabled");
        set_enabled(true);
        record("test", "on", String::new);
        assert!(global().recorded() > before);
    }

    #[test]
    fn dump_without_a_path_is_a_no_op() {
        // Serialize against other tests touching the global path.
        let previous = dump_path();
        set_dump_path(None);
        assert_eq!(dump().expect("no-op dump"), None);
        set_dump_path(previous);
    }
}
