//! Hierarchical spans with wall-clock timing, the phase ledger that feeds
//! run manifests, and the self-time ledger behind profiling exports.
//!
//! Every armed span contributes to two ledgers on drop:
//!
//! * the **phase ledger** — completed *root* spans only, drained per
//!   thread by [`take_phase_timings`] into manifest phase entries;
//! * the **self-time ledger** — every span, keyed by its folded call
//!   stack (`parent;child;leaf`), accumulating call counts, total
//!   wall-clock and *self* wall-clock (total minus time spent in child
//!   spans). [`self_time_snapshot`] feeds the pretty sink's top-N table
//!   and the manifest's `self_time` section; [`render_folded`] emits the
//!   `flamegraph.pl`-compatible folded-stacks format.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::event::{current_thread_hash, trace_epoch_ns, Event, EventKind, Field};
use crate::sink;

/// Monotone span ids, shared across threads (0 means "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// One frame of a thread's open-span stack.
struct Frame {
    id: u64,
    /// Folded path down to this span: `root;...;name`.
    path: String,
    /// Nanoseconds spent in already-closed *direct* children.
    child_ns: u128,
}

thread_local! {
    /// The calling thread's open-span stack, innermost last.
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// One completed root span, as the manifest reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// The span's name.
    pub name: String,
    /// Wall-clock duration in seconds.
    pub wall_s: f64,
    /// Wall-clock seconds spent in the phase itself, excluding time
    /// covered by child spans.
    pub self_s: f64,
}

/// Completed *root* spans (depth 0), in completion order, tagged with the
/// emitting thread so manifests can be captured per thread.
static PHASE_LEDGER: Mutex<Vec<(u64, PhaseTiming)>> = Mutex::new(Vec::new());

fn ledger() -> MutexGuard<'static, Vec<(u64, PhaseTiming)>> {
    PHASE_LEDGER.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Drains the calling thread's completed root-span timings — called by
/// manifest capture so consecutive runs do not bleed into each other.
#[must_use]
pub fn take_phase_timings() -> Vec<PhaseTiming> {
    let me = current_thread_hash();
    let mut entries = ledger();
    let (mine, others): (Vec<_>, Vec<_>) =
        std::mem::take(&mut *entries).into_iter().partition(|(t, _)| *t == me);
    *entries = others;
    mine.into_iter().map(|(_, timing)| timing).collect()
}

/// Accumulated timing for one folded call stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTimeEntry {
    /// The folded stack: span names from root to leaf joined by `;`.
    pub stack: String,
    /// The leaf span's name.
    pub name: String,
    /// How many spans closed on this stack.
    pub count: u64,
    /// Total wall-clock nanoseconds (including child spans).
    pub total_ns: u128,
    /// Self wall-clock nanoseconds (total minus direct children).
    pub self_ns: u128,
}

/// The self-time ledger: folded stack → accumulated timing. Global (all
/// threads fold into one profile — a pooled run's worker spans belong to
/// the same picture); [`reset_self_time`] starts a fresh accumulation.
static SELF_TIME: Mutex<BTreeMap<String, (u64, u128, u128)>> = Mutex::new(BTreeMap::new());

fn self_time() -> MutexGuard<'static, BTreeMap<String, (u64, u128, u128)>> {
    SELF_TIME.lock().unwrap_or_else(PoisonError::into_inner)
}

fn record_self_time(path: &str, total_ns: u128, self_ns: u128) {
    let mut map = self_time();
    let entry = map.entry(path.to_string()).or_insert((0, 0, 0));
    entry.0 += 1;
    entry.1 += total_ns;
    entry.2 += self_ns;
}

/// Clears the self-time ledger (run harnesses call this at start so the
/// end-of-run profile covers exactly one run).
pub fn reset_self_time() {
    self_time().clear();
}

/// A copy of the self-time ledger, sorted by self time, largest first.
#[must_use]
pub fn self_time_snapshot() -> Vec<SelfTimeEntry> {
    let map = self_time();
    let mut entries: Vec<SelfTimeEntry> = map
        .iter()
        .map(|(path, (count, total_ns, self_ns))| SelfTimeEntry {
            stack: path.clone(),
            name: path.rsplit(';').next().unwrap_or(path).to_string(),
            count: *count,
            total_ns: *total_ns,
            self_ns: *self_ns,
        })
        .collect();
    entries.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.stack.cmp(&b.stack)));
    entries
}

/// Drains the self-time ledger ([`self_time_snapshot`] then clear).
#[must_use]
pub fn take_self_time() -> Vec<SelfTimeEntry> {
    let snapshot = self_time_snapshot();
    reset_self_time();
    snapshot
}

/// Renders entries in the folded-stacks format `flamegraph.pl` consumes:
/// one `stack;path value` line per stack, value = self time in
/// microseconds (floored, minimum 1 so no sampled stack vanishes).
#[must_use]
pub fn render_folded(entries: &[SelfTimeEntry]) -> String {
    let mut out = String::new();
    for entry in entries {
        let us = (entry.self_ns / 1_000).max(1);
        out.push_str(&format!("{} {us}\n", entry.stack));
    }
    out
}

/// An open span. Created by the [`crate::span!`] macro; closing happens on
/// drop, which stamps the wall-clock duration, emits the `span_end` event
/// and records the phase timing (root spans) and self-time ledger entry.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    id: u64,
    parent_id: u64,
    depth: usize,
    name: String,
    started: Instant,
    fields: Vec<Field>,
}

impl Span {
    /// Opens a span. Prefer the [`crate::span!`] macro, which skips all
    /// work (including field construction) when telemetry is off.
    #[must_use]
    pub fn enter(name: &str, fields: Vec<Field>) -> Span {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let (parent_id, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (parent, path) = match stack.last() {
                Some(top) => (top.id, format!("{};{name}", top.path)),
                None => (0, name.to_string()),
            };
            let depth = stack.len();
            stack.push(Frame {
                id,
                path,
                child_ns: 0,
            });
            (parent, depth)
        });
        let inner = SpanInner {
            id,
            parent_id,
            depth,
            name: name.to_string(),
            started: Instant::now(),
            fields,
        };
        if sink::events_enabled() {
            sink::dispatch(&inner.event(EventKind::SpanStart, None));
        }
        Span { inner: Some(inner) }
    }

    /// A disarmed span (telemetry off): construction and drop are free.
    #[must_use]
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// The span's id (0 when disarmed).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }

    /// Wall-clock time since the span opened (zero when disarmed).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |s| s.started.elapsed())
    }
}

impl SpanInner {
    fn event(&self, kind: EventKind, wall_ns: Option<u128>) -> Event {
        Event {
            kind,
            name: self.name.clone(),
            span_id: self.id,
            parent_id: self.parent_id,
            depth: self.depth,
            seq: sink::next_seq(),
            ts_ns: trace_epoch_ns(),
            thread: current_thread_hash(),
            wall_ns,
            fields: self
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed = inner.started.elapsed();
        let elapsed_ns = elapsed.as_nanos();
        let (path, child_ns) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Out-of-order drops cannot happen through the guard API, but
            // be defensive: remove this id wherever it sits.
            let frame = stack
                .iter()
                .rposition(|frame| frame.id == inner.id)
                .map(|at| stack.remove(at));
            // Credit this span's wall-clock to its parent's child tally.
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += elapsed_ns;
            }
            match frame {
                Some(frame) => (frame.path, frame.child_ns),
                None => (inner.name.clone(), 0),
            }
        });
        let self_ns = elapsed_ns.saturating_sub(child_ns);
        record_self_time(&path, elapsed_ns, self_ns);
        if sink::events_enabled() {
            sink::dispatch(&inner.event(EventKind::SpanEnd, Some(elapsed_ns)));
        }
        if inner.depth == 0 {
            ledger().push((
                current_thread_hash(),
                PhaseTiming {
                    name: inner.name,
                    wall_s: elapsed.as_secs_f64(),
                    self_s: Duration::new(
                        u64::try_from(self_ns / 1_000_000_000).unwrap_or(u64::MAX),
                        u32::try_from(self_ns % 1_000_000_000).unwrap_or(0),
                    )
                    .as_secs_f64(),
                },
            ));
        }
    }
}

/// The current span id on this thread (0 outside any span) — what point
/// events attach themselves to.
#[must_use]
pub fn current_span_id() -> (u64, usize) {
    STACK.with(|stack| {
        let stack = stack.borrow();
        (stack.last().map_or(0, |frame| frame.id), stack.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{install_sink, MemorySink};

    #[test]
    fn nesting_tracks_parent_and_depth() {
        let memory = MemorySink::new();
        let _guard = install_sink(memory.clone());
        {
            let outer = Span::enter("outer", Vec::new());
            {
                let inner = Span::enter("inner", Vec::new());
                assert_ne!(inner.id(), outer.id());
            }
        }
        let events: Vec<Event> = memory.drain_current_thread();
        let names: Vec<(&str, &str)> = events
            .iter()
            .map(|e| (e.kind.id(), e.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("span_start", "outer"),
                ("span_start", "inner"),
                ("span_end", "inner"),
                ("span_end", "outer"),
            ]
        );
        let inner_end = &events[2];
        let outer_end = &events[3];
        assert_eq!(inner_end.depth, 1);
        assert_eq!(outer_end.depth, 0);
        assert_eq!(inner_end.parent_id, outer_end.span_id);
    }

    #[test]
    fn timing_is_monotone_and_nested_spans_are_shorter() {
        let memory = MemorySink::new();
        let _guard = install_sink(memory.clone());
        {
            let _outer = Span::enter("t_outer", Vec::new());
            std::thread::sleep(Duration::from_millis(2));
            let _inner = Span::enter("t_inner", Vec::new());
            std::thread::sleep(Duration::from_millis(1));
        }
        let events = memory.drain_current_thread();
        let wall = |name: &str| {
            events
                .iter()
                .find(|e| e.kind == EventKind::SpanEnd && e.name == name)
                .and_then(|e| e.wall_ns)
                .expect("span_end with duration")
        };
        let outer = wall("t_outer");
        let inner = wall("t_inner");
        assert!(outer > 0 && inner > 0);
        assert!(inner <= outer, "inner {inner} ns within outer {outer} ns");
        // Sequence numbers are strictly increasing in emission order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
        // Timestamps are monotone (non-decreasing) per thread.
        let stamps: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]), "{stamps:?}");
    }

    #[test]
    fn root_spans_feed_the_phase_ledger() {
        let _ = take_phase_timings(); // isolate from earlier tests on this thread
        {
            let _a = Span::enter("phase_a", Vec::new());
        }
        {
            let _b = Span::enter("phase_b", Vec::new());
            let _nested = Span::enter("not_a_phase", Vec::new());
        }
        let phases = take_phase_timings();
        let names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
        // Only root spans count — the nested span is not a phase.
        assert_eq!(names, vec!["phase_a", "phase_b"]);
        assert!(phases.iter().all(|p| p.wall_s >= 0.0));
        assert!(
            phases.iter().all(|p| p.self_s <= p.wall_s + 1e-12),
            "self time never exceeds the phase total: {phases:?}"
        );
        // Draining leaves the ledger empty for the next capture.
        assert!(take_phase_timings().is_empty());
    }

    #[test]
    fn self_time_ledger_attributes_child_time_to_children() {
        {
            let _outer = Span::enter("stl_outer", Vec::new());
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = Span::enter("stl_inner", Vec::new());
                std::thread::sleep(Duration::from_millis(4));
            }
        }
        let entries = self_time_snapshot();
        let find = |stack: &str| {
            entries
                .iter()
                .find(|e| e.stack == stack)
                .unwrap_or_else(|| panic!("stack {stack} recorded"))
        };
        let outer = find("stl_outer");
        let inner = find("stl_outer;stl_inner");
        assert_eq!(inner.name, "stl_inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // The inner sleep is the inner span's self time, not the outer's.
        assert!(inner.self_ns >= 3_000_000, "inner self = {}", inner.self_ns);
        assert!(
            outer.self_ns < outer.total_ns,
            "outer self excludes the child"
        );
        // Exact decomposition: parent total = parent self + child total.
        assert_eq!(outer.self_ns + inner.total_ns, outer.total_ns);
    }

    #[test]
    fn folded_rendering_is_flamegraph_shaped() {
        let entries = vec![
            SelfTimeEntry {
                stack: "a;b".to_string(),
                name: "b".to_string(),
                count: 2,
                total_ns: 5_000_000,
                self_ns: 3_000_000,
            },
            SelfTimeEntry {
                stack: "a".to_string(),
                name: "a".to_string(),
                count: 1,
                total_ns: 9_000_000,
                self_ns: 100, // sub-microsecond: clamps to 1
            },
        ];
        let folded = render_folded(&entries);
        assert_eq!(folded, "a;b 3000\na 1\n");
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = Span::disabled();
        assert_eq!(span.id(), 0);
        assert_eq!(span.elapsed(), Duration::ZERO);
        let (current, depth) = current_span_id();
        assert_eq!(current, 0);
        assert_eq!(depth, 0);
    }
}
