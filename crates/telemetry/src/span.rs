//! Hierarchical spans with wall-clock timing, plus the phase ledger that
//! feeds run manifests.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use crate::event::{current_thread_hash, Event, EventKind, Field};
use crate::sink;

/// Monotone span ids, shared across threads (0 means "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The calling thread's open-span stack: `(span_id,)` innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// One completed root span, as the manifest reports it.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// The span's name.
    pub name: String,
    /// Wall-clock duration in seconds.
    pub wall_s: f64,
}

/// Completed *root* spans (depth 0), in completion order, tagged with the
/// emitting thread so manifests can be captured per thread.
static PHASE_LEDGER: Mutex<Vec<(u64, PhaseTiming)>> = Mutex::new(Vec::new());

fn ledger() -> MutexGuard<'static, Vec<(u64, PhaseTiming)>> {
    PHASE_LEDGER.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Drains the calling thread's completed root-span timings — called by
/// manifest capture so consecutive runs do not bleed into each other.
#[must_use]
pub fn take_phase_timings() -> Vec<PhaseTiming> {
    let me = current_thread_hash();
    let mut entries = ledger();
    let (mine, others): (Vec<_>, Vec<_>) =
        std::mem::take(&mut *entries).into_iter().partition(|(t, _)| *t == me);
    *entries = others;
    mine.into_iter().map(|(_, timing)| timing).collect()
}

/// An open span. Created by the [`crate::span!`] macro; closing happens on
/// drop, which stamps the wall-clock duration, emits the `span_end` event
/// and (for root spans) records the phase timing for the next manifest.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    id: u64,
    parent_id: u64,
    depth: usize,
    name: String,
    started: Instant,
    fields: Vec<Field>,
}

impl Span {
    /// Opens a span. Prefer the [`crate::span!`] macro, which skips all
    /// work (including field construction) when telemetry is off.
    #[must_use]
    pub fn enter(name: &str, fields: Vec<Field>) -> Span {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let (parent_id, depth) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied().unwrap_or(0);
            let depth = stack.len();
            stack.push(id);
            (parent, depth)
        });
        let inner = SpanInner {
            id,
            parent_id,
            depth,
            name: name.to_string(),
            started: Instant::now(),
            fields,
        };
        if sink::events_enabled() {
            sink::dispatch(&inner.event(EventKind::SpanStart, None));
        }
        Span { inner: Some(inner) }
    }

    /// A disarmed span (telemetry off): construction and drop are free.
    #[must_use]
    pub fn disabled() -> Span {
        Span { inner: None }
    }

    /// The span's id (0 when disarmed).
    #[must_use]
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| s.id)
    }

    /// Wall-clock time since the span opened (zero when disarmed).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |s| s.started.elapsed())
    }
}

impl SpanInner {
    fn event(&self, kind: EventKind, wall_ns: Option<u128>) -> Event {
        Event {
            kind,
            name: self.name.clone(),
            span_id: self.id,
            parent_id: self.parent_id,
            depth: self.depth,
            seq: sink::next_seq(),
            thread: current_thread_hash(),
            wall_ns,
            fields: self
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let elapsed = inner.started.elapsed();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Out-of-order drops cannot happen through the guard API, but
            // be defensive: remove this id wherever it sits.
            if let Some(at) = stack.iter().rposition(|id| *id == inner.id) {
                stack.remove(at);
            }
        });
        if sink::events_enabled() {
            sink::dispatch(&inner.event(EventKind::SpanEnd, Some(elapsed.as_nanos())));
        }
        if inner.depth == 0 {
            ledger().push((
                current_thread_hash(),
                PhaseTiming {
                    name: inner.name,
                    wall_s: elapsed.as_secs_f64(),
                },
            ));
        }
    }
}

/// The current span id on this thread (0 outside any span) — what point
/// events attach themselves to.
#[must_use]
pub fn current_span_id() -> (u64, usize) {
    STACK.with(|stack| {
        let stack = stack.borrow();
        (stack.last().copied().unwrap_or(0), stack.len())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{install_sink, MemorySink};

    #[test]
    fn nesting_tracks_parent_and_depth() {
        let memory = MemorySink::new();
        let _guard = install_sink(memory.clone());
        {
            let outer = Span::enter("outer", Vec::new());
            {
                let inner = Span::enter("inner", Vec::new());
                assert_ne!(inner.id(), outer.id());
            }
        }
        let events: Vec<Event> = memory.drain_current_thread();
        let names: Vec<(&str, &str)> = events
            .iter()
            .map(|e| (e.kind.id(), e.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("span_start", "outer"),
                ("span_start", "inner"),
                ("span_end", "inner"),
                ("span_end", "outer"),
            ]
        );
        let inner_end = &events[2];
        let outer_end = &events[3];
        assert_eq!(inner_end.depth, 1);
        assert_eq!(outer_end.depth, 0);
        assert_eq!(inner_end.parent_id, outer_end.span_id);
    }

    #[test]
    fn timing_is_monotone_and_nested_spans_are_shorter() {
        let memory = MemorySink::new();
        let _guard = install_sink(memory.clone());
        {
            let _outer = Span::enter("t_outer", Vec::new());
            std::thread::sleep(Duration::from_millis(2));
            let _inner = Span::enter("t_inner", Vec::new());
            std::thread::sleep(Duration::from_millis(1));
        }
        let events = memory.drain_current_thread();
        let wall = |name: &str| {
            events
                .iter()
                .find(|e| e.kind == EventKind::SpanEnd && e.name == name)
                .and_then(|e| e.wall_ns)
                .expect("span_end with duration")
        };
        let outer = wall("t_outer");
        let inner = wall("t_inner");
        assert!(outer > 0 && inner > 0);
        assert!(inner <= outer, "inner {inner} ns within outer {outer} ns");
        // Sequence numbers are strictly increasing in emission order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "{seqs:?}");
    }

    #[test]
    fn root_spans_feed_the_phase_ledger() {
        let _ = take_phase_timings(); // isolate from earlier tests on this thread
        {
            let _a = Span::enter("phase_a", Vec::new());
        }
        {
            let _b = Span::enter("phase_b", Vec::new());
            let _nested = Span::enter("not_a_phase", Vec::new());
        }
        let phases = take_phase_timings();
        let names: Vec<&str> = phases.iter().map(|p| p.name.as_str()).collect();
        // Only root spans count — the nested span is not a phase.
        assert_eq!(names, vec!["phase_a", "phase_b"]);
        assert!(phases.iter().all(|p| p.wall_s >= 0.0));
        // Draining leaves the ledger empty for the next capture.
        assert!(take_phase_timings().is_empty());
    }

    #[test]
    fn disabled_span_is_inert() {
        let span = Span::disabled();
        assert_eq!(span.id(), 0);
        assert_eq!(span.elapsed(), Duration::ZERO);
        let (current, depth) = current_span_id();
        assert_eq!(current, 0);
        assert_eq!(depth, 0);
    }
}
