//! First-order gate-delay model (Eqs. 5–6).
//!
//! The paper approximates the propagation delay of a digital gate as
//! `td ∝ CL·Vdd / Id ∝ CL·Vdd / (Vdd − Vth)` (Eq. 5), so a threshold shift
//! changes the delay by `Δtd ≈ td0 · ΔVth / (Vdd − Vth)` (Eq. 6). We keep
//! the exact ratio form rather than the linearised derivative so large
//! shifts stay well-behaved; the two agree to first order.

use selfheal_units::{Nanoseconds, Volts};

/// Delay of a device whose fresh share of the path delay is `fresh_delay`
/// (measured at `vdd` with threshold `vth_ref`), now that its threshold has
/// moved to `vth`.
///
/// `td(vth) = fresh · (vdd − vth_ref) / (vdd − vth)`.
///
/// # Panics
///
/// Panics if `vth >= vdd` or `vth_ref >= vdd`: a device whose threshold has
/// reached the supply cannot switch at all, and in this workspace that can
/// only happen through a mis-calibration bug — the shifts involved are tens
/// of millivolts against an 800 mV overdrive.
///
/// # Examples
///
/// ```
/// use selfheal_fpga::delay::device_delay;
/// use selfheal_units::{Nanoseconds, Volts};
///
/// let fresh = Nanoseconds::new(0.15);
/// let same = device_delay(fresh, Volts::new(1.2), Volts::new(0.4), Volts::new(0.4));
/// assert_eq!(same, fresh);
///
/// let aged = device_delay(fresh, Volts::new(1.2), Volts::new(0.44), Volts::new(0.4));
/// assert!(aged > fresh);
/// ```
#[must_use]
pub fn device_delay(
    fresh_delay: Nanoseconds,
    vdd: Volts,
    vth: Volts,
    vth_ref: Volts,
) -> Nanoseconds {
    let overdrive_ref = vdd - vth_ref;
    let overdrive = vdd - vth;
    assert!(
        overdrive_ref.get() > 0.0 && overdrive.get() > 0.0,
        "threshold must stay below the supply: vdd={vdd}, vth={vth}, vth_ref={vth_ref}"
    );
    Nanoseconds::new(fresh_delay.get() * overdrive_ref.get() / overdrive.get())
}

/// The linearised Eq. (6) form, `Δtd ≈ td0 · ΔVth / (Vdd − Vth)`, kept for
/// model-validation comparisons against the exact ratio form.
#[must_use]
pub fn first_order_delay_shift(
    fresh_delay: Nanoseconds,
    vdd: Volts,
    vth_ref: Volts,
    delta_vth: Volts,
) -> Nanoseconds {
    let overdrive = vdd - vth_ref;
    Nanoseconds::new(fresh_delay.get() * delta_vth.get() / overdrive.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_device_keeps_fresh_delay() {
        let d = device_delay(
            Nanoseconds::new(0.3),
            Volts::new(1.2),
            Volts::new(0.4),
            Volts::new(0.4),
        );
        assert_eq!(d, Nanoseconds::new(0.3));
    }

    #[test]
    fn threshold_shift_slows_the_gate() {
        let fresh = Nanoseconds::new(0.3);
        let d = device_delay(fresh, Volts::new(1.2), Volts::new(0.436), Volts::new(0.4));
        // 36 mV on an 800 mV overdrive ⇒ ≈ +4.7 %.
        let rel = (d.get() - fresh.get()) / fresh.get();
        assert!((rel - 0.0471).abs() < 0.002, "rel = {rel}");
    }

    #[test]
    fn exact_and_first_order_agree_for_small_shifts() {
        let fresh = Nanoseconds::new(0.3);
        let vdd = Volts::new(1.2);
        let vth0 = Volts::new(0.4);
        let dv = Volts::new(0.01);
        let exact = device_delay(fresh, vdd, vth0 + dv, vth0) - fresh;
        let linear = first_order_delay_shift(fresh, vdd, vth0, dv);
        assert!((exact.get() - linear.get()).abs() / linear.get() < 0.02);
    }

    #[test]
    fn lower_supply_amplifies_sensitivity() {
        let fresh = Nanoseconds::new(0.3);
        let vth0 = Volts::new(0.4);
        let dv = Volts::new(0.02);
        let at_nominal = device_delay(fresh, Volts::new(1.2), vth0 + dv, vth0) - fresh;
        let at_low_vdd = device_delay(fresh, Volts::new(1.0), vth0 + dv, vth0) - fresh;
        assert!(at_low_vdd > at_nominal);
    }

    #[test]
    #[should_panic(expected = "threshold must stay below the supply")]
    fn panics_when_threshold_reaches_supply() {
        let _ = device_delay(
            Nanoseconds::new(0.3),
            Volts::new(1.2),
            Volts::new(1.2),
            Volts::new(0.4),
        );
    }
}
