//! The 16-bit frequency counter of Fig. 3 and the Eq. (14)/(15) metric
//! pipeline.
//!
//! The counter accumulates ring-oscillator edges over one half-period of
//! the reference clock, so `fosc = 2·Cout·fref` (Eq. 14) and the CUT delay
//! is `Td = 1/(2·fosc) = 1/(4·Cout·fref)` (Eq. 15). The paper reports the
//! reading as repeatable "within ±5 counts"; we add exactly that jitter.

use rand::Rng;
use serde::{Deserialize, Serialize};
use selfheal_units::{Hertz, Nanoseconds};

/// A single counter capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterReading {
    /// The captured count `Cout`.
    pub count: u32,
    /// Whether the counter hit its maximum value (an overflow means the
    /// reference clock is too slow for this oscillator).
    pub saturated: bool,
}

/// The counter peripheral: width plus reference clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyCounter {
    bits: u32,
    fref: Hertz,
    jitter_counts: u32,
}

impl FrequencyCounter {
    /// The paper's repeatability bound: readings vary within ±5 counts.
    pub const PAPER_JITTER_COUNTS: u32 = 5;

    /// Creates a counter.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31, or if the reference clock
    /// is not positive — both are configuration bugs.
    #[must_use]
    pub fn new(bits: u32, fref: Hertz) -> Self {
        assert!((1..=31).contains(&bits), "counter width must be 1..=31 bits");
        assert!(fref.get() > 0.0, "reference clock must be positive");
        FrequencyCounter {
            bits,
            fref,
            jitter_counts: Self::PAPER_JITTER_COUNTS,
        }
    }

    /// The paper's setup: 16 bits, 500 Hz reference.
    #[must_use]
    pub fn paper_setup() -> Self {
        FrequencyCounter::new(16, Hertz::new(500.0))
    }

    /// A noise-free copy (for tests needing exact readings).
    #[must_use]
    pub fn without_jitter(mut self) -> Self {
        self.jitter_counts = 0;
        self
    }

    /// The reference clock.
    #[must_use]
    pub fn reference_clock(&self) -> Hertz {
        self.fref
    }

    /// Maximum representable count.
    #[must_use]
    pub fn max_count(&self) -> u32 {
        (1u32 << self.bits) - 1
    }

    /// Captures a reading of an oscillator running at `fosc`.
    ///
    /// The ideal count is `fosc / (2·fref)`; a uniform jitter of up to
    /// ±`jitter` counts models the paper's observed repeatability.
    pub fn read<R: Rng + ?Sized>(&self, fosc: Hertz, rng: &mut R) -> CounterReading {
        let ideal = fosc.get() / (2.0 * self.fref.get());
        let jitter = if self.jitter_counts == 0 {
            0i64
        } else {
            let j = i64::from(self.jitter_counts);
            rng.gen_range(-j..=j)
        };
        let noisy = (ideal.round() as i64 + jitter).max(0) as u64;
        let max = u64::from(self.max_count());
        CounterReading {
            count: noisy.min(max) as u32,
            saturated: noisy >= max,
        }
    }

    /// Reads the counter `n` times and returns the mean count — the
    /// paper's diagnostic program reads "from a certain time range that
    /// has stable values" (§4.2), i.e. it averages out the ±5-count
    /// jitter. Returns the mean as a fraction for full resolution.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn read_averaged<R: Rng + ?Sized>(&self, fosc: Hertz, n: usize, rng: &mut R) -> f64 {
        assert!(n > 0, "averaging window must be non-empty");
        let total: u64 = (0..n).map(|_| u64::from(self.read(fosc, rng).count)).sum();
        total as f64 / n as f64
    }

    /// Eq. (14) applied to a fractional (averaged) count.
    #[must_use]
    pub fn frequency_of_count(&self, count: f64) -> Hertz {
        Hertz::new(2.0 * count * self.fref.get())
    }

    /// Eq. (15) applied to a fractional (averaged) count.
    #[must_use]
    pub fn delay_of_count(&self, count: f64) -> Nanoseconds {
        if count <= 0.0 {
            return Nanoseconds::new(f64::INFINITY);
        }
        Nanoseconds::new(1e9 / (4.0 * count * self.fref.get()))
    }

    /// Eq. (14): the oscillation frequency a reading implies.
    #[must_use]
    pub fn frequency_of(&self, reading: CounterReading) -> Hertz {
        Hertz::new(2.0 * f64::from(reading.count) * self.fref.get())
    }

    /// Eq. (15): the CUT delay a reading implies,
    /// `Td = 1/(4·Cout·fref)`.
    ///
    /// Returns an infinite delay for a zero count (oscillator stopped).
    #[must_use]
    pub fn delay_of(&self, reading: CounterReading) -> Nanoseconds {
        if reading.count == 0 {
            return Nanoseconds::new(f64::INFINITY);
        }
        Nanoseconds::new(1e9 / (4.0 * f64::from(reading.count) * self.fref.get()))
    }
}

impl Default for FrequencyCounter {
    fn default() -> Self {
        FrequencyCounter::paper_setup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_setup_dimensions() {
        let c = FrequencyCounter::paper_setup();
        assert_eq!(c.max_count(), 65_535);
        assert_eq!(c.reference_clock(), Hertz::new(500.0));
    }

    #[test]
    fn exact_round_trip_without_jitter() {
        let c = FrequencyCounter::paper_setup().without_jitter();
        let mut rng = StdRng::seed_from_u64(1);
        let fosc = Hertz::new(5_555_000.0);
        let reading = c.read(fosc, &mut rng);
        assert_eq!(reading.count, 5555);
        assert!(!reading.saturated);
        let f = c.frequency_of(reading);
        assert!((f.get() - 5_555_000.0).abs() < 1.0);
        // Td = 1/(2·fosc) ≈ 90.01 ns.
        let td = c.delay_of(reading);
        assert!((td.get() - 90.009).abs() < 0.01, "{td}");
    }

    #[test]
    fn jitter_stays_within_bound() {
        let c = FrequencyCounter::paper_setup();
        let mut rng = StdRng::seed_from_u64(2);
        let fosc = Hertz::new(5_555_000.0);
        for _ in 0..500 {
            let reading = c.read(fosc, &mut rng);
            let delta = i64::from(reading.count) - 5555;
            assert!(delta.abs() <= i64::from(FrequencyCounter::PAPER_JITTER_COUNTS));
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let c = FrequencyCounter::paper_setup();
        let mut rng = StdRng::seed_from_u64(3);
        let fosc = Hertz::new(5_555_000.0);
        let first = c.read(fosc, &mut rng).count;
        let varies = (0..50).any(|_| c.read(fosc, &mut rng).count != first);
        assert!(varies);
    }

    #[test]
    fn saturation_flag() {
        let c = FrequencyCounter::paper_setup().without_jitter();
        let mut rng = StdRng::seed_from_u64(4);
        // 500 Hz reference: max measurable fosc = 2·65535·500 ≈ 65.5 MHz.
        let reading = c.read(Hertz::new(100e6), &mut rng);
        assert!(reading.saturated);
        assert_eq!(reading.count, 65_535);
    }

    #[test]
    fn stopped_oscillator_reads_zero() {
        let c = FrequencyCounter::paper_setup().without_jitter();
        let mut rng = StdRng::seed_from_u64(5);
        let reading = c.read(Hertz::new(0.0), &mut rng);
        assert_eq!(reading.count, 0);
        assert!(c.delay_of(reading).get().is_infinite());
        assert_eq!(c.frequency_of(reading).get(), 0.0);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn rejects_zero_width() {
        let _ = FrequencyCounter::new(0, Hertz::new(500.0));
    }

    #[test]
    #[should_panic(expected = "reference clock")]
    fn rejects_nonpositive_reference() {
        let _ = FrequencyCounter::new(16, Hertz::new(0.0));
    }
}
