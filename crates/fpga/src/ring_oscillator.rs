//! The Fig. 3 test structure: a 75-inverter LUT-based ring oscillator with
//! an enable gate that selects between AC and DC stress modes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use selfheal_bti::td::PhaseRateCache;
use selfheal_bti::Environment;
use selfheal_units::{Hertz, Millivolts, Nanoseconds, Seconds, Volts};

use crate::family::Family;
use crate::netlist::InverterChain;

/// What the enable signal (and the power supply) make the ring oscillator
/// do during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoMode {
    /// `En` asserted: the loop oscillates — AC stress ("RO is always
    /// enabled to switch", case AS110AC24).
    Oscillating,
    /// `En` deasserted: the loop parks at alternating static levels — DC
    /// stress (cases AS110DC24/48, with brief enables only for sampling).
    Static,
    /// Sleep: the fabric is unclocked and the supply is gated to 0 V or
    /// driven negative — the recovery phase.
    Sleep,
}

impl std::fmt::Display for RoMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoMode::Oscillating => f.write_str("oscillating (AC)"),
            RoMode::Static => f.write_str("static (DC)"),
            RoMode::Sleep => f.write_str("sleep"),
        }
    }
}

/// The ring oscillator built from [`InverterChain`] stages.
///
/// The oscillation frequency is `1 / (2·T_poi)` where `T_poi` is the total
/// propagation delay around the loop — the quantity the paper's Eq. (15)
/// recovers from the counter reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingOscillator {
    chain: InverterChain,
}

impl RingOscillator {
    /// Samples a fresh RO with the family's stage count.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        family: &Family,
        chip_offset: Millivolts,
        rng: &mut R,
    ) -> Self {
        RingOscillator {
            chain: InverterChain::sample(family.ro_stages, family, chip_offset, rng),
        }
    }

    /// The underlying inverter chain (the circuit under test's POI).
    #[must_use]
    pub fn chain(&self) -> &InverterChain {
        &self.chain
    }

    /// The CUT delay `Td` — the POI propagation delay, i.e. half the
    /// oscillation period (Eq. 15's left-hand side).
    #[must_use]
    pub fn cut_delay(&self, vdd: Volts) -> Nanoseconds {
        self.chain.path_delay(vdd)
    }

    /// The oscillation frequency at supply `vdd`.
    ///
    /// Returns 0 Hz for an empty chain (nothing to oscillate).
    #[must_use]
    pub fn frequency(&self, vdd: Volts) -> Hertz {
        let td = self.cut_delay(vdd);
        if td.get() <= 0.0 {
            return Hertz::new(0.0);
        }
        Hertz::new(1e9 / (2.0 * td.get()))
    }

    /// The fresh CUT delay at the nominal supply.
    #[must_use]
    pub fn fresh_cut_delay(&self) -> Nanoseconds {
        self.chain.fresh_delay()
    }

    /// Ages the oscillator for `dt` in the given mode and environment.
    ///
    /// A gated or negative supply physically cannot keep the loop toggling
    /// or parked at CMOS levels, so any mode combined with `supply ≤ 0 V`
    /// behaves as [`RoMode::Sleep`].
    pub fn advance(&mut self, mode: RoMode, env: Environment, dt: Seconds) {
        self.advance_cached(mode, env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance`](Self::advance) sharing a caller-owned rate cache —
    /// fabric-wide loops advance every oscillator under one cache so the
    /// per-condition rate multipliers are evaluated once for the whole
    /// array.
    pub fn advance_cached(
        &mut self,
        mode: RoMode,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        let effective = if env.supply().get() <= 0.0 {
            RoMode::Sleep
        } else {
            mode
        };
        match effective {
            RoMode::Oscillating => self.chain.advance_toggling_cached(env, dt, rates),
            RoMode::Static => self.chain.advance_static_cached(env, dt, rates),
            RoMode::Sleep => self.chain.advance_sleep_cached(env, dt, rates),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_units::{Celsius, Hours};

    fn ro() -> RingOscillator {
        let mut rng = StdRng::seed_from_u64(8);
        let family = Family::commercial_40nm().without_variation();
        RingOscillator::sample(&family, Millivolts::new(0.0), &mut rng)
    }

    fn hot() -> Environment {
        Environment::new(Volts::new(1.2), Celsius::new(110.0))
    }

    #[test]
    fn fresh_frequency_matches_budget() {
        let ro = ro();
        // 90 ns POI ⇒ 180 ns period ⇒ ≈ 5.56 MHz.
        let f = ro.frequency(Volts::new(1.2));
        assert!((f.get() - 5.555e6).abs() < 1e4, "{f}");
        assert!((ro.cut_delay(Volts::new(1.2)).get() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn dc_stress_degrades_frequency() {
        let mut ro = ro();
        let fresh = ro.frequency(Volts::new(1.2));
        ro.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        let aged = ro.frequency(Volts::new(1.2));
        let deg = aged.degradation_from(fresh);
        assert!(deg > 0.012 && deg < 0.04, "degradation = {deg}");
    }

    #[test]
    fn ac_stress_degrades_about_half_as_much() {
        let mut dc = ro();
        let mut ac = ro();
        let vdd = Volts::new(1.2);
        let fresh = dc.frequency(vdd);
        dc.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        ac.advance(RoMode::Oscillating, hot(), Hours::new(24.0).into());
        let r = ac.frequency(vdd).degradation_from(fresh) / dc.frequency(vdd).degradation_from(fresh);
        assert!(r > 0.35 && r < 0.7, "AC/DC = {r}");
    }

    #[test]
    fn negative_supply_forces_sleep_mode() {
        let mut a = ro();
        let mut b = ro();
        let heal = Environment::new(Volts::new(-0.3), Celsius::new(110.0));
        // Stressing "in static mode" at a negative supply must behave like
        // sleep: identical to an explicit sleep call.
        a.advance(RoMode::Static, heal, Hours::new(6.0).into());
        b.advance(RoMode::Sleep, heal, Hours::new(6.0).into());
        assert_eq!(a, b);
    }

    #[test]
    fn sleep_after_stress_restores_frequency_partially() {
        let mut ro = ro();
        let vdd = Volts::new(1.2);
        let fresh = ro.frequency(vdd);
        ro.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        let aged = ro.frequency(vdd);
        ro.advance(
            RoMode::Sleep,
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Hours::new(6.0).into(),
        );
        let healed = ro.frequency(vdd);
        assert!(healed > aged, "healing speeds the RO back up");
        assert!(healed < fresh, "but not all the way to fresh");
    }
}
