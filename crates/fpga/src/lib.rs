//! FPGA substrate for the accelerated self-healing reproduction.
//!
//! The paper demonstrates its techniques on commercial 40 nm LUT-based
//! FPGAs. No such hardware is available here, so this crate *is* the FPGA:
//! a transistor-level model of the structures the paper describes, built so
//! that the paper's two gate-level hypotheses (§3.2) hold by construction
//! and can be tested rather than assumed:
//!
//! * **Hypothesis 1** — under DC stress, once the inputs are fixed, the set
//!   of stressed transistors on the path of interest (POI) is fixed too.
//! * **Hypothesis 2** — recovery acts only on stressed transistors; fresh
//!   or fully-recovered devices are unaffected.
//!
//! Layered structure, bottom-up:
//!
//! * [`Transistor`] — a device with a fresh threshold (process variation
//!   included) and a BTI trap ensemble from [`selfheal_bti`].
//! * [`Lut`] — the Fig. 2 pass-transistor 2-input LUT: a 6-device pass
//!   tree plus a 2-device output buffer, with static stress analysis.
//! * [`RoutingBlock`] — the inter-LUT routing stage on the POI.
//! * [`InverterChain`] — LUT-mapped inverters + routing, the POI of Eq. 7.
//! * [`RingOscillator`] — the Fig. 3 test structure: 75 LUT inverters,
//!   an enable gate that switches between AC and DC stress modes.
//! * [`FrequencyCounter`] — the 16-bit counter and Eqs. (14)–(15).
//! * [`Chip`] — one simulated FPGA: fabric, variation corner, CUT and
//!   counter, with the paper's measurement pipeline.
//! * [`Odometer`] — a differential on-chip aging sensor (the paper's
//!   refs [7, 8]), the hardware a reactive policy would poll.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use selfheal_fpga::{Chip, ChipId, RoMode};
//! use selfheal_bti::Environment;
//! use selfheal_units::{Celsius, Hours, Volts};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let mut chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
//! let fresh = chip.measure(&mut rng);
//!
//! // 24 h of accelerated DC stress at 110 °C.
//! let stress = Environment::new(Volts::new(1.2), Celsius::new(110.0));
//! chip.advance(RoMode::Static, stress, Hours::new(24.0).into());
//! let aged = chip.measure(&mut rng);
//! assert!(aged.frequency < fresh.frequency, "stress slows the oscillator");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chip;
pub mod counter;
pub mod fabric;
pub mod delay;
pub mod family;
pub mod lut;
pub mod netlist;
pub mod odometer;
pub mod ring_oscillator;
pub mod routing;
pub mod transistor;

pub use chip::{Chip, ChipId, Measurement};
pub use counter::{CounterReading, FrequencyCounter};
pub use fabric::{CutArray, DieLocation};
pub use family::Family;
pub use lut::{Lut, LutConfig};
pub use netlist::InverterChain;
pub use odometer::Odometer;
pub use ring_oscillator::{RingOscillator, RoMode};
pub use routing::RoutingBlock;
pub use transistor::{Polarity, Transistor};
