//! An on-chip aging odometer (the paper's refs \[7, 8\]: Kim et al.'s
//! "Silicon Odometer" and Cabe et al.'s embeddable NBTI sensors).
//!
//! Two matched ring oscillators: a **witness** that shares the fabric's
//! stress history, and a **reference** that is kept power-gated except
//! during the brief differential measurement and therefore stays nearly
//! fresh. The fractional beat between them reads out the accumulated
//! degradation without needing any off-chip baseline — exactly the signal
//! a *reactive* rejuvenation policy (§2.2) needs, and the reason reactive
//! policies carry a hardware cost that proactive ones avoid.

use rand::Rng;
use serde::{Deserialize, Serialize};
use selfheal_bti::Environment;
use selfheal_units::{Fraction, Millivolts, Seconds, Volts};

use crate::family::Family;
use crate::ring_oscillator::{RingOscillator, RoMode};

/// A differential aging sensor.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use selfheal_bti::Environment;
/// use selfheal_fpga::{Family, Odometer, RoMode};
/// use selfheal_units::{Celsius, Hours, Millivolts, Volts};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let family = Family::commercial_40nm();
/// let mut odo = Odometer::sample(&family, Millivolts::new(0.0), &mut rng);
/// assert!(odo.read().get() < 0.002, "fresh sensor reads ~zero");
///
/// let stress = Environment::new(Volts::new(1.2), Celsius::new(110.0));
/// odo.advance(RoMode::Static, stress, Hours::new(24.0).into());
/// assert!(odo.read().get() > 0.01, "a day of hot stress registers");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Odometer {
    witness: RingOscillator,
    reference: RingOscillator,
    vdd: Volts,
}

impl Odometer {
    /// Number of stages in each sensor oscillator — much smaller than the
    /// 75-stage CUT; odometers are meant to be sprinkled around the die.
    pub const STAGES: usize = 15;

    /// Samples a matched sensor pair on the given process corner.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        family: &Family,
        chip_offset: Millivolts,
        rng: &mut R,
    ) -> Self {
        let mut small = family.clone();
        small.ro_stages = Self::STAGES;
        Odometer {
            witness: RingOscillator::sample(&small, chip_offset, rng),
            reference: RingOscillator::sample(&small, chip_offset, rng),
            vdd: family.vdd_nominal,
        }
    }

    /// Ages the sensor along with the fabric: the witness sees the
    /// fabric's mode and environment; the reference stays gated (it only
    /// wakes for measurements, whose duration is negligible).
    pub fn advance(&mut self, mode: RoMode, env: Environment, dt: Seconds) {
        self.witness.advance(mode, env, dt);
        // The reference is power-gated at the same temperature: it takes
        // no stress and barely moves (residual passive recovery of an
        // unstressed oscillator is a no-op).
        self.reference
            .advance(RoMode::Sleep, env.with_supply(Volts::ZERO), dt);
    }

    /// The fractional beat `(f_ref − f_wit) / f_ref`: ≈ 0 when fresh,
    /// growing with accumulated degradation. Mismatch between the two
    /// oscillators' process corners appears as a (small, constant) offset,
    /// as it does in the real sensor.
    #[must_use]
    pub fn read(&self) -> Fraction {
        let f_ref = self.reference.frequency(self.vdd);
        let f_wit = self.witness.frequency(self.vdd);
        Fraction::new(f_wit.degradation_from(f_ref))
    }

    /// Estimated consumed fraction of a wear budget, given the margin as
    /// the maximum tolerable fractional slowdown — the input a
    /// [`ReactivePolicy`](https://docs.rs/) style controller polls.
    #[must_use]
    pub fn margin_consumed(&self, margin: Fraction) -> Fraction {
        if margin.get() <= 0.0 {
            return Fraction::ONE;
        }
        Fraction::new(self.read().get() / margin.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_units::{Celsius, Hours};

    fn odo(seed: u64) -> Odometer {
        let mut rng = StdRng::seed_from_u64(seed);
        let family = Family::commercial_40nm().without_variation();
        Odometer::sample(&family, Millivolts::new(0.0), &mut rng)
    }

    fn hot() -> Environment {
        Environment::new(Volts::new(1.2), Celsius::new(110.0))
    }

    #[test]
    fn fresh_sensor_reads_zero() {
        let o = odo(1);
        assert!(o.read().get() < 1e-9, "matched fresh pair: {}", o.read());
    }

    #[test]
    fn reading_grows_with_stress() {
        let mut o = odo(2);
        let mut previous = o.read().get();
        for _ in 0..3 {
            o.advance(RoMode::Static, hot(), Hours::new(8.0).into());
            let now = o.read().get();
            assert!(now > previous, "odometer only counts up under stress");
            previous = now;
        }
        assert!(previous > 0.005 && previous < 0.05, "plausible scale: {previous}");
    }

    #[test]
    fn reference_stays_fresh() {
        let mut o = odo(3);
        o.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        let f_ref = o.reference.frequency(Volts::new(1.2));
        let fresh_ref = 1e9 / (2.0 * o.reference.fresh_cut_delay().get());
        assert!(
            (f_ref.get() - fresh_ref).abs() / fresh_ref < 1e-6,
            "gated reference must not age"
        );
    }

    #[test]
    fn reading_falls_after_rejuvenation() {
        let mut o = odo(4);
        o.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        let aged = o.read().get();
        o.advance(
            RoMode::Sleep,
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Hours::new(6.0).into(),
        );
        let healed = o.read().get();
        assert!(healed < aged, "{aged} → {healed}");
        assert!(healed > 0.0, "partial recovery only");
    }

    #[test]
    fn margin_consumed_scales_reading() {
        let mut o = odo(5);
        o.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        let read = o.read().get();
        let consumed = o.margin_consumed(Fraction::new(0.05)).get();
        assert!((consumed - read / 0.05).abs() < 1e-9);
        assert_eq!(o.margin_consumed(Fraction::ZERO).get(), 1.0, "degenerate margin");
    }
}
