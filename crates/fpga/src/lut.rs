//! The Fig. 2 pass-transistor 2-input LUT.
//!
//! Structure (all pass devices NMOS, as in the paper's generic PT-based
//! LUT):
//!
//! ```text
//!             branch A (selected when In1 = 1)
//!   c11 --[M1: gate=In0 ]--+
//!   c10 --[M2: gate=!In0]--+--[M5: gate=In1 ]--+
//!             branch B (selected when In1 = 0)  +--> internal --[buffer]--> out
//!   c01 --[M3: gate=In0 ]--+                    |
//!   c00 --[M4: gate=!In0]--+--[M6: gate=!In1]--+
//! ```
//!
//! The output buffer is modelled as its two devices, `M7` (NMOS pull-down,
//! PBTI-stressed while the internal node is high) and `M8` (PMOS pull-up,
//! NBTI-stressed while it is low).
//!
//! **Stress rule.** A pass NMOS is BTI-stressed exactly when its gate is
//! high *and* it is passing a logic 0: only then is the full `Vgs = Vdd`
//! across the oxide. A gate-high device passing a 1 sits at
//! `Vgs ≈ Vth` — no meaningful stress. This single physical rule
//! reproduces the paper's §3.2 example verbatim for the LUT-mapped
//! inverter: with `In0 = 1`, `{M1, M5}` (plus the buffer PMOS `M8`) are
//! stressed; with `In0 = 0`, only the buffer NMOS `M7` is.

use rand::Rng;
use serde::{Deserialize, Serialize};
use selfheal_bti::td::PhaseRateCache;
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{DutyCycle, Millivolts, Nanoseconds, Seconds, Volts};

use crate::family::Family;
use crate::transistor::{Polarity, Transistor};

/// Indices of the LUT's devices in its device vector.
const M1: usize = 0;
const M2: usize = 1;
const M3: usize = 2;
const M4: usize = 3;
const M5: usize = 4;
const M6: usize = 5;
const M7: usize = 6;
const M8: usize = 7;

/// The four configuration bits of a 2-input LUT, indexed by
/// `(In1 << 1) | In0`.
///
/// # Examples
///
/// ```
/// use selfheal_fpga::LutConfig;
///
/// let inv = LutConfig::inverter_in0();
/// assert!(!inv.evaluate(true, true));  // In0 = 1 → 0
/// assert!(inv.evaluate(false, true));  // In0 = 0 → 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LutConfig {
    bits: [bool; 4],
}

impl LutConfig {
    /// Creates a configuration from `[c00, c01, c10, c11]` where `cXY` is
    /// the output for `In1 = X`, `In0 = Y`.
    #[must_use]
    pub const fn new(bits: [bool; 4]) -> Self {
        LutConfig { bits }
    }

    /// The paper's LUT-mapped inverter: with `In1` tied high the output is
    /// `!In0`.
    ///
    /// The two don't-care bits (`In1 = 0` rows) are set high so that no
    /// off-branch device is parked on a logic 0 — this makes the static
    /// stress sets match the paper's example exactly (`{M1, M5}` vs
    /// `{M7}`).
    #[must_use]
    pub const fn inverter_in0() -> Self {
        // [c00, c01, c10, c11]
        LutConfig::new([true, true, true, false])
    }

    /// Looks up the configured output for an input pair.
    #[must_use]
    pub fn evaluate(&self, in0: bool, in1: bool) -> bool {
        self.bits[(usize::from(in1) << 1) | usize::from(in0)]
    }

    /// The raw bit the mux tree routes for `(in0, in1)` — identical to
    /// [`Self::evaluate`] for a PT tree, exposed for structural tests.
    #[must_use]
    pub fn bit(&self, index: usize) -> bool {
        self.bits[index]
    }
}

/// One pass-transistor LUT instance with live devices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut {
    config: LutConfig,
    devices: Vec<Transistor>,
}

impl Lut {
    /// Samples a fresh LUT of the given family, applying the chip's corner
    /// offset plus fresh per-device mismatch.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        config: LutConfig,
        family: &Family,
        chip_offset: Millivolts,
        rng: &mut R,
    ) -> Self {
        let mk_vth = |rng: &mut R| {
            let local = family.variation.sample_device_offset(rng);
            family.vth_nominal + Volts::from(chip_offset) + Volts::from(local)
        };
        let pass = family.pass_delay;
        let buf = family.buffer_delay;
        let spec: [(&str, Polarity, Nanoseconds); 8] = [
            ("M1", Polarity::Nmos, pass),
            ("M2", Polarity::Nmos, pass),
            ("M3", Polarity::Nmos, pass),
            ("M4", Polarity::Nmos, pass),
            ("M5", Polarity::Nmos, pass),
            ("M6", Polarity::Nmos, pass),
            ("M7", Polarity::Nmos, buf),
            ("M8", Polarity::Pmos, buf),
        ];
        let devices = spec
            .into_iter()
            .map(|(name, pol, share)| {
                let vth = mk_vth(rng);
                Transistor::sample(
                    name,
                    pol,
                    vth,
                    family.vth_nominal,
                    share,
                    &family.trap_params,
                    rng,
                )
            })
            .collect();
        Lut { config, devices }
    }

    /// The LUT's configuration.
    #[must_use]
    pub fn config(&self) -> LutConfig {
        self.config
    }

    /// The LUT's devices (`M1`…`M8`).
    #[must_use]
    pub fn devices(&self) -> &[Transistor] {
        &self.devices
    }

    /// Logic output for an input pair.
    #[must_use]
    pub fn evaluate(&self, in0: bool, in1: bool) -> bool {
        self.config.evaluate(in0, in1)
    }

    /// Device indices on the path of interest for the given inputs: the
    /// selected level-1 pass device, the selected level-2 pass device and
    /// both buffer devices.
    #[must_use]
    pub fn poi_indices(&self, in0: bool, in1: bool) -> [usize; 4] {
        let level1 = match (in1, in0) {
            (true, true) => M1,
            (true, false) => M2,
            (false, true) => M3,
            (false, false) => M4,
        };
        let level2 = if in1 { M5 } else { M6 };
        [level1, level2, M7, M8]
    }

    /// Device indices statically stressed while the inputs are held at
    /// `(in0, in1)` — the DC stress set of Hypothesis 1.
    #[must_use]
    pub fn stressed_indices(&self, in0: bool, in1: bool) -> Vec<usize> {
        let mut stressed = Vec::new();
        let c = &self.config;
        // Level-1 pass devices: stressed when gate high and passing a 0.
        let level1 = [
            (M1, in0, c.bit(0b11)),
            (M2, !in0, c.bit(0b10)),
            (M3, in0, c.bit(0b01)),
            (M4, !in0, c.bit(0b00)),
        ];
        for (idx, gate, value) in level1 {
            if gate && !value {
                stressed.push(idx);
            }
        }
        // Level-2 pass devices pass their branch's selected value.
        let branch_a = if in0 { c.bit(0b11) } else { c.bit(0b10) };
        let branch_b = if in0 { c.bit(0b01) } else { c.bit(0b00) };
        if in1 && !branch_a {
            stressed.push(M5);
        }
        if !in1 && !branch_b {
            stressed.push(M6);
        }
        // Buffer: NMOS stressed on a high internal node, PMOS on a low one.
        let internal = self.evaluate(in0, in1);
        if internal {
            stressed.push(M7);
        } else {
            stressed.push(M8);
        }
        stressed
    }

    /// Propagation delay through the LUT for a specific input state.
    #[must_use]
    pub fn path_delay(&self, vdd: Volts, in0: bool, in1: bool) -> Nanoseconds {
        self.poi_indices(in0, in1)
            .into_iter()
            .map(|i| self.devices[i].delay(vdd))
            .sum()
    }

    /// The delay that matters while the oscillator toggles `In0`: the
    /// average of the two input states' path delays (the RO's period is set
    /// by alternating rising/falling propagations).
    #[must_use]
    pub fn switching_delay(&self, vdd: Volts, in1: bool) -> Nanoseconds {
        (self.path_delay(vdd, false, in1) + self.path_delay(vdd, true, in1)) / 2.0
    }

    /// Ages the LUT with inputs held statically at `(in0, in1)` — DC
    /// stress. Stressed devices see full DC stress; the rest passively
    /// recover at the same environment.
    pub fn advance_static(
        &mut self,
        in0: bool,
        in1: bool,
        env: Environment,
        dt: Seconds,
    ) {
        self.advance_static_cached(in0, in1, env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_static`](Self::advance_static) sharing a caller-owned
    /// rate cache, so a whole-chip advance evaluates each condition's
    /// rate multipliers once rather than once per LUT.
    pub fn advance_static_cached(
        &mut self,
        in0: bool,
        in1: bool,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        let stressed = self.stressed_indices(in0, in1);
        for (idx, device) in self.devices.iter_mut().enumerate() {
            let cond = if stressed.contains(&idx) {
                DeviceCondition::dc_stress(env)
            } else {
                DeviceCondition::recovery(env)
            };
            device.advance_with_rates(&rates.rates(cond), dt);
        }
    }

    /// Ages the LUT while `In0` toggles (AC stress): each device's stress
    /// duty is the fraction of the two `In0` states in which it is
    /// statically stressed.
    pub fn advance_toggling(&mut self, in1: bool, env: Environment, dt: Seconds) {
        self.advance_toggling_cached(in1, env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_toggling`](Self::advance_toggling) sharing a
    /// caller-owned rate cache across LUTs.
    pub fn advance_toggling_cached(
        &mut self,
        in1: bool,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        let low = self.stressed_indices(false, in1);
        let high = self.stressed_indices(true, in1);
        for (idx, device) in self.devices.iter_mut().enumerate() {
            let count = u8::from(low.contains(&idx)) + u8::from(high.contains(&idx));
            let duty = DutyCycle::new(f64::from(count) / 2.0);
            device.advance_with_rates(&rates.rates(DeviceCondition::new(env, duty)), dt);
        }
    }

    /// Ages the LUT during sleep: no device is stressed; all recover under
    /// the (possibly negative-voltage, possibly heated) sleep environment.
    pub fn advance_sleep(&mut self, env: Environment, dt: Seconds) {
        self.advance_sleep_cached(env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_sleep`](Self::advance_sleep) sharing a caller-owned
    /// rate cache across LUTs.
    pub fn advance_sleep_cached(
        &mut self,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        let recovery = rates.rates(DeviceCondition::recovery(env));
        for device in &mut self.devices {
            device.advance_with_rates(&recovery, dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_units::{Celsius, Hours};

    fn fresh_inverter() -> Lut {
        let mut rng = StdRng::seed_from_u64(2);
        let family = Family::commercial_40nm().without_variation();
        Lut::sample(LutConfig::inverter_in0(), &family, Millivolts::new(0.0), &mut rng)
    }

    fn hot_stress() -> Environment {
        Environment::new(Volts::new(1.2), Celsius::new(110.0))
    }

    #[test]
    fn inverter_truth_table() {
        let lut = fresh_inverter();
        assert!(!lut.evaluate(true, true), "In0=1 → 0");
        assert!(lut.evaluate(false, true), "In0=0 → 1");
    }

    #[test]
    fn paper_stress_example_in0_high() {
        // §3.2: "Assume the inverter is under DC stress, and In0 is always
        // 1. M1, M5 are under stress" (plus the buffer PMOS M8, which the
        // paper's NMOS-focused narration leaves implicit).
        let lut = fresh_inverter();
        let mut stressed = lut.stressed_indices(true, true);
        stressed.sort_unstable();
        assert_eq!(stressed, vec![M1, M5, M8]);
    }

    #[test]
    fn paper_stress_example_in0_low() {
        // §3.2: "If In0 is always 0, only M7 is under stress."
        let lut = fresh_inverter();
        assert_eq!(lut.stressed_indices(false, true), vec![M7]);
    }

    #[test]
    fn hypothesis_1_stress_set_is_constant_under_dc() {
        // The stress set depends only on the inputs, not on elapsed time.
        let mut lut = fresh_inverter();
        let before = lut.stressed_indices(true, true);
        lut.advance_static(true, true, hot_stress(), Hours::new(24.0).into());
        let after = lut.stressed_indices(true, true);
        assert_eq!(before, after);
    }

    #[test]
    fn hypothesis_2_recovery_only_affects_stressed_devices() {
        let mut lut = fresh_inverter();
        lut.advance_static(true, true, hot_stress(), Hours::new(24.0).into());
        let aged: Vec<bool> = lut.devices().iter().map(Transistor::is_aged).collect();

        // Deep rejuvenation:
        lut.advance_sleep(
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Hours::new(6.0).into(),
        );
        for (device, was_aged) in lut.devices().iter().zip(aged) {
            if !was_aged {
                assert!(
                    !device.is_aged(),
                    "fresh device {} must stay fresh through recovery",
                    device.name()
                );
            }
        }
    }

    #[test]
    fn poi_follows_selected_branch() {
        let lut = fresh_inverter();
        assert_eq!(lut.poi_indices(true, true), [M1, M5, M7, M8]);
        assert_eq!(lut.poi_indices(false, true), [M2, M5, M7, M8]);
        assert_eq!(lut.poi_indices(true, false), [M3, M6, M7, M8]);
        assert_eq!(lut.poi_indices(false, false), [M4, M6, M7, M8]);
    }

    #[test]
    fn fresh_path_delay_matches_budget() {
        let lut = fresh_inverter();
        // 2 × 0.15 (pass) + 2 × 0.125 (buffer) = 0.55 ns.
        let d = lut.path_delay(Volts::new(1.2), true, true);
        assert!((d.get() - 0.55).abs() < 1e-12, "{d}");
        let s = lut.switching_delay(Volts::new(1.2), true);
        assert!((s.get() - 0.55).abs() < 1e-12);
    }

    #[test]
    fn dc_stress_slows_the_stressed_path_more() {
        let mut lut = fresh_inverter();
        lut.advance_static(true, true, hot_stress(), Hours::new(24.0).into());
        let stressed_path = lut.path_delay(Volts::new(1.2), true, true);
        let other_path = lut.path_delay(Volts::new(1.2), false, true);
        // Both paths share the aged M5/M8, but the stressed path also has
        // the aged M1 while the other has the fresh M2.
        assert!(stressed_path > other_path);
        assert!(other_path > Nanoseconds::new(0.55));
    }

    #[test]
    fn toggling_duties_match_static_union() {
        let lut = fresh_inverter();
        let low = lut.stressed_indices(false, true);
        let high = lut.stressed_indices(true, true);
        // AC stresses exactly the union of the two static sets.
        let union: Vec<usize> = (0..8)
            .filter(|i| low.contains(i) || high.contains(i))
            .collect();
        assert_eq!(union, vec![M1, M5, M7, M8]);
    }

    #[test]
    fn ac_ages_less_than_dc_per_lut() {
        let family = Family::commercial_40nm().without_variation();
        let mut rng = StdRng::seed_from_u64(3);
        let mut dc = Lut::sample(LutConfig::inverter_in0(), &family, Millivolts::new(0.0), &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ac = Lut::sample(LutConfig::inverter_in0(), &family, Millivolts::new(0.0), &mut rng);

        dc.advance_static(true, true, hot_stress(), Hours::new(24.0).into());
        ac.advance_toggling(true, hot_stress(), Hours::new(24.0).into());

        let vdd = Volts::new(1.2);
        let dc_shift = dc.switching_delay(vdd, true).get() - 0.55;
        let ac_shift = ac.switching_delay(vdd, true).get() - 0.55;
        assert!(dc_shift > 0.0 && ac_shift > 0.0);
        assert!(ac_shift < dc_shift, "AC {ac_shift} vs DC {dc_shift}");
    }

    #[test]
    fn sleep_heals_a_stressed_lut() {
        let mut lut = fresh_inverter();
        lut.advance_static(true, true, hot_stress(), Hours::new(24.0).into());
        let vdd = Volts::new(1.2);
        let aged = lut.switching_delay(vdd, true);
        lut.advance_sleep(
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Hours::new(6.0).into(),
        );
        let healed = lut.switching_delay(vdd, true);
        assert!(healed < aged);
        assert!(healed.get() > 0.55, "partial recovery only");
    }

    #[test]
    fn config_bit_indexing() {
        let c = LutConfig::new([false, true, false, true]);
        assert!(!c.evaluate(false, false)); // c00
        assert!(c.evaluate(true, false)); // c01
        assert!(!c.evaluate(false, true)); // c10
        assert!(c.evaluate(true, true)); // c11
    }
}
