//! One simulated FPGA chip: fabric, process corner, circuit under test and
//! measurement pipeline.

use rand::Rng;
use selfheal_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use selfheal_bti::td::PhaseRateCache;
use selfheal_bti::Environment;
use selfheal_units::{Hertz, Millivolts, Nanoseconds, Seconds};

use crate::counter::{CounterReading, FrequencyCounter};
use crate::family::Family;
use crate::ring_oscillator::{RingOscillator, RoMode};

/// Identity of a physical chip in the test population ("Chip 1"…"Chip 5"
/// in the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChipId(u32);

impl ChipId {
    /// Creates a chip identity.
    #[must_use]
    pub const fn new(id: u32) -> Self {
        ChipId(id)
    }

    /// The raw id.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for ChipId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Chip {}", self.0)
    }
}

/// One measurement of the CUT, as the paper's diagnostic program would log
/// it: the raw counter capture plus the derived frequency and delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Raw counter reading.
    pub reading: CounterReading,
    /// Oscillation frequency implied by the reading (Eq. 14).
    pub frequency: Hertz,
    /// CUT delay implied by the reading (Eq. 15).
    pub cut_delay: Nanoseconds,
}

/// A simulated 40 nm FPGA chip.
///
/// Carries its own process corner (all devices share a chip-level Vth
/// offset, plus local mismatch), its ring-oscillator CUT and the counter.
/// See the crate-level example for typical use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chip {
    id: ChipId,
    family: Family,
    corner_offset: Millivolts,
    ro: RingOscillator,
    counter: FrequencyCounter,
}

impl Chip {
    /// Samples a fresh chip of the given family.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(id: ChipId, family: Family, rng: &mut R) -> Self {
        let corner_offset = family.variation.sample_chip_offset(rng);
        let ro = RingOscillator::sample(&family, corner_offset, rng);
        let counter = FrequencyCounter::new(family.counter_bits, family.reference_clock);
        Chip {
            id,
            family,
            corner_offset,
            ro,
            counter,
        }
    }

    /// Samples a fresh chip of the paper's commercial 40 nm family.
    #[must_use]
    pub fn commercial_40nm<R: Rng + ?Sized>(id: ChipId, rng: &mut R) -> Self {
        Chip::sample(id, Family::commercial_40nm(), rng)
    }

    /// The chip's identity.
    #[must_use]
    pub fn id(&self) -> ChipId {
        self.id
    }

    /// The chip's family parameters.
    #[must_use]
    pub fn family(&self) -> &Family {
        &self.family
    }

    /// The chip's process-corner threshold offset.
    #[must_use]
    pub fn corner_offset(&self) -> Millivolts {
        self.corner_offset
    }

    /// The ring oscillator under test.
    #[must_use]
    pub fn ring_oscillator(&self) -> &RingOscillator {
        &self.ro
    }

    /// The CUT's true (noise-free) delay at the nominal supply — the
    /// quantity a measurement estimates.
    #[must_use]
    pub fn true_cut_delay(&self) -> Nanoseconds {
        self.ro.cut_delay(self.family.vdd_nominal)
    }

    /// The CUT's fresh delay at the nominal supply.
    #[must_use]
    pub fn fresh_cut_delay(&self) -> Nanoseconds {
        self.ro.fresh_cut_delay()
    }

    /// Number of counter captures averaged per measurement. The paper's
    /// diagnostic program reads the counter "from a certain time range
    /// that has stable values" (§4.2); averaging eight captures reduces
    /// the ±5-count jitter to well under a count, matching the paper's
    /// quoted frequency repeatability.
    pub const READS_PER_MEASUREMENT: usize = 8;

    /// Runs the diagnostic program once: enable the RO briefly at the
    /// nominal supply, capture the counter over a stable window, convert
    /// to frequency and delay.
    ///
    /// As in §4.2, "environmental factors and the voltage supply are kept
    /// constant from one reading to another", so readings are comparable
    /// across the whole schedule; the only measurement noise is the
    /// averaged residue of the counter's ±5-count repeatability.
    pub fn measure<R: Rng + ?Sized>(&self, rng: &mut R) -> Measurement {
        let fosc = self.ro.frequency(self.family.vdd_nominal);
        let reading = self.counter.read(fosc, rng);
        let mean = (f64::from(reading.count)
            + (1..Self::READS_PER_MEASUREMENT)
                .map(|_| f64::from(self.counter.read(fosc, rng).count))
                .sum::<f64>())
            / Self::READS_PER_MEASUREMENT as f64;
        let measurement = Measurement {
            reading,
            frequency: self.counter.frequency_of_count(mean),
            cut_delay: self.counter.delay_of_count(mean),
        };
        telemetry::counter!("fpga.chip.measurements", 1.0);
        telemetry::gauge!("fpga.chip.ro_frequency_mhz", measurement.frequency.get() / 1e6);
        telemetry::gauge!("fpga.chip.cut_delay_ns", measurement.cut_delay.get());
        telemetry::event!(
            "fpga.chip.measure",
            chip = self.id.get(),
            frequency_mhz = measurement.frequency.get() / 1e6,
            cut_delay_ns = measurement.cut_delay.get(),
        );
        measurement
    }

    /// Ages the chip for `dt` in the given RO mode and environment.
    ///
    /// The phase's rate multipliers are evaluated once here and shared
    /// across every device on the chip (see `selfheal_bti::td::kernel`).
    pub fn advance(&mut self, mode: RoMode, env: Environment, dt: Seconds) {
        let mut rates = PhaseRateCache::new();
        self.ro.advance_cached(mode, env, dt, &mut rates);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_units::{Celsius, Hours, Volts};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(10)
    }

    fn hot() -> Environment {
        Environment::new(Volts::new(1.2), Celsius::new(110.0))
    }

    #[test]
    fn fresh_chips_differ_due_to_variation() {
        let mut r = rng();
        let a = Chip::commercial_40nm(ChipId::new(1), &mut r);
        let b = Chip::commercial_40nm(ChipId::new(2), &mut r);
        assert_ne!(
            a.true_cut_delay(),
            b.true_cut_delay(),
            "the paper's motivation for the Recovered Delay metric"
        );
    }

    #[test]
    fn measurement_tracks_true_delay() {
        let mut r = rng();
        let chip = Chip::commercial_40nm(ChipId::new(1), &mut r);
        let m = chip.measure(&mut r);
        let err = (m.cut_delay.get() - chip.true_cut_delay().get()).abs();
        assert!(err / chip.true_cut_delay().get() < 0.005, "err = {err} ns");
        assert!(!m.reading.saturated);
    }

    #[test]
    fn stress_then_measure_shows_degradation() {
        let mut r = rng();
        let mut chip = Chip::commercial_40nm(ChipId::new(3), &mut r);
        let fresh = chip.measure(&mut r);
        chip.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        let aged = chip.measure(&mut r);
        assert!(aged.frequency < fresh.frequency);
        assert!(aged.cut_delay > fresh.cut_delay);
        let deg = aged.frequency.degradation_from(fresh.frequency);
        assert!(deg > 0.01 && deg < 0.04, "degradation = {deg}");
    }

    #[test]
    fn rejuvenation_recovers_measured_delay() {
        let mut r = rng();
        let mut chip = Chip::commercial_40nm(ChipId::new(5), &mut r);
        chip.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        let aged = chip.measure(&mut r);
        chip.advance(
            RoMode::Sleep,
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Hours::new(6.0).into(),
        );
        let healed = chip.measure(&mut r);
        assert!(healed.cut_delay < aged.cut_delay);
    }

    #[test]
    fn id_display() {
        assert_eq!(ChipId::new(4).to_string(), "Chip 4");
        assert_eq!(ChipId::new(4).get(), 4);
    }

    #[test]
    fn fresh_delay_is_recorded_before_any_stress() {
        let mut r = rng();
        let mut chip = Chip::commercial_40nm(ChipId::new(9), &mut r);
        let fresh = chip.fresh_cut_delay();
        chip.advance(RoMode::Static, hot(), Hours::new(24.0).into());
        assert_eq!(chip.fresh_cut_delay(), fresh, "fresh baseline is immutable");
        assert!(chip.true_cut_delay() > fresh);
    }
}
