//! The path of interest: a chain of LUT-mapped inverters and routing
//! blocks (Eq. 7's `LD` and `Ns` live here).

use rand::Rng;
use serde::{Deserialize, Serialize};
use selfheal_bti::td::PhaseRateCache;
use selfheal_bti::Environment;
use selfheal_units::{Millivolts, Nanoseconds, Seconds, Volts};

use crate::family::Family;
use crate::lut::{Lut, LutConfig};
use crate::routing::RoutingBlock;

/// One inverter stage: a LUT plus its downstream routing block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// The LUT-mapped inverter.
    pub lut: Lut,
    /// The routing block carrying its output to the next stage.
    pub routing: RoutingBlock,
}

/// A chain of LUT-mapped inverters — the circuit under test's path of
/// interest.
///
/// `In1` is tied high on every LUT (the paper's inverter mapping). When the
/// chain is *disabled* (DC stress mode) the loop parks with alternating
/// logic levels: stage `i` sees input `1` for even `i` — so even stages
/// carry the paper's `{M1, M5}`-style stress set and odd stages the `{M7}`
/// set, and about half of the POI devices are stressed in total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InverterChain {
    stages: Vec<Stage>,
    fresh_delay: Nanoseconds,
    vdd_nominal: Volts,
}

impl InverterChain {
    /// Samples a fresh chain of `n` inverter stages.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        n: usize,
        family: &Family,
        chip_offset: Millivolts,
        rng: &mut R,
    ) -> Self {
        let stages: Vec<Stage> = (0..n)
            .map(|_| Stage {
                lut: Lut::sample(LutConfig::inverter_in0(), family, chip_offset, rng),
                routing: RoutingBlock::sample(family, chip_offset, rng),
            })
            .collect();
        let mut chain = InverterChain {
            stages,
            fresh_delay: Nanoseconds::ZERO,
            vdd_nominal: family.vdd_nominal,
        };
        chain.fresh_delay = chain.path_delay(family.vdd_nominal);
        chain
    }

    /// Number of stages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the chain has no stages.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages.
    #[must_use]
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The input level stage `i` parks at while the chain is disabled.
    #[must_use]
    pub fn static_input(i: usize) -> bool {
        i.is_multiple_of(2)
    }

    /// Logic depth `LD` of the POI: devices per stage × stages (Eq. 7).
    #[must_use]
    pub fn logic_depth(&self) -> usize {
        // 4 LUT POI devices + 2 routing devices per stage.
        self.stages.len() * 6
    }

    /// Number of POI devices currently under stress in DC (static) mode —
    /// the `Ns` of Eq. 7 (`0 ≤ Ns ≤ LD`, Hypothesis 1).
    #[must_use]
    pub fn stressed_poi_count(&self) -> usize {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, stage)| {
                let in0 = Self::static_input(i);
                let poi = stage.lut.poi_indices(in0, true);
                let stressed = stage.lut.stressed_indices(in0, true);
                let lut_count = stressed.iter().filter(|s| poi.contains(s)).count();
                // The routing block's stressed device is always on the POI.
                lut_count + 1
            })
            .sum()
    }

    /// Total propagation delay along the POI at supply `vdd`.
    #[must_use]
    pub fn path_delay(&self, vdd: Volts) -> Nanoseconds {
        self.stages
            .iter()
            .map(|s| s.lut.switching_delay(vdd, true) + s.routing.delay(vdd))
            .sum()
    }

    /// The chain's fresh POI delay at the nominal supply, recorded at
    /// construction.
    #[must_use]
    pub fn fresh_delay(&self) -> Nanoseconds {
        self.fresh_delay
    }

    /// Current POI delay shift versus fresh, at the nominal supply.
    #[must_use]
    pub fn delay_shift(&self) -> Nanoseconds {
        self.path_delay(self.vdd_nominal) - self.fresh_delay
    }

    /// Ages the chain with the loop parked (DC stress).
    pub fn advance_static(&mut self, env: Environment, dt: Seconds) {
        self.advance_static_cached(env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_static`](Self::advance_static) sharing a caller-owned
    /// rate cache — chip- and fabric-level loops pass one cache so the
    /// whole advance evaluates each condition's multipliers once.
    pub fn advance_static_cached(
        &mut self,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        for (i, stage) in self.stages.iter_mut().enumerate() {
            let in0 = Self::static_input(i);
            stage.lut.advance_static_cached(in0, true, env, dt, rates);
            // The routing net parks at the LUT's output level.
            let out = stage.lut.evaluate(in0, true);
            stage.routing.advance_static_cached(out, env, dt, rates);
        }
    }

    /// Ages the chain while it oscillates (AC stress).
    pub fn advance_toggling(&mut self, env: Environment, dt: Seconds) {
        self.advance_toggling_cached(env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_toggling`](Self::advance_toggling) sharing a
    /// caller-owned rate cache.
    pub fn advance_toggling_cached(
        &mut self,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        for stage in &mut self.stages {
            stage.lut.advance_toggling_cached(true, env, dt, rates);
            stage.routing.advance_toggling_cached(env, dt, rates);
        }
    }

    /// Ages the chain during sleep (no stress anywhere).
    pub fn advance_sleep(&mut self, env: Environment, dt: Seconds) {
        self.advance_sleep_cached(env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_sleep`](Self::advance_sleep) sharing a caller-owned
    /// rate cache.
    pub fn advance_sleep_cached(
        &mut self,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        for stage in &mut self.stages {
            stage.lut.advance_sleep_cached(env, dt, rates);
            stage.routing.advance_sleep_cached(env, dt, rates);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_units::{Celsius, Hours};

    fn chain(n: usize) -> InverterChain {
        let mut rng = StdRng::seed_from_u64(6);
        let family = Family::commercial_40nm().without_variation();
        InverterChain::sample(n, &family, Millivolts::new(0.0), &mut rng)
    }

    fn hot() -> Environment {
        Environment::new(Volts::new(1.2), Celsius::new(110.0))
    }

    #[test]
    fn fresh_delay_budget_for_75_stages() {
        let c = chain(75);
        assert!((c.fresh_delay().get() - 90.0).abs() < 1e-9, "{}", c.fresh_delay());
        assert_eq!(c.len(), 75);
        assert!(!c.is_empty());
    }

    #[test]
    fn logic_depth_counts_poi_devices() {
        let c = chain(75);
        assert_eq!(c.logic_depth(), 450);
    }

    #[test]
    fn static_levels_alternate() {
        assert!(InverterChain::static_input(0));
        assert!(!InverterChain::static_input(1));
        assert!(InverterChain::static_input(2));
    }

    #[test]
    fn ns_is_about_half_of_ld() {
        // Even stages: {M1, M5, M8} ∩ POI = 3, plus routing = 4.
        // Odd stages: {M7} ∩ POI = 1, plus routing = 2.
        let c = chain(10);
        assert_eq!(c.stressed_poi_count(), 5 * 4 + 5 * 2);
        let ratio = c.stressed_poi_count() as f64 / c.logic_depth() as f64;
        assert!((ratio - 0.5).abs() < 1e-12, "Ns/LD = {ratio}");
    }

    #[test]
    fn dc_stress_shifts_delay_about_two_percent() {
        let mut c = chain(75);
        c.advance_static(hot(), Hours::new(24.0).into());
        let rel = c.delay_shift().get() / c.fresh_delay().get();
        assert!(rel > 0.012 && rel < 0.04, "relative shift = {rel}");
    }

    #[test]
    fn ac_path_shift_is_about_half_of_dc() {
        let mut dc = chain(75);
        dc.advance_static(hot(), Hours::new(24.0).into());
        let mut ac = chain(75);
        ac.advance_toggling(hot(), Hours::new(24.0).into());
        let ratio = ac.delay_shift().get() / dc.delay_shift().get();
        assert!(ratio > 0.35 && ratio < 0.7, "AC/DC path ratio = {ratio}");
    }

    #[test]
    fn sleep_recovers_most_of_the_shift() {
        let mut c = chain(75);
        c.advance_static(hot(), Hours::new(24.0).into());
        let aged = c.delay_shift().get();
        c.advance_sleep(
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Hours::new(6.0).into(),
        );
        let healed = c.delay_shift().get();
        let recovered = (aged - healed) / aged;
        assert!(recovered > 0.6 && recovered < 0.9, "recovered fraction = {recovered}");
    }

    #[test]
    fn empty_chain_is_harmless() {
        let mut c = chain(0);
        assert!(c.is_empty());
        assert_eq!(c.path_delay(Volts::new(1.2)), Nanoseconds::ZERO);
        c.advance_static(hot(), Hours::new(1.0).into());
        assert_eq!(c.delay_shift(), Nanoseconds::ZERO);
    }
}
