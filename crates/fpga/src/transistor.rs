//! A single FPGA device: polarity, fresh threshold (with process
//! variation) and its BTI aging state.

use rand::Rng;
use serde::{Deserialize, Serialize};
use selfheal_bti::td::{PhaseRates, TrapEnsemble, TrapEnsembleParams};
use selfheal_bti::DeviceCondition;
use selfheal_units::{Millivolts, Nanoseconds, Seconds, Volts};

use crate::delay::device_delay;

/// Device polarity. NMOS devices suffer PBTI under positive gate stress,
/// PMOS devices suffer NBTI under negative gate stress; the paper treats
/// the two as symmetric in magnitude for high-k 40 nm processes (§3.1),
/// and so do we — the polarity matters for *which bias condition counts as
/// stress*, which the LUT's structural analysis resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// N-channel device (pass transistors, buffer pull-down) — PBTI.
    Nmos,
    /// P-channel device (buffer pull-up) — NBTI.
    Pmos,
}

impl std::fmt::Display for Polarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Polarity::Nmos => f.write_str("NMOS"),
            Polarity::Pmos => f.write_str("PMOS"),
        }
    }
}

/// One transistor of the simulated fabric.
///
/// The `delay_share` is the device's fresh contribution to the
/// path-of-interest delay at the nominal operating point; devices not on
/// the POI have a zero share (their aging exists but does not slow the
/// oscillator — Hypothesis 1's "not all transistors on POI are under
/// stress" has the complementary face that not all stressed transistors
/// are on the POI).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transistor {
    name: String,
    polarity: Polarity,
    vth_fresh: Volts,
    vth_ref: Volts,
    delay_share: Nanoseconds,
    aging: TrapEnsemble,
}

impl Transistor {
    /// Creates a device, sampling its trap population and taking a
    /// pre-computed fresh threshold (nominal + chip corner + local
    /// mismatch).
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        name: impl Into<String>,
        polarity: Polarity,
        vth_fresh: Volts,
        vth_ref: Volts,
        delay_share: Nanoseconds,
        trap_params: &TrapEnsembleParams,
        rng: &mut R,
    ) -> Self {
        Transistor {
            name: name.into(),
            polarity,
            vth_fresh,
            vth_ref,
            delay_share,
            aging: TrapEnsemble::sample(trap_params, rng),
        }
    }

    /// The device's instance name (`M1`…`M8`, `R1`, `R2`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device polarity.
    #[must_use]
    pub fn polarity(&self) -> Polarity {
        self.polarity
    }

    /// Fresh threshold magnitude (before any aging).
    #[must_use]
    pub fn vth_fresh(&self) -> Volts {
        self.vth_fresh
    }

    /// Current threshold magnitude: fresh + BTI shift.
    #[must_use]
    pub fn vth(&self) -> Volts {
        self.vth_fresh + Volts::from(self.aging.delta_vth())
    }

    /// Current BTI threshold shift.
    #[must_use]
    pub fn delta_vth(&self) -> Millivolts {
        self.aging.delta_vth()
    }

    /// Whether this device has (measurably) aged.
    #[must_use]
    pub fn is_aged(&self) -> bool {
        self.aging.delta_vth().get() > 1e-9
    }

    /// This device's fresh share of the POI delay.
    #[must_use]
    pub fn delay_share(&self) -> Nanoseconds {
        self.delay_share
    }

    /// Whether the device sits on the path of interest.
    #[must_use]
    pub fn is_on_poi(&self) -> bool {
        self.delay_share.get() > 0.0
    }

    /// The device's present delay contribution at supply `vdd` (Eq. 5).
    #[must_use]
    pub fn delay(&self, vdd: Volts) -> Nanoseconds {
        if !self.is_on_poi() {
            return Nanoseconds::ZERO;
        }
        device_delay(self.delay_share, vdd, self.vth(), self.vth_ref)
    }

    /// Ages the device by `dt` under `cond`.
    pub fn advance(&mut self, cond: DeviceCondition, dt: Seconds) {
        self.aging.advance(cond, dt);
    }

    /// [`advance`](Self::advance) with the condition's rate multipliers
    /// already evaluated — chip-level advance loops hoist the
    /// transcendental work once per condition and fan it out here.
    pub fn advance_with_rates(&mut self, rates: &PhaseRates, dt: Seconds) {
        self.aging.advance_with_rates(rates, dt);
    }

    /// Immutable view of the trap population (for diagnostics).
    #[must_use]
    pub fn aging(&self) -> &TrapEnsemble {
        &self.aging
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_bti::{DeviceCondition, Environment};
    use selfheal_units::{Celsius, Hours};

    fn device(share: f64) -> Transistor {
        let mut rng = StdRng::seed_from_u64(5);
        Transistor::sample(
            "M1",
            Polarity::Nmos,
            Volts::new(0.40),
            Volts::new(0.40),
            Nanoseconds::new(share),
            &TrapEnsembleParams::default(),
            &mut rng,
        )
    }

    fn stress() -> DeviceCondition {
        DeviceCondition::dc_stress(Environment::new(Volts::new(1.2), Celsius::new(110.0)))
    }

    #[test]
    fn fresh_device_delay_equals_share() {
        let t = device(0.15);
        assert_eq!(t.delay(Volts::new(1.2)), Nanoseconds::new(0.15));
        assert!(!t.is_aged());
    }

    #[test]
    fn stressed_device_slows_down() {
        let mut t = device(0.15);
        t.advance(stress(), Hours::new(24.0).into());
        assert!(t.is_aged());
        assert!(t.delay(Volts::new(1.2)) > Nanoseconds::new(0.15));
        assert!(t.vth() > t.vth_fresh());
    }

    #[test]
    fn off_poi_device_contributes_no_delay() {
        let mut t = device(0.0);
        t.advance(stress(), Hours::new(24.0).into());
        assert!(t.is_aged(), "it ages...");
        assert_eq!(t.delay(Volts::new(1.2)), Nanoseconds::ZERO, "...but adds no delay");
        assert!(!t.is_on_poi());
    }

    #[test]
    fn variation_offsets_move_fresh_threshold() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Transistor::sample(
            "M2",
            Polarity::Pmos,
            Volts::new(0.412),
            Volts::new(0.40),
            Nanoseconds::new(0.15),
            &TrapEnsembleParams::default(),
            &mut rng,
        );
        // A slow corner device is slower than nominal even when fresh.
        assert!(t.delay(Volts::new(1.2)) > Nanoseconds::new(0.15));
    }

    #[test]
    fn names_and_polarity_survive() {
        let t = device(0.1);
        assert_eq!(t.name(), "M1");
        assert_eq!(t.polarity(), Polarity::Nmos);
        assert_eq!(Polarity::Pmos.to_string(), "PMOS");
    }
}
