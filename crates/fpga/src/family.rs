//! Device-family parameters for the simulated commercial 40 nm FPGA.

use serde::{Deserialize, Serialize};
use selfheal_bti::td::TrapEnsembleParams;
use selfheal_bti::variation::ProcessVariation;
use selfheal_units::{Celsius, Hertz, Nanoseconds, Volts};

/// Everything that characterises an FPGA family for these experiments:
/// fresh delay budget of the path of interest, supply/threshold nominals,
/// the recommended and survivable temperature ranges (§4.3: the paper runs
/// *above* the recommended 85 °C limit but below destruction), and the
/// trap/variation statistics of the process.
///
/// # Examples
///
/// ```
/// use selfheal_fpga::Family;
///
/// let family = Family::commercial_40nm();
/// assert_eq!(family.ro_stages, 75);
/// assert!(family.allows_accelerated_temperature(selfheal_units::Celsius::new(110.0)));
/// assert!(!family.allows_accelerated_temperature(selfheal_units::Celsius::new(150.0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Family {
    /// Marketing-style family name.
    pub name: String,
    /// Nominal core supply (1.2 V for the paper's parts).
    pub vdd_nominal: Volts,
    /// Nominal fresh threshold-voltage magnitude.
    pub vth_nominal: Volts,
    /// Fresh delay share of one *pass transistor* on the POI.
    pub pass_delay: Nanoseconds,
    /// Fresh delay share of one *buffer device* (half an inverter) on the POI.
    pub buffer_delay: Nanoseconds,
    /// Fresh delay share of one routing device on the POI.
    pub routing_device_delay: Nanoseconds,
    /// Number of LUT-inverter stages in the ring oscillator (75 in Fig. 3).
    pub ro_stages: usize,
    /// Counter width in bits (16 in Fig. 3).
    pub counter_bits: u32,
    /// Counter reference clock (500 Hz in §4.2).
    pub reference_clock: Hertz,
    /// Recommended operating range from the datasheet (−40 °C to 85 °C).
    pub recommended_temperature: (Celsius, Celsius),
    /// Maximum temperature at which the part still functions well enough to
    /// run accelerated tests (the paper uses 100–110 °C, "above the upper
    /// limit ... but not too high to prevent the chip from functioning").
    pub accelerated_temperature_limit: Celsius,
    /// Trap statistics of the 40 nm process.
    pub trap_params: TrapEnsembleParams,
    /// Process-variation statistics.
    pub variation: ProcessVariation,
}

impl Family {
    /// The simulated stand-in for the paper's commercial 40 nm family.
    ///
    /// The fresh POI delay budget is 1.2 ns per stage (0.55 ns LUT +
    /// 0.65 ns routing), giving the 75-stage ring oscillator a ≈ 90 ns
    /// half-period and a ≈ 5.6 MHz oscillation frequency — comfortably
    /// inside the 16-bit counter range at the 500 Hz reference clock.
    #[must_use]
    pub fn commercial_40nm() -> Self {
        Family {
            name: "SimFab LX-40 (40 nm)".to_string(),
            vdd_nominal: Volts::new(1.2),
            vth_nominal: Volts::new(0.40),
            pass_delay: Nanoseconds::new(0.15),
            buffer_delay: Nanoseconds::new(0.125),
            routing_device_delay: Nanoseconds::new(0.325),
            ro_stages: 75,
            counter_bits: 16,
            reference_clock: Hertz::new(500.0),
            recommended_temperature: (Celsius::new(-40.0), Celsius::new(85.0)),
            accelerated_temperature_limit: Celsius::new(125.0),
            trap_params: TrapEnsembleParams::default(),
            variation: ProcessVariation::default(),
        }
    }

    /// A variation-free copy of the family — every sampled chip is
    /// identical. Used by tests that need exact baselines.
    #[must_use]
    pub fn without_variation(mut self) -> Self {
        self.variation = ProcessVariation::none();
        self
    }

    /// Fresh POI delay of one full stage (LUT + routing).
    ///
    /// LUT share: two pass transistors + two buffer devices.
    #[must_use]
    pub fn stage_delay(&self) -> Nanoseconds {
        Nanoseconds::new(
            2.0 * self.pass_delay.get()
                + 2.0 * self.buffer_delay.get()
                + 2.0 * self.routing_device_delay.get(),
        )
    }

    /// Whether `t` lies inside the datasheet's recommended range.
    #[must_use]
    pub fn is_recommended_temperature(&self, t: Celsius) -> bool {
        let (lo, hi) = self.recommended_temperature;
        t >= lo && t <= hi
    }

    /// Whether `t` is usable for accelerated testing: possibly above the
    /// recommended range, but below the functional limit.
    #[must_use]
    pub fn allows_accelerated_temperature(&self, t: Celsius) -> bool {
        let (lo, _) = self.recommended_temperature;
        t >= lo && t <= self.accelerated_temperature_limit
    }
}

impl Default for Family {
    fn default() -> Self {
        Family::commercial_40nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_delay_budget() {
        let f = Family::commercial_40nm();
        assert!((f.stage_delay().get() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn ro_frequency_lands_in_counter_range() {
        let f = Family::commercial_40nm();
        let half_period_ns = f.stage_delay().get() * f.ro_stages as f64;
        let fosc_hz = 1e9 / (2.0 * half_period_ns);
        let count = fosc_hz / (2.0 * f.reference_clock.get());
        assert!(count > 1000.0, "enough resolution: {count}");
        assert!(count < f64::from(u32::pow(2, f.counter_bits) - 1), "no overflow: {count}");
    }

    #[test]
    fn temperature_windows() {
        let f = Family::commercial_40nm();
        assert!(f.is_recommended_temperature(Celsius::new(25.0)));
        assert!(!f.is_recommended_temperature(Celsius::new(110.0)));
        assert!(f.allows_accelerated_temperature(Celsius::new(110.0)));
        assert!(f.allows_accelerated_temperature(Celsius::new(100.0)));
        assert!(!f.allows_accelerated_temperature(Celsius::new(200.0)));
        assert!(!f.allows_accelerated_temperature(Celsius::new(-55.0)));
    }

    #[test]
    fn without_variation_zeroes_sigmas() {
        let f = Family::commercial_40nm().without_variation();
        assert_eq!(f.variation.chip_sigma_mv.get(), 0.0);
        assert_eq!(f.variation.device_sigma_mv.get(), 0.0);
    }
}
