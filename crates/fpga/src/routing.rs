//! Routing blocks: the buffered interconnect between LUTs on the path of
//! interest.
//!
//! The paper's POI runs "from the input of the LUT-based inverter to the
//! output of the routing blocks" (§3.2). We model one routing block per
//! stage as a buffered switch with a pull-down NMOS (`R1`) and a pull-up
//! PMOS (`R2`); the device driving the parked logic level is the one under
//! DC stress, exactly as for the LUT's output buffer.

use rand::Rng;
use serde::{Deserialize, Serialize};
use selfheal_bti::td::PhaseRateCache;
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{Millivolts, Nanoseconds, Seconds, Volts};

use crate::family::Family;
use crate::transistor::{Polarity, Transistor};

/// One routing stage on the POI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingBlock {
    devices: [Transistor; 2],
}

impl RoutingBlock {
    /// Samples a fresh routing block.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        family: &Family,
        chip_offset: Millivolts,
        rng: &mut R,
    ) -> Self {
        let mut mk = |name: &str, pol: Polarity| {
            let local = family.variation.sample_device_offset(rng);
            let vth = family.vth_nominal + Volts::from(chip_offset) + Volts::from(local);
            Transistor::sample(
                name,
                pol,
                vth,
                family.vth_nominal,
                family.routing_device_delay,
                &family.trap_params,
                rng,
            )
        };
        RoutingBlock {
            devices: [mk("R1", Polarity::Nmos), mk("R2", Polarity::Pmos)],
        }
    }

    /// The two routing devices (`R1` NMOS, `R2` PMOS).
    #[must_use]
    pub fn devices(&self) -> &[Transistor] {
        &self.devices
    }

    /// Which device is statically stressed when the routed net is parked at
    /// `value`: the NMOS for a high net, the PMOS for a low one.
    #[must_use]
    pub fn stressed_index(&self, value: bool) -> usize {
        usize::from(!value)
    }

    /// Routing delay through the block (both devices sit on the POI).
    #[must_use]
    pub fn delay(&self, vdd: Volts) -> Nanoseconds {
        self.devices.iter().map(|d| d.delay(vdd)).sum()
    }

    /// Ages the block with its input parked at `value` (DC stress).
    pub fn advance_static(&mut self, value: bool, env: Environment, dt: Seconds) {
        self.advance_static_cached(value, env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_static`](Self::advance_static) sharing a caller-owned
    /// rate cache across routing blocks.
    pub fn advance_static_cached(
        &mut self,
        value: bool,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        let stressed = self.stressed_index(value);
        for (idx, device) in self.devices.iter_mut().enumerate() {
            let cond = if idx == stressed {
                DeviceCondition::dc_stress(env)
            } else {
                DeviceCondition::recovery(env)
            };
            device.advance_with_rates(&rates.rates(cond), dt);
        }
    }

    /// Ages the block while its input toggles (AC stress): both devices at
    /// 50 % duty.
    pub fn advance_toggling(&mut self, env: Environment, dt: Seconds) {
        self.advance_toggling_cached(env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_toggling`](Self::advance_toggling) sharing a
    /// caller-owned rate cache across routing blocks.
    pub fn advance_toggling_cached(
        &mut self,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        let ac = rates.rates(DeviceCondition::ac_stress(env));
        for device in &mut self.devices {
            device.advance_with_rates(&ac, dt);
        }
    }

    /// Ages the block during sleep: both devices recover.
    pub fn advance_sleep(&mut self, env: Environment, dt: Seconds) {
        self.advance_sleep_cached(env, dt, &mut PhaseRateCache::new());
    }

    /// [`advance_sleep`](Self::advance_sleep) sharing a caller-owned
    /// rate cache across routing blocks.
    pub fn advance_sleep_cached(
        &mut self,
        env: Environment,
        dt: Seconds,
        rates: &mut PhaseRateCache,
    ) {
        let recovery = rates.rates(DeviceCondition::recovery(env));
        for device in &mut self.devices {
            device.advance_with_rates(&recovery, dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_units::{Celsius, Hours};

    fn fresh_block() -> RoutingBlock {
        let mut rng = StdRng::seed_from_u64(4);
        let family = Family::commercial_40nm().without_variation();
        RoutingBlock::sample(&family, Millivolts::new(0.0), &mut rng)
    }

    fn hot() -> Environment {
        Environment::new(Volts::new(1.2), Celsius::new(110.0))
    }

    #[test]
    fn fresh_delay_matches_budget() {
        let block = fresh_block();
        assert!((block.delay(Volts::new(1.2)).get() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn parked_level_picks_the_stressed_device() {
        let block = fresh_block();
        assert_eq!(block.stressed_index(true), 0, "high net stresses the NMOS R1");
        assert_eq!(block.stressed_index(false), 1, "low net stresses the PMOS R2");
    }

    #[test]
    fn static_stress_only_ages_one_device() {
        let mut block = fresh_block();
        block.advance_static(true, hot(), Hours::new(24.0).into());
        assert!(block.devices()[0].is_aged());
        assert!(!block.devices()[1].is_aged());
    }

    #[test]
    fn toggling_ages_both_but_less() {
        let mut parked = fresh_block();
        parked.advance_static(true, hot(), Hours::new(24.0).into());
        let mut toggling = fresh_block();
        toggling.advance_toggling(hot(), Hours::new(24.0).into());

        assert!(toggling.devices()[0].is_aged());
        assert!(toggling.devices()[1].is_aged());
        assert!(
            toggling.devices()[0].delta_vth().get() < parked.devices()[0].delta_vth().get(),
            "AC per-device shift is below DC"
        );
    }

    #[test]
    fn sleep_recovers_delay() {
        let mut block = fresh_block();
        block.advance_static(false, hot(), Hours::new(24.0).into());
        let aged = block.delay(Volts::new(1.2));
        block.advance_sleep(
            Environment::new(Volts::new(-0.3), Celsius::new(110.0)),
            Hours::new(6.0).into(),
        );
        assert!(block.delay(Volts::new(1.2)) < aged);
    }
}
