//! Multi-location CUT placement across the die.
//!
//! §4.2: "CUT is placed at different locations on the FPGA, and a
//! diagnostic program is run" — the authors survey the die before picking
//! a location. This module provides that survey: an array of ring
//! oscillators placed on a grid, sharing the chip's process corner but
//! carrying a systematic within-die gradient plus local variation, all
//! read through one counter.

use std::sync::Arc;

use rand::Rng;
use selfheal_runtime::{self as runtime, CacheOutcome, CacheRecord, ResultCache, SeedSequence};
use selfheal_telemetry::{self as telemetry, json::Json, manifest::fnv1a};
use serde::{Deserialize, Serialize};
use selfheal_bti::td::PhaseRateCache;
use selfheal_bti::Environment;
use selfheal_units::{float, Millivolts, Nanoseconds, Seconds};

use crate::counter::FrequencyCounter;
use crate::family::Family;
use crate::ring_oscillator::{RingOscillator, RoMode};

/// A CUT site on the die grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DieLocation {
    /// Column index.
    pub column: u8,
    /// Row index.
    pub row: u8,
}

impl std::fmt::Display for DieLocation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.column, self.row)
    }
}

/// Within-die systematic variation: a linear threshold gradient across
/// the die, on top of the chip corner and local mismatch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieGradient {
    /// Systematic Vth slope per column, mV.
    pub mv_per_column: f64,
    /// Systematic Vth slope per row, mV.
    pub mv_per_row: f64,
}

impl Default for DieGradient {
    /// A mild 1.5 mV/site gradient, typical of lithographic/strain
    /// systematics at 40 nm.
    fn default() -> Self {
        DieGradient {
            mv_per_column: 1.5,
            mv_per_row: 1.0,
        }
    }
}

impl DieGradient {
    /// The systematic offset at a location.
    #[must_use]
    pub fn offset_at(&self, location: DieLocation) -> Millivolts {
        Millivolts::new(
            self.mv_per_column * f64::from(location.column)
                + self.mv_per_row * f64::from(location.row),
        )
    }
}

/// An array of CUT ring oscillators across the die.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use selfheal_fpga::fabric::CutArray;
/// use selfheal_fpga::Family;
/// use selfheal_units::Millivolts;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(4);
/// let array = CutArray::sample(
///     &Family::commercial_40nm(),
///     Millivolts::new(0.0),
///     3, 2,
///     &mut rng,
/// );
/// assert_eq!(array.len(), 6);
/// let spread = array.fresh_delay_spread();
/// assert!(spread.get() > 0.0, "locations differ: {spread}");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutArray {
    cuts: Vec<(DieLocation, RingOscillator)>,
    gradient: DieGradient,
    counter: FrequencyCounter,
    vdd: selfheal_units::Volts,
}

impl CutArray {
    /// Samples a `columns × rows` survey array on the given chip corner.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        family: &Family,
        corner_offset: Millivolts,
        columns: u8,
        rows: u8,
        rng: &mut R,
    ) -> Self {
        assert!(columns > 0 && rows > 0, "survey grid must be non-empty");
        let gradient = DieGradient::default();
        let mut cuts = Vec::with_capacity(usize::from(columns) * usize::from(rows));
        for row in 0..rows {
            for column in 0..columns {
                let location = DieLocation { column, row };
                let systematic = gradient.offset_at(location);
                let offset = Millivolts::new(corner_offset.get() + systematic.get());
                cuts.push((location, RingOscillator::sample(family, offset, rng)));
            }
        }
        CutArray {
            cuts,
            gradient,
            counter: FrequencyCounter::new(family.counter_bits, family.reference_clock),
            vdd: family.vdd_nominal,
        }
    }

    /// Samples a survey array with per-site RNG streams derived from
    /// `seed` on the `selfheal-runtime` global pool.
    ///
    /// Unlike [`CutArray::sample`] (which advances one shared RNG
    /// site-by-site and is therefore inherently serial), each site here
    /// draws from `SeedSequence::new(seed).rng(site_index)` — a pure
    /// function of `(family, corner_offset, grid, seed)`, bit-for-bit
    /// identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn sample_seeded(
        family: &Family,
        corner_offset: Millivolts,
        columns: u8,
        rows: u8,
        seed: u64,
    ) -> Self {
        assert!(columns > 0 && rows > 0, "survey grid must be non-empty");
        // Caller-side root span: keeps the pool's internal spans nested,
        // so manifests list the same phases at any worker count.
        let _span = telemetry::span!("fpga.fabric_sample", sites = columns as u64 * rows as u64);
        let gradient = DieGradient::default();
        let locations: Vec<DieLocation> = (0..rows)
            .flat_map(|row| (0..columns).map(move |column| DieLocation { column, row }))
            .collect();
        let seeds = SeedSequence::new(seed);
        let family_owned = family.clone();
        let cuts = runtime::par_map_indexed(locations, move |i, location| {
            let systematic = gradient.offset_at(location);
            let offset = Millivolts::new(corner_offset.get() + systematic.get());
            let mut rng = seeds.rng(i as u64);
            (location, RingOscillator::sample(&family_owned, offset, &mut rng))
        });
        CutArray {
            cuts,
            gradient,
            counter: FrequencyCounter::new(family.counter_bits, family.reference_clock),
            vdd: family.vdd_nominal,
        }
    }

    /// Surveys every site in parallel: measured CUT delay per location in
    /// row-major order, with counter noise drawn from per-site streams
    /// derived from `seed` — deterministic at any worker count.
    #[must_use]
    pub fn survey(&self, seed: u64) -> Vec<(DieLocation, Nanoseconds)> {
        let _span = telemetry::span!("fpga.survey", sites = self.cuts.len());
        let array = Arc::new(self.clone());
        let locations: Vec<DieLocation> = self.locations().collect();
        let seeds = SeedSequence::new(seed);
        runtime::par_map_indexed(locations, move |i, location| {
            let mut rng = seeds.rng(i as u64);
            let Some(delay) = array.measure_at(location, &mut rng) else {
                unreachable!("survey only visits locations the array contains");
            };
            (location, delay)
        })
    }

    /// [`survey`](Self::survey) memoized through a [`ResultCache`].
    ///
    /// The key fingerprints the array's full state (every site's trap
    /// population, the gradient, the counter) plus the survey seed, so
    /// any aging between surveys produces a different entry. The
    /// namespace is versioned by the trap-kinetics
    /// [`KERNEL_VERSION`](selfheal_bti::td::KERNEL_VERSION): a kernel
    /// rewrite orphans old survey entries instead of replaying them.
    ///
    /// The fingerprint is a 64-bit FNV-1a hash of the array's `Debug`
    /// form (the full form would make multi-megabyte keys); a hash
    /// collision between two distinct fabric states could therefore
    /// replay the wrong survey, at odds of ~2⁻⁶⁴ — acceptable for a
    /// measurement cache, and `--no-cache` bypasses it entirely.
    ///
    /// Cache hits skip the per-site measurement telemetry (histogram and
    /// events) the computing run emitted.
    #[must_use]
    pub fn survey_cached(
        &self,
        seed: u64,
        cache: &ResultCache,
    ) -> (Vec<(DieLocation, Nanoseconds)>, CacheOutcome) {
        let fingerprint = fnv1a(format!("{self:?}").as_bytes());
        let key = format!("fabric={fingerprint:016x};sites={};seed={seed}", self.cuts.len());
        let (record, outcome) = cache.get_or_compute(
            "fpga-survey",
            selfheal_bti::td::KERNEL_VERSION,
            &key,
            || SurveyRecord(self.survey(seed)),
        );
        (record.0, outcome)
    }

    /// Number of survey sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Whether the array is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// The survey locations in row-major order.
    pub fn locations(&self) -> impl Iterator<Item = DieLocation> + '_ {
        self.cuts.iter().map(|(l, _)| *l)
    }

    /// True (noise-free) CUT delay at a site.
    #[must_use]
    pub fn true_delay_at(&self, location: DieLocation) -> Option<Nanoseconds> {
        self.cuts
            .iter()
            .find(|(l, _)| *l == location)
            .map(|(_, ro)| ro.cut_delay(self.vdd))
    }

    /// Measured CUT delay at a site (through the shared counter, with its
    /// jitter), averaging 8 reads like [`crate::Chip::measure`].
    pub fn measure_at<R: Rng + ?Sized>(
        &self,
        location: DieLocation,
        rng: &mut R,
    ) -> Option<Nanoseconds> {
        let (_, ro) = self.cuts.iter().find(|(l, _)| *l == location)?;
        let mean = self.counter.read_averaged(ro.frequency(self.vdd), 8, rng);
        let delay = self.counter.delay_of_count(mean);
        // Survey delays across the die land in one histogram, so a single
        // snapshot shows the spatial POI spread §4.2 measures.
        telemetry::histogram!("fpga.survey.poi_delay_ns", delay.get());
        telemetry::event!(
            "fpga.survey.measure",
            row = u32::from(location.row),
            column = u32::from(location.column),
            delay_ns = delay.get(),
        );
        Some(delay)
    }

    /// Ages every site together (they share the fabric's schedule).
    ///
    /// One rate cache spans the whole array: the phase's rate
    /// multipliers are evaluated once and fanned out to every site.
    pub fn advance(&mut self, mode: RoMode, env: Environment, dt: Seconds) {
        let mut rates = PhaseRateCache::new();
        for (_, ro) in &mut self.cuts {
            ro.advance_cached(mode, env, dt, &mut rates);
        }
    }

    /// Spread of fresh delays across the survey — what §4.2's location
    /// survey quantifies before an experiment picks its site.
    #[must_use]
    pub fn fresh_delay_spread(&self) -> Nanoseconds {
        let delays = || self.cuts.iter().map(|(_, ro)| ro.fresh_cut_delay().get());
        let max = float::max_of(delays()).unwrap_or(0.0);
        let min = float::min_of(delays()).unwrap_or(0.0);
        Nanoseconds::new(max - min)
    }

    /// The slowest site right now — the die's critical survey point.
    ///
    /// Equal delays are broken deterministically toward the earlier site
    /// in row-major order, so repeated surveys of an unchanged array
    /// always name the same critical point.
    #[must_use]
    pub fn slowest_site(&self) -> (DieLocation, Nanoseconds) {
        let Some((location, ro)) = self.cuts.iter().max_by(|a, b| {
            a.1.cut_delay(self.vdd)
                .get()
                .total_cmp(&b.1.cut_delay(self.vdd).get())
                .then_with(|| (b.0.row, b.0.column).cmp(&(a.0.row, a.0.column)))
        }) else {
            unreachable!("survey grid is non-empty by construction (asserted in sample)");
        };
        (*location, ro.cut_delay(self.vdd))
    }
}

/// Newtype giving a survey result a cache-file representation:
/// `[[column, row, delay_ns], …]` in row-major order. The JSON layer
/// writes shortest-round-trip floats, so a hit is bit-identical to the
/// miss that stored it.
struct SurveyRecord(Vec<(DieLocation, Nanoseconds)>);

impl CacheRecord for SurveyRecord {
    fn to_cache_json(&self) -> Json {
        Json::Array(
            self.0
                .iter()
                .map(|(location, delay)| {
                    Json::Array(vec![
                        Json::Number(f64::from(location.column)),
                        Json::Number(f64::from(location.row)),
                        Json::Number(delay.get()),
                    ])
                })
                .collect(),
        )
    }

    fn from_cache_json(json: &Json) -> Option<Self> {
        let sites = json
            .as_array()?
            .iter()
            .map(|entry| {
                let [column, row, delay] = entry.as_array()? else {
                    return None;
                };
                let column = u8::try_from(column.as_f64()? as u64).ok()?;
                let row = u8::try_from(row.as_f64()? as u64).ok()?;
                Some((DieLocation { column, row }, Nanoseconds::new(delay.as_f64()?)))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(SurveyRecord(sites))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_units::{Celsius, Hours, Volts};

    fn array() -> CutArray {
        let mut rng = StdRng::seed_from_u64(12);
        CutArray::sample(
            &Family::commercial_40nm(),
            Millivolts::new(0.0),
            4,
            3,
            &mut rng,
        )
    }

    #[test]
    fn cached_survey_round_trips_bit_for_bit() {
        let root = std::env::temp_dir().join(format!(
            "selfheal-fpga-surveycache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let cache = ResultCache::at(root);
        let a = array();
        let (missed, o1) = a.survey_cached(7, &cache);
        assert_eq!(o1, CacheOutcome::Miss);
        let (hit, o2) = a.survey_cached(7, &cache);
        assert_eq!(o2, CacheOutcome::Hit);
        assert_eq!(missed.len(), hit.len());
        for ((l1, d1), (l2, d2)) in missed.iter().zip(&hit) {
            assert_eq!(l1, l2);
            assert_eq!(d1.get().to_bits(), d2.get().to_bits(), "rehydration is bit-exact");
        }
        let (_, o3) = a.survey_cached(8, &cache);
        assert_eq!(o3, CacheOutcome::Miss, "seed is part of the key");
        // Aging the fabric changes the fingerprint, so stale surveys of
        // the fresh state cannot replay.
        let mut aged = a.clone();
        aged.advance(
            RoMode::Static,
            Environment::new(Volts::new(1.2), Celsius::new(110.0)),
            Hours::new(24.0).into(),
        );
        let (_, o4) = aged.survey_cached(7, &cache);
        assert_eq!(o4, CacheOutcome::Miss, "fabric state is part of the key");
    }

    #[test]
    fn grid_dimensions_and_locations() {
        let a = array();
        assert_eq!(a.len(), 12);
        assert!(!a.is_empty());
        let locations: Vec<DieLocation> = a.locations().collect();
        assert_eq!(locations[0], DieLocation { column: 0, row: 0 });
        assert_eq!(locations[11], DieLocation { column: 3, row: 2 });
        assert_eq!(locations[11].to_string(), "(3, 2)");
    }

    #[test]
    fn gradient_makes_far_corner_slower_on_average() {
        // Systematic gradient: the (3, 2) corner carries +7.5 mV of Vth
        // over (0, 0), so averaged over local mismatch it is slower.
        let total: (f64, f64) = (0..20)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let a = CutArray::sample(
                    &Family::commercial_40nm(),
                    Millivolts::new(0.0),
                    4,
                    3,
                    &mut rng,
                );
                (
                    a.true_delay_at(DieLocation { column: 0, row: 0 }).unwrap().get(),
                    a.true_delay_at(DieLocation { column: 3, row: 2 }).unwrap().get(),
                )
            })
            .fold((0.0, 0.0), |acc, (o, f)| (acc.0 + o, acc.1 + f));
        assert!(total.1 > total.0, "far corner slower: {total:?}");
    }

    #[test]
    fn survey_spread_is_resolvable() {
        let a = array();
        let spread = a.fresh_delay_spread();
        assert!(spread.get() > 0.1, "{spread}");
        assert!(spread.get() < 5.0, "but not absurd: {spread}");
    }

    #[test]
    fn measure_matches_truth_within_counter_noise() {
        let a = array();
        let mut rng = StdRng::seed_from_u64(77);
        for location in a.locations() {
            let truth = a.true_delay_at(location).unwrap();
            let measured = a.measure_at(location, &mut rng).unwrap();
            assert!(
                (measured.get() - truth.get()).abs() / truth.get() < 1.5e-3,
                "{location}: {measured} vs {truth}"
            );
        }
    }

    #[test]
    fn unknown_location_is_none() {
        let a = array();
        let off_die = DieLocation { column: 9, row: 9 };
        assert!(a.true_delay_at(off_die).is_none());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(a.measure_at(off_die, &mut rng).is_none());
    }

    #[test]
    fn whole_array_ages_together() {
        let mut a = array();
        let before: Vec<f64> = a
            .locations()
            .map(|l| a.true_delay_at(l).unwrap().get())
            .collect();
        a.advance(
            RoMode::Static,
            Environment::new(Volts::new(1.2), Celsius::new(110.0)),
            Hours::new(24.0).into(),
        );
        for (location, b) in a.locations().zip(before) {
            assert!(a.true_delay_at(location).unwrap().get() > b, "{location} aged");
        }
    }

    #[test]
    fn slowest_site_tracks_aging() {
        let mut a = array();
        let (_, d0) = a.slowest_site();
        a.advance(
            RoMode::Static,
            Environment::new(Volts::new(1.2), Celsius::new(110.0)),
            Hours::new(24.0).into(),
        );
        let (_, d1) = a.slowest_site();
        assert!(d1 > d0);
    }

    #[test]
    fn seeded_sampling_is_a_pure_function_of_inputs() {
        let family = Family::commercial_40nm();
        let a = CutArray::sample_seeded(&family, Millivolts::new(0.0), 4, 3, 9);
        let b = CutArray::sample_seeded(&family, Millivolts::new(0.0), 4, 3, 9);
        assert_eq!(a, b);
        let c = CutArray::sample_seeded(&family, Millivolts::new(0.0), 4, 3, 10);
        assert_ne!(a, c);
        assert_eq!(a.len(), 12);
        let locations: Vec<DieLocation> = a.locations().collect();
        assert_eq!(locations[0], DieLocation { column: 0, row: 0 });
        assert_eq!(locations[11], DieLocation { column: 3, row: 2 });
    }

    #[test]
    fn parallel_survey_is_deterministic_and_accurate() {
        let a = array();
        let first = a.survey(55);
        let second = a.survey(55);
        assert_eq!(first, second);
        assert_eq!(first.len(), a.len());
        for (location, measured) in &first {
            let truth = a.true_delay_at(*location).unwrap();
            assert!(
                (measured.get() - truth.get()).abs() / truth.get() < 1.5e-3,
                "{location}: {measured} vs {truth}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_grid() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = CutArray::sample(
            &Family::commercial_40nm(),
            Millivolts::new(0.0),
            0,
            2,
            &mut rng,
        );
    }
}
