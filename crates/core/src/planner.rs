//! Circadian schedule planning — the paper's §7 outlook made executable:
//! "Since the time before the next scheduled deep rejuvenation is known in
//! advance, there is a good opportunity for ... cross-layer optimization."
//!
//! Given the operating condition, a wear budget and a rejuvenation
//! technique, the planner finds the **smallest sleep share** (largest α)
//! whose steady-state peak shift stays inside the budget — i.e. how little
//! throughput must be sacrificed to hold a given margin, or conversely how
//! much margin a given rhythm buys back.

use serde::{Deserialize, Serialize};
use selfheal_bti::analytic::{AnalyticBti, CycleModel, RecoveryModel, StressModel};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{float, Fraction, Millivolts, Ratio, Seconds};

use crate::technique::RejuvenationTechnique;

/// A planned circadian rhythm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RejuvenationPlan {
    /// The chosen active-vs-sleep ratio.
    pub alpha: Ratio,
    /// The sleep treatment the plan assumes.
    pub technique: RejuvenationTechnique,
    /// The full day/night period.
    pub period: Seconds,
    /// Predicted worst shift over the horizon under this plan.
    pub predicted_peak: Millivolts,
}

impl RejuvenationPlan {
    /// Fraction of time the plan spends doing useful work.
    #[must_use]
    pub fn availability(&self) -> Fraction {
        self.alpha.active_fraction()
    }
}

/// The planner: first-order models plus the operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulePlanner {
    stress: StressModel,
    recovery: RecoveryModel,
    active_env: Environment,
    margin: Millivolts,
}

impl SchedulePlanner {
    /// Creates a planner for a circuit operating at `active_env` with a
    /// total threshold-shift budget of `margin`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive margin.
    #[must_use]
    pub fn new(
        stress: StressModel,
        recovery: RecoveryModel,
        active_env: Environment,
        margin: Millivolts,
    ) -> Self {
        assert!(margin.get() > 0.0, "margin must be positive");
        SchedulePlanner {
            stress,
            recovery,
            active_env,
            margin,
        }
    }

    /// A planner with the default calibrated models.
    #[must_use]
    pub fn with_default_models(active_env: Environment, margin: Millivolts) -> Self {
        SchedulePlanner::new(
            StressModel::default(),
            RecoveryModel::default(),
            active_env,
            margin,
        )
    }

    /// The planner's threshold-shift budget.
    #[must_use]
    pub fn margin(&self) -> Millivolts {
        self.margin
    }

    /// Peak shift over `horizon` when running a rhythm with ratio `alpha`
    /// and the given technique.
    #[must_use]
    pub fn predicted_peak(
        &self,
        alpha: Ratio,
        technique: RejuvenationTechnique,
        period: Seconds,
        horizon: Seconds,
    ) -> Millivolts {
        let cycles = (horizon.get() / period.get()).ceil().max(1.0) as usize;
        let model = CycleModel {
            alpha,
            period,
            active: DeviceCondition::dc_stress(self.active_env),
            sleep: DeviceCondition::recovery(technique.environment()),
        };
        let peak = float::max_of(
            model
                .run_from(AnalyticBti::new(self.stress, self.recovery), cycles)
                .into_iter()
                .map(|s| s.delta_vth.get()),
        )
        .unwrap_or(0.0);
        Millivolts::new(peak)
    }

    /// Whether running with **no** rejuvenation at all stays within the
    /// budget over the horizon (if so, no plan is needed).
    #[must_use]
    pub fn unhealed_peak(&self, horizon: Seconds) -> Millivolts {
        let mut device = AnalyticBti::new(self.stress, self.recovery);
        device.advance(DeviceCondition::dc_stress(self.active_env), horizon);
        device.delta_vth()
    }

    /// Finds the largest α (least sleep) whose predicted peak stays inside
    /// the margin over `horizon`, searching α ∈ [0.5, 64] by bisection on
    /// the sleep fraction.
    ///
    /// Returns `None` when even the most generous rhythm tried (α = 0.5,
    /// i.e. sleeping twice as long as working) cannot hold the budget —
    /// the designer must then add margin or derate the operating point.
    #[must_use]
    pub fn plan(
        &self,
        technique: RejuvenationTechnique,
        period: Seconds,
        horizon: Seconds,
    ) -> Option<RejuvenationPlan> {
        let fits = |alpha: Ratio| {
            self.predicted_peak(alpha, technique, period, horizon).get() <= self.margin.get()
        };

        let alpha_min = planner_alpha(0.5);
        let alpha_max = planner_alpha(64.0);
        if !fits(alpha_min) {
            return None;
        }
        if fits(alpha_max) {
            return Some(self.plan_for(alpha_max, technique, period, horizon));
        }

        // Bisect on the sleep fraction s = 1/(1+α): monotone in wear.
        let mut s_lo = alpha_max.sleep_fraction().get(); // too little sleep
        let mut s_hi = alpha_min.sleep_fraction().get(); // enough sleep
        for _ in 0..40 {
            let s_mid = 0.5 * (s_lo + s_hi);
            let alpha = planner_alpha(1.0 / s_mid - 1.0);
            if fits(alpha) {
                s_hi = s_mid;
            } else {
                s_lo = s_mid;
            }
        }
        let alpha = planner_alpha(1.0 / s_hi - 1.0);
        Some(self.plan_for(alpha, technique, period, horizon))
    }

    fn plan_for(
        &self,
        alpha: Ratio,
        technique: RejuvenationTechnique,
        period: Seconds,
        horizon: Seconds,
    ) -> RejuvenationPlan {
        RejuvenationPlan {
            alpha,
            technique,
            period,
            predicted_peak: self.predicted_peak(alpha, technique, period, horizon),
        }
    }
}

/// Builds a [`Ratio`] from an α value the planner derived itself.
///
/// The search keeps every candidate in `[0.5, 64]` with a sleep fraction
/// strictly inside `(0, 1)`, so construction cannot fail.
fn planner_alpha(value: f64) -> Ratio {
    match Ratio::new(value) {
        Some(alpha) => alpha,
        None => unreachable!("planner-internal α must be positive and finite, got {value}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_units::{Celsius, Hours, Volts};

    fn planner(margin: f64) -> SchedulePlanner {
        SchedulePlanner::with_default_models(
            Environment::new(Volts::new(1.2), Celsius::new(90.0)),
            Millivolts::new(margin),
        )
    }

    fn year() -> Seconds {
        Seconds::new(365.0 * 86_400.0)
    }

    fn day_period() -> Seconds {
        Hours::new(24.0).into()
    }

    #[test]
    fn plan_meets_its_own_budget() {
        let p = planner(24.0);
        let plan = p
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .expect("a combined-technique rhythm can hold 24 mV");
        assert!(plan.predicted_peak.get() <= 24.0 + 1e-6);
        assert!(plan.alpha.get() >= 0.5);
    }

    #[test]
    fn tighter_budget_needs_more_sleep() {
        let loose = planner(24.8)
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .unwrap();
        let tight = planner(22.0)
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .unwrap();
        assert!(
            tight.alpha.get() < loose.alpha.get(),
            "tight budget α {} < loose budget α {}",
            tight.alpha.get(),
            loose.alpha.get()
        );
        assert!(tight.availability().get() < loose.availability().get());
    }

    #[test]
    fn better_technique_buys_availability() {
        let margin = 24.0;
        let combined = planner(margin)
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .expect("combined holds it");
        if let Some(passive) =
            planner(margin).plan(RejuvenationTechnique::PassiveGating, day_period(), year())
        {
            assert!(
                combined.alpha.get() >= passive.alpha.get(),
                "deep rejuvenation needs no more sleep than passive gating"
            );
        }
        // Either passive can't hold the budget at all, or it needs ≥ sleep.
    }

    #[test]
    fn impossible_budgets_return_none() {
        // Even sleeping twice as long as working cannot hold 15 mV at
        // this operating point; and the permanent component alone blows a
        // sub-millivolt budget.
        for margin in [15.0, 0.5] {
            let p = planner(margin);
            assert!(p
                .plan(RejuvenationTechnique::Combined, day_period(), year())
                .is_none());
        }
    }

    #[test]
    fn generous_budget_needs_no_sleep_to_speak_of() {
        let p = planner(500.0);
        let plan = p
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .unwrap();
        assert!(plan.alpha.get() >= 60.0, "α = {}", plan.alpha.get());
        assert!(plan.availability().get() > 0.97);
    }

    #[test]
    fn unhealed_peak_exceeds_any_planned_peak() {
        let p = planner(24.0);
        let plan = p
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .unwrap();
        assert!(p.unhealed_peak(year()).get() > plan.predicted_peak.get());
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn rejects_nonpositive_margin() {
        let _ = planner(0.0);
    }
}
