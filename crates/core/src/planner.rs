//! Circadian schedule planning — the paper's §7 outlook made executable:
//! "Since the time before the next scheduled deep rejuvenation is known in
//! advance, there is a good opportunity for ... cross-layer optimization."
//!
//! Given the operating condition, a wear budget and a rejuvenation
//! technique, the planner finds the **smallest sleep share** (largest α)
//! whose steady-state peak shift stays inside the budget — i.e. how little
//! throughput must be sacrificed to hold a given margin, or conversely how
//! much margin a given rhythm buys back.

use serde::{Deserialize, Serialize};
use selfheal_bti::analytic::{AnalyticBti, CycleModel, RecoveryModel, StressModel};
use selfheal_bti::td::{PhaseRates, TrapBank};
use selfheal_bti::{DeviceCondition, Environment};
use selfheal_units::{float, Fraction, Millivolts, Ratio, Seconds};

use crate::technique::RejuvenationTechnique;

/// A planned circadian rhythm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RejuvenationPlan {
    /// The chosen active-vs-sleep ratio.
    pub alpha: Ratio,
    /// The sleep treatment the plan assumes.
    pub technique: RejuvenationTechnique,
    /// The full day/night period.
    pub period: Seconds,
    /// Predicted worst shift over the horizon under this plan.
    pub predicted_peak: Millivolts,
}

impl RejuvenationPlan {
    /// Fraction of time the plan spends doing useful work.
    #[must_use]
    pub fn availability(&self) -> Fraction {
        self.alpha.active_fraction()
    }
}

/// The planner: first-order models plus the operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulePlanner {
    stress: StressModel,
    recovery: RecoveryModel,
    active_env: Environment,
    margin: Millivolts,
}

impl SchedulePlanner {
    /// Creates a planner for a circuit operating at `active_env` with a
    /// total threshold-shift budget of `margin`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive margin.
    #[must_use]
    pub fn new(
        stress: StressModel,
        recovery: RecoveryModel,
        active_env: Environment,
        margin: Millivolts,
    ) -> Self {
        assert!(margin.get() > 0.0, "margin must be positive");
        SchedulePlanner {
            stress,
            recovery,
            active_env,
            margin,
        }
    }

    /// A planner with the default calibrated models.
    #[must_use]
    pub fn with_default_models(active_env: Environment, margin: Millivolts) -> Self {
        SchedulePlanner::new(
            StressModel::default(),
            RecoveryModel::default(),
            active_env,
            margin,
        )
    }

    /// The planner's threshold-shift budget.
    #[must_use]
    pub fn margin(&self) -> Millivolts {
        self.margin
    }

    /// Peak shift over `horizon` when running a rhythm with ratio `alpha`
    /// and the given technique.
    #[must_use]
    pub fn predicted_peak(
        &self,
        alpha: Ratio,
        technique: RejuvenationTechnique,
        period: Seconds,
        horizon: Seconds,
    ) -> Millivolts {
        let cycles = (horizon.get() / period.get()).ceil().max(1.0) as usize;
        let model = CycleModel {
            alpha,
            period,
            active: DeviceCondition::dc_stress(self.active_env),
            sleep: DeviceCondition::recovery(technique.environment()),
        };
        let peak = float::max_of(
            model
                .run_from(AnalyticBti::new(self.stress, self.recovery), cycles)
                .into_iter()
                .map(|s| s.delta_vth.get()),
        )
        .unwrap_or(0.0);
        Millivolts::new(peak)
    }

    /// Whether running with **no** rejuvenation at all stays within the
    /// budget over the horizon (if so, no plan is needed).
    #[must_use]
    pub fn unhealed_peak(&self, horizon: Seconds) -> Millivolts {
        let mut device = AnalyticBti::new(self.stress, self.recovery);
        device.advance(DeviceCondition::dc_stress(self.active_env), horizon);
        device.delta_vth()
    }

    /// Finds the largest α (least sleep) whose predicted peak stays inside
    /// the margin over `horizon`, searching α ∈ [0.5, 64] by bisection on
    /// the sleep fraction.
    ///
    /// Returns `None` when even the most generous rhythm tried (α = 0.5,
    /// i.e. sleeping twice as long as working) cannot hold the budget —
    /// the designer must then add margin or derate the operating point.
    #[must_use]
    pub fn plan(
        &self,
        technique: RejuvenationTechnique,
        period: Seconds,
        horizon: Seconds,
    ) -> Option<RejuvenationPlan> {
        let fits = |alpha: Ratio| {
            self.predicted_peak(alpha, technique, period, horizon).get() <= self.margin.get()
        };

        let alpha_min = planner_alpha(0.5);
        let alpha_max = planner_alpha(64.0);
        if !fits(alpha_min) {
            return None;
        }
        if fits(alpha_max) {
            return Some(self.plan_for(alpha_max, technique, period, horizon));
        }

        // Bisect on the sleep fraction s = 1/(1+α): monotone in wear.
        let mut s_lo = alpha_max.sleep_fraction().get(); // too little sleep
        let mut s_hi = alpha_min.sleep_fraction().get(); // enough sleep
        for _ in 0..40 {
            let s_mid = 0.5 * (s_lo + s_hi);
            let alpha = planner_alpha(1.0 / s_mid - 1.0);
            if fits(alpha) {
                s_hi = s_mid;
            } else {
                s_lo = s_mid;
            }
        }
        let alpha = planner_alpha(1.0 / s_hi - 1.0);
        Some(self.plan_for(alpha, technique, period, horizon))
    }

    /// The margin still unspent after `consumed` mV of shift, or `None`
    /// once the budget is exhausted (the chip is already out of spec —
    /// no rhythm can plan its way back below a budget it has crossed).
    #[must_use]
    pub fn remaining_margin(&self, consumed: Millivolts) -> Option<Millivolts> {
        let left = self.margin.get() - consumed.get();
        (left > 0.0).then(|| Millivolts::new(left))
    }

    /// [`plan`](Self::plan) against the budget that remains after the
    /// chip has already consumed `consumed` mV of its margin.
    ///
    /// This is the service-path entry point: a fleet daemon holds live
    /// aging state, so the question is never "what rhythm holds a fresh
    /// chip inside the budget" but "what rhythm holds *this worn chip*
    /// inside what is left". Returns `None` when the budget is already
    /// spent or no rhythm in the search window can hold the remainder.
    #[must_use]
    pub fn plan_with_consumed(
        &self,
        consumed: Millivolts,
        technique: RejuvenationTechnique,
        period: Seconds,
        horizon: Seconds,
    ) -> Option<RejuvenationPlan> {
        let remaining = self.remaining_margin(consumed)?;
        SchedulePlanner {
            margin: remaining,
            ..self.clone()
        }
        .plan(technique, period, horizon)
    }

    /// [`plan_with_consumed`](Self::plan_with_consumed) reading the
    /// consumed margin straight off a live [`TrapBank`] view: `range` is
    /// the chip's trap slice inside a (possibly shard-sized) bank.
    ///
    /// # Panics
    ///
    /// Panics if `range` ends past the bank (as
    /// [`TrapBank::summary_range`] does).
    #[must_use]
    pub fn plan_from_bank(
        &self,
        bank: &TrapBank,
        range: std::ops::Range<usize>,
        technique: RejuvenationTechnique,
        period: Seconds,
        horizon: Seconds,
    ) -> Option<RejuvenationPlan> {
        self.plan_with_consumed(
            bank.summary_range(range).delta_vth,
            technique,
            period,
            horizon,
        )
    }

    /// The shift a chip's trap slice would reach after running `dt`
    /// under `cond`, projected forward from the live bank state (the
    /// bank itself is untouched — the projection advances a copy).
    ///
    /// # Panics
    ///
    /// Panics if `range` ends past the bank.
    #[must_use]
    pub fn predicted_shift_from_bank(
        &self,
        bank: &TrapBank,
        range: std::ops::Range<usize>,
        cond: DeviceCondition,
        dt: Seconds,
    ) -> Millivolts {
        let traps: Vec<_> = range.filter_map(|i| bank.get(i)).collect();
        let mut projection = TrapBank::from_traps(&traps);
        projection.advance_all(&PhaseRates::for_condition(cond), dt);
        projection.summary().delta_vth
    }

    /// The analytic counterpart of
    /// [`predicted_shift_from_bank`](Self::predicted_shift_from_bank):
    /// resumes the fitted stress curve at the equivalent time of
    /// `current` under `cond` and projects it `dt` forward, in closed
    /// form. This is how a tiered fleet serves `predict` for cold chips
    /// without materializing (or advancing a copy of) their frozen trap
    /// slices.
    ///
    /// A zero duty cycle inflicts nothing, so the projection is
    /// `current` itself; stress aging is monotone, so the result is
    /// never below `current`.
    #[must_use]
    pub fn predicted_shift_analytic(
        &self,
        current: Millivolts,
        cond: DeviceCondition,
        dt: Seconds,
    ) -> Millivolts {
        if cond.stress_duty().get() <= 0.0 {
            return current;
        }
        let t_eq = self.stress.equivalent_time_with_duty(current, cond);
        let projected = self.stress.delta_vth_with_duty(t_eq + dt, cond);
        Millivolts::new(projected.get().max(current.get()))
    }

    fn plan_for(
        &self,
        alpha: Ratio,
        technique: RejuvenationTechnique,
        period: Seconds,
        horizon: Seconds,
    ) -> RejuvenationPlan {
        RejuvenationPlan {
            alpha,
            technique,
            period,
            predicted_peak: self.predicted_peak(alpha, technique, period, horizon),
        }
    }
}

/// Builds a [`Ratio`] from an α value the planner derived itself.
///
/// The search keeps every candidate in `[0.5, 64]` with a sleep fraction
/// strictly inside `(0, 1)`, so construction cannot fail.
fn planner_alpha(value: f64) -> Ratio {
    match Ratio::new(value) {
        Some(alpha) => alpha,
        None => unreachable!("planner-internal α must be positive and finite, got {value}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use selfheal_units::{Celsius, Hours, Volts};

    fn planner(margin: f64) -> SchedulePlanner {
        SchedulePlanner::with_default_models(
            Environment::new(Volts::new(1.2), Celsius::new(90.0)),
            Millivolts::new(margin),
        )
    }

    fn year() -> Seconds {
        Seconds::new(365.0 * 86_400.0)
    }

    fn day_period() -> Seconds {
        Hours::new(24.0).into()
    }

    #[test]
    fn plan_meets_its_own_budget() {
        let p = planner(24.0);
        let plan = p
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .expect("a combined-technique rhythm can hold 24 mV");
        assert!(plan.predicted_peak.get() <= 24.0 + 1e-6);
        assert!(plan.alpha.get() >= 0.5);
    }

    #[test]
    fn tighter_budget_needs_more_sleep() {
        let loose = planner(24.8)
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .unwrap();
        let tight = planner(22.0)
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .unwrap();
        assert!(
            tight.alpha.get() < loose.alpha.get(),
            "tight budget α {} < loose budget α {}",
            tight.alpha.get(),
            loose.alpha.get()
        );
        assert!(tight.availability().get() < loose.availability().get());
    }

    #[test]
    fn better_technique_buys_availability() {
        let margin = 24.0;
        let combined = planner(margin)
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .expect("combined holds it");
        if let Some(passive) =
            planner(margin).plan(RejuvenationTechnique::PassiveGating, day_period(), year())
        {
            assert!(
                combined.alpha.get() >= passive.alpha.get(),
                "deep rejuvenation needs no more sleep than passive gating"
            );
        }
        // Either passive can't hold the budget at all, or it needs ≥ sleep.
    }

    #[test]
    fn impossible_budgets_return_none() {
        // Even sleeping twice as long as working cannot hold 15 mV at
        // this operating point; and the permanent component alone blows a
        // sub-millivolt budget.
        for margin in [15.0, 0.5] {
            let p = planner(margin);
            assert!(p
                .plan(RejuvenationTechnique::Combined, day_period(), year())
                .is_none());
        }
    }

    #[test]
    fn generous_budget_needs_no_sleep_to_speak_of() {
        let p = planner(500.0);
        let plan = p
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .unwrap();
        assert!(plan.alpha.get() >= 60.0, "α = {}", plan.alpha.get());
        assert!(plan.availability().get() > 0.97);
    }

    #[test]
    fn unhealed_peak_exceeds_any_planned_peak() {
        let p = planner(24.0);
        let plan = p
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .unwrap();
        assert!(p.unhealed_peak(year()).get() > plan.predicted_peak.get());
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn rejects_nonpositive_margin() {
        let _ = planner(0.0);
    }

    #[test]
    fn consumed_margin_shrinks_the_plan() {
        let p = planner(26.0);
        let fresh = p
            .plan(RejuvenationTechnique::Combined, day_period(), year())
            .expect("fresh chip plans");
        let worn = p
            .plan_with_consumed(
                Millivolts::new(3.0),
                RejuvenationTechnique::Combined,
                day_period(),
                year(),
            )
            .expect("3 mV of wear still leaves a feasible budget");
        assert!(
            worn.alpha.get() < fresh.alpha.get(),
            "a worn chip must sleep more: worn α {} vs fresh α {}",
            worn.alpha.get(),
            fresh.alpha.get()
        );
        // A chip past its whole budget cannot plan at all.
        assert!(p
            .plan_with_consumed(
                Millivolts::new(26.0),
                RejuvenationTechnique::Combined,
                day_period(),
                year()
            )
            .is_none());
        assert_eq!(p.remaining_margin(Millivolts::new(30.0)), None);
    }

    #[test]
    fn analytic_projection_resumes_the_stress_curve() {
        use selfheal_units::DutyCycle;

        let p = planner(30.0);
        let env = Environment::new(Volts::new(1.2), Celsius::new(90.0));
        let cond = DeviceCondition::new(env, DutyCycle::new(0.6));
        let current = Millivolts::new(8.0);
        let dt: Seconds = Hours::new(24.0).into();

        // Stressed projection grows, monotonically in dt.
        let one_day = p.predicted_shift_analytic(current, cond, dt);
        let two_days = p.predicted_shift_analytic(current, cond, Seconds::new(2.0 * dt.get()));
        assert!(one_day.get() > current.get());
        assert!(two_days.get() > one_day.get());

        // Resuming is consistent: projecting 2·dt at once equals
        // projecting dt from the dt-projection (the curve has no memory
        // beyond its equivalent time).
        let chained = p.predicted_shift_analytic(one_day, cond, dt);
        assert!(
            (chained.get() - two_days.get()).abs() < 1e-9 * two_days.get(),
            "chained {chained} vs direct {two_days}"
        );

        // Idle chips do not age.
        let idle = DeviceCondition::new(env, DutyCycle::new(0.0));
        assert_eq!(p.predicted_shift_analytic(current, idle, dt), current);
    }

    #[test]
    fn bank_views_agree_with_scalar_entry_points() {
        use rand::SeedableRng;
        use selfheal_bti::td::{TrapEnsemble, TrapEnsembleParams};

        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let device = TrapEnsemble::sample(&TrapEnsembleParams::default(), &mut rng);
        let bank = device.bank().clone();
        let p = planner(26.0);
        let via_bank = p.plan_from_bank(
            &bank,
            0..bank.len(),
            RejuvenationTechnique::Combined,
            day_period(),
            year(),
        );
        let via_consumed = p.plan_with_consumed(
            bank.summary_range(0..bank.len()).delta_vth,
            RejuvenationTechnique::Combined,
            day_period(),
            year(),
        );
        assert_eq!(via_bank, via_consumed);

        // The projection advances a copy: the bank itself must not move,
        // and the projected shift matches advancing the slice directly.
        let cond = DeviceCondition::dc_stress(Environment::new(
            Volts::new(1.2),
            Celsius::new(90.0),
        ));
        let dt: Seconds = Hours::new(24.0).into();
        let before = bank.clone();
        let projected = p.predicted_shift_from_bank(&bank, 0..bank.len(), cond, dt);
        assert_eq!(bank, before, "projection must not mutate the live bank");
        let mut direct = device.clone();
        direct.advance(cond, dt);
        assert_eq!(projected.get().to_bits(), direct.delta_vth().get().to_bits());
    }
}
