//! Closed-loop rejuvenation: a policy driving a real (simulated) chip
//! through its on-chip odometer.
//!
//! [`crate::policy::simulate_policy`] drives the *analytic* model with a
//! noiseless margin signal — fine for philosophy comparisons, but a real
//! controller sees silicon only through a sensor. This module closes the
//! loop the §2.2 discussion implies: the chip ages, the odometer (refs
//! \[7, 8\]) measures, the policy decides, the supply and (locally
//! controllable) temperature respond.

use selfheal_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use selfheal_bti::Environment;
use selfheal_fpga::{Chip, Odometer, RoMode};
use selfheal_units::{Fraction, Nanoseconds, Seconds};

use crate::policy::{PolicyDecision, RecoveryPolicy};

/// Outcome of one closed-loop run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopRun {
    /// The policy's name.
    pub policy: String,
    /// Total simulated time.
    pub horizon: Seconds,
    /// Time spent in rejuvenation sleep.
    pub time_asleep: Seconds,
    /// Number of sleep episodes.
    pub sleep_events: usize,
    /// Final true CUT delay shift versus fresh.
    pub final_shift: Nanoseconds,
    /// The odometer's final (sensor-side) reading.
    pub final_sensor_reading: Fraction,
}

/// Configuration of a closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// Operating condition while awake.
    pub active_env: Environment,
    /// Fractional-slowdown budget the controller normalises the sensor
    /// reading against.
    pub sensor_margin: Fraction,
    /// Total run length.
    pub horizon: Seconds,
    /// Polling cadence while awake.
    pub step: Seconds,
}

/// Drives `policy` against a chip + odometer per `config`.
///
/// The loop is deterministic given the chip and sensor state: the
/// odometer's differential reading cancels counter-style noise sources by
/// construction, so no RNG is needed at run time.
///
/// # Panics
///
/// Panics on a non-positive step or sensor margin.
pub fn run_closed_loop(
    policy: &mut dyn RecoveryPolicy,
    chip: &mut Chip,
    odometer: &mut Odometer,
    config: &ClosedLoopConfig,
) -> ClosedLoopRun {
    let ClosedLoopConfig {
        active_env,
        sensor_margin,
        horizon,
        step,
    } = *config;
    assert!(step.get() > 0.0, "step must be positive");
    assert!(sensor_margin.get() > 0.0, "sensor margin must be positive");

    let fresh = chip.true_cut_delay();
    let mut now = Seconds::ZERO;
    let mut time_asleep = Seconds::ZERO;
    let mut sleep_events = 0usize;

    while now < horizon {
        let consumed = odometer.margin_consumed(sensor_margin);
        match policy.decide(now, consumed) {
            PolicyDecision::StayActive => {
                let dt = step.min(horizon - now);
                chip.advance(RoMode::Static, active_env, dt);
                odometer.advance(RoMode::Static, active_env, dt);
                now += dt;
            }
            PolicyDecision::Sleep {
                technique,
                duration,
            } => {
                let dt = duration.min(horizon - now);
                let env = technique.environment();
                chip.advance(RoMode::Sleep, env, dt);
                odometer.advance(RoMode::Sleep, env, dt);
                now += dt;
                time_asleep += dt;
                sleep_events += 1;
                telemetry::event!(
                    "core.closed_loop.sleep",
                    t_s = now.get(),
                    duration_s = dt.get(),
                    margin_consumed = consumed.get(),
                );
                telemetry::counter!("core.closed_loop.sleep_events", 1.0);
            }
        }
    }

    ClosedLoopRun {
        policy: policy.name().to_string(),
        horizon,
        time_asleep,
        sleep_events,
        final_shift: chip.true_cut_delay() - fresh,
        final_sensor_reading: odometer.read(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ProactivePolicy, ReactivePolicy};
    use crate::technique::RejuvenationTechnique;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use selfheal_fpga::{ChipId, Family};
    use selfheal_units::{Celsius, Hours, Millivolts, Volts};

    fn bench_setup(seed: u64) -> (Chip, Odometer, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let family = Family::commercial_40nm();
        let chip = Chip::commercial_40nm(ChipId::new(1), &mut rng);
        let odometer = Odometer::sample(&family, Millivolts::new(0.0), &mut rng);
        (chip, odometer, rng)
    }

    fn active() -> Environment {
        Environment::new(Volts::new(1.2), Celsius::new(110.0))
    }

    fn run(policy: &mut dyn RecoveryPolicy, seed: u64) -> ClosedLoopRun {
        let (mut chip, mut odo, _rng) = bench_setup(seed);
        run_closed_loop(
            policy,
            &mut chip,
            &mut odo,
            &ClosedLoopConfig {
                active_env: active(),
                sensor_margin: Fraction::new(0.05),
                horizon: Seconds::new(10.0 * 86_400.0),
                step: Hours::new(2.0).into(),
            },
        )
    }

    #[test]
    fn reactive_policy_actually_fires_from_sensor_signal() {
        // Threshold at 40 % of a 5 % slowdown budget = 2 % measured
        // slowdown — reached within the first days at 110 °C.
        let mut policy = ReactivePolicy::new(
            Fraction::new(0.4),
            RejuvenationTechnique::Combined,
            Hours::new(6.0).into(),
        );
        let result = run(&mut policy, 31);
        assert!(result.sleep_events > 0, "the sensor triggered sleeps");
        assert!(result.final_sensor_reading.get() > 0.0);
    }

    #[test]
    fn closed_loop_healing_beats_never_sleeping() {
        struct NeverSleep;
        impl RecoveryPolicy for NeverSleep {
            fn decide(&mut self, _: Seconds, _: Fraction) -> PolicyDecision {
                PolicyDecision::StayActive
            }
            fn name(&self) -> &str {
                "never-sleep"
            }
        }
        let baseline = run(&mut NeverSleep, 32);
        let mut proactive = ProactivePolicy::paper_default();
        let healed = run(&mut proactive, 32);
        assert_eq!(baseline.sleep_events, 0);
        assert!(
            healed.final_shift < baseline.final_shift,
            "healing {} vs baseline {}",
            healed.final_shift,
            baseline.final_shift
        );
    }

    #[test]
    fn sensor_tracks_the_chip_it_rides_on() {
        // The odometer's fractional reading and the CUT's true fractional
        // slowdown must agree to sensor accuracy (they share stress
        // history, not devices).
        let mut policy = ProactivePolicy::paper_default();
        let (mut chip, mut odo, _rng) = bench_setup(33);
        let fresh = chip.true_cut_delay();
        let result = run_closed_loop(
            &mut policy,
            &mut chip,
            &mut odo,
            &ClosedLoopConfig {
                active_env: active(),
                sensor_margin: Fraction::new(0.05),
                horizon: Seconds::new(5.0 * 86_400.0),
                step: Hours::new(2.0).into(),
            },
        );
        let true_fraction = result.final_shift.get() / fresh.get();
        let sensed = result.final_sensor_reading.get();
        assert!(
            (sensed - true_fraction).abs() < 0.01,
            "sensor {sensed} vs truth {true_fraction}"
        );
    }

    #[test]
    fn accounting_is_consistent() {
        let mut policy = ProactivePolicy::paper_default();
        let result = run(&mut policy, 34);
        assert!(result.time_asleep.get() > 0.0);
        assert!(result.time_asleep < result.horizon);
        assert_eq!(result.policy, "proactive");
    }

    #[test]
    #[should_panic(expected = "sensor margin")]
    fn rejects_zero_margin() {
        let mut policy = ProactivePolicy::paper_default();
        let (mut chip, mut odo, _rng) = bench_setup(35);
        let _ = run_closed_loop(
            &mut policy,
            &mut chip,
            &mut odo,
            &ClosedLoopConfig {
                active_env: active(),
                sensor_margin: Fraction::ZERO,
                horizon: Seconds::new(3600.0),
                step: Seconds::new(600.0),
            },
        );
    }
}
