//! The full paper campaign: five simulated chips through the Table 1
//! matrix, chronologically, producing every series the evaluation section
//! plots.
//!
//! Chronology (the table groups rows by phase; the physical order per
//! chip, reconstructed from §4.4, is):
//!
//! * Chip 1: burn-in → AS110AC24
//! * Chip 2: burn-in → AS110DC24 → R20Z6
//! * Chip 3: burn-in → AS110DC24 → AR20N6
//! * Chip 4: burn-in → AS100DC24 → AR110Z6
//! * Chip 5: burn-in → AS110DC24 → AR110N6 → AS110DC48 → AR110N12
//!
//! Every chip starts with the paper's 2 h / 20 °C / 1.2 V burn-in
//! baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;
use selfheal_runtime::{self as runtime, CacheOutcome, CacheRecord, ResultCache};
use selfheal_telemetry::{self as telemetry, json::Json};
use serde::{Deserialize, Serialize};
use selfheal_fpga::{Chip, ChipId};
use selfheal_testbench::cases::{self, PhaseKind, TestCase};
use selfheal_testbench::{PhaseSpec, TestHarness};
use selfheal_units::{Hours, Minutes, Nanoseconds, Percent, Seconds};

use crate::fitting::{FittedRecoveryCurve, FittedStressCurve};
use crate::metrics::{
    degradation_series, recovery_series, DegradationPoint, RecoveryAssessment, RecoveryPoint,
};

/// Result of one stress case.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StressOutcome {
    /// The Table 1 row that was run.
    pub case: TestCase,
    /// The Fig. 4/5 degradation series.
    pub series: Vec<DegradationPoint>,
    /// The Eq. (10) fit extracted from the series (Table 3), when the
    /// series carries enough information.
    pub fit: Option<FittedStressCurve>,
    /// Measured CUT delay at the start of the phase.
    pub start_delay: Nanoseconds,
    /// Measured CUT delay at the end of the phase.
    pub end_delay: Nanoseconds,
}

impl StressOutcome {
    /// Total frequency degradation over the phase (the Table 2 number).
    #[must_use]
    pub fn total_degradation(&self) -> Percent {
        self.series
            .last()
            .map(|p| p.frequency_degradation)
            .unwrap_or_default()
    }

    /// Total delay shift over the phase, `ΔTd(t₁)`.
    #[must_use]
    pub fn total_shift(&self) -> Nanoseconds {
        self.end_delay - self.start_delay
    }
}

/// Result of one recovery case.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RecoveryOutcome {
    /// The Table 1 row that was run.
    pub case: TestCase,
    /// The Fig. 6–8 recovery series.
    pub series: Vec<RecoveryPoint>,
    /// The Eq. (11) fit extracted from the series.
    pub fit: Option<FittedRecoveryCurve>,
    /// The Table 4 assessment (inflicted vs recovered shift).
    pub assessment: RecoveryAssessment,
    /// The chip's cumulative stress exposure when this recovery began,
    /// `t₁` (24 h for the first-cycle cases, 72 h for AR110N12).
    pub stress_duration: Seconds,
}

impl RecoveryOutcome {
    /// The design-margin-relaxed parameter of Table 4.
    #[must_use]
    pub fn margin_relaxed(&self) -> Percent {
        self.assessment.margin_relaxed()
    }
}

/// Everything the campaign produced.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ExperimentOutputs {
    /// Stress cases in chronological order of execution.
    pub stresses: Vec<StressOutcome>,
    /// Recovery cases in chronological order of execution.
    pub recoveries: Vec<RecoveryOutcome>,
}

impl ExperimentOutputs {
    /// Finds a stress case by Table 1 name (first match: `AS110DC24` runs
    /// on three chips; [`Self::stress_on`] disambiguates).
    #[must_use]
    pub fn stress(&self, name: &str) -> Option<&StressOutcome> {
        self.stresses.iter().find(|s| s.case.name == name)
    }

    /// Finds a stress case by name and chip.
    #[must_use]
    pub fn stress_on(&self, name: &str, chip: ChipId) -> Option<&StressOutcome> {
        self.stresses
            .iter()
            .find(|s| s.case.name == name && s.case.chip == chip)
    }

    /// Finds a recovery case by Table 1 name.
    #[must_use]
    pub fn recovery(&self, name: &str) -> Option<&RecoveryOutcome> {
        self.recoveries.iter().find(|r| r.case.name == name)
    }
}

/// The campaign runner. See the crate-level quickstart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperExperiment {
    seed: u64,
    stress_sampling: Seconds,
    recovery_sampling: Seconds,
}

impl PaperExperiment {
    /// The paper's cadence: stress sampled every 20 minutes, recovery
    /// every 30 minutes. This is the configuration behind the published
    /// figures; prefer it for benchmarks and figure regeneration.
    #[must_use]
    pub fn paper_cadence(seed: u64) -> Self {
        PaperExperiment {
            seed,
            stress_sampling: Minutes::new(20.0).into(),
            recovery_sampling: Minutes::new(30.0).into(),
        }
    }

    /// A coarser cadence (4 h / 1 h sampling) for tests and doc examples:
    /// same physics, same durations, ~20× fewer sampling steps.
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        PaperExperiment {
            seed,
            stress_sampling: Hours::new(4.0).into(),
            recovery_sampling: Hours::new(1.0).into(),
        }
    }

    /// Runs the whole campaign.
    ///
    /// Deterministic for a given seed: chips, trap populations, chamber
    /// fluctuations and counter jitter all derive from it. The five chips
    /// are independent (each seeds its own RNG from the campaign seed and
    /// its chip number), so they run concurrently on the
    /// `selfheal-runtime` global pool; outputs are assembled in chip
    /// order, making the result bit-for-bit identical to the serial loop
    /// this replaced, at any worker count.
    #[must_use]
    pub fn run(&self) -> ExperimentOutputs {
        // Root span on the submitting thread: per-chip spans then nest
        // under it (or are drained by pool workers), keeping the phase
        // ledger a manifest drains deterministic under parallelism.
        let _campaign_span = telemetry::span!("experiment.campaign", chips = 5u32);
        let this = self.clone();
        let per_chip = runtime::par_map((1..=5u32).collect(), move |chip_no| {
            this.run_chip(chip_no)
        });
        let mut outputs = ExperimentOutputs::default();
        for (stresses, recoveries) in per_chip {
            outputs.stresses.extend(stresses);
            outputs.recoveries.extend(recoveries);
        }
        outputs
    }

    /// Runs the whole campaign through a per-chip result cache.
    ///
    /// Each chip's outcome bundle is memoized independently under the
    /// `experiment-chip` namespace, keyed by the full experiment
    /// configuration (seed and both sampling cadences) plus the chip
    /// number, and versioned by [`selfheal_bti::td::KERNEL_VERSION`] so a
    /// trap-kinetics rewrite invalidates every stored run. Rehydration is
    /// bit-exact (the codec stores shortest-round-trip doubles), so a hit
    /// returns the same outputs the chip simulation would recompute — but
    /// skips the simulation, and with it the chip's telemetry (spans,
    /// counters, phase ledger entries). Use [`Self::run`] when the
    /// manifest must reflect a full simulation.
    ///
    /// Returns the assembled outputs plus one [`CacheOutcome`] per chip,
    /// in chip order.
    #[must_use]
    pub fn run_cached(&self, cache: &ResultCache) -> (ExperimentOutputs, Vec<CacheOutcome>) {
        let _campaign_span = telemetry::span!("experiment.campaign", chips = 5u32);
        let this = self.clone();
        let cache = cache.clone();
        let per_chip = runtime::par_map((1..=5u32).collect(), move |chip_no| {
            let key = format!("{this:?};chip={chip_no}");
            let runner = this.clone();
            cache.get_or_compute(
                "experiment-chip",
                selfheal_bti::td::KERNEL_VERSION,
                &key,
                move || {
                    let (stresses, recoveries) = runner.run_chip(chip_no);
                    ChipRecord {
                        stresses,
                        recoveries,
                    }
                },
            )
        });
        let mut outputs = ExperimentOutputs::default();
        let mut outcomes = Vec::with_capacity(5);
        for (record, outcome) in per_chip {
            outputs.stresses.extend(record.stresses);
            outputs.recoveries.extend(record.recoveries);
            outcomes.push(outcome);
        }
        (outputs, outcomes)
    }

    /// Runs one chip's chronological case sequence (burn-in, then its
    /// Table 1 rows) and returns its outcomes in execution order.
    fn run_chip(&self, chip_no: u32) -> (Vec<StressOutcome>, Vec<RecoveryOutcome>) {
        let mut outputs = ExperimentOutputs::default();
        let table = cases::table1();
        {
            let _chip_span = telemetry::span!("experiment.chip", chip = chip_no);
            let chip_id = ChipId::new(chip_no);
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(u64::from(chip_no)));
            let chip = Chip::commercial_40nm(chip_id, &mut rng);
            let mut harness = TestHarness::new(chip);

            // Burn-in baseline (§4.4).
            let burn_in = PhaseSpec::burn_in();
            if let Err(err) = harness.run_phase(&burn_in, &mut rng) {
                unreachable!("burn-in spec is statically valid: {err}");
            }

            // This chip's Table 1 rows, in chronological order. The
            // table groups rows by phase, so chip 5 needs interleaving:
            // each recovery row runs right after its paired stress row
            // (AS110DC24 → AR110N6 → AS110DC48 → AR110N12, §4.4).
            let chip_cases: Vec<TestCase> = table
                .iter()
                .filter(|c| c.chip == chip_id && !c.is_recovery())
                .flat_map(|stress| {
                    std::iter::once(*stress).chain(
                        table
                            .iter()
                            .filter(|r| {
                                r.chip == chip_id
                                    && r.is_recovery()
                                    && cases::stress_case_for(r)
                                        .is_some_and(|s| s.name == stress.name)
                            })
                            .copied(),
                    )
                })
                .collect();

            // `chip_fresh` is the chip's original pre-stress baseline: the
            // "original margin" every recovery is assessed against. For a
            // re-stressed chip (AR110N12) the paper's margin-relaxed
            // parameter still refers to the original margin, and `t1` is
            // the chip's cumulative stress exposure.
            let mut chip_fresh: Option<Nanoseconds> = None;
            let mut cumulative_stress = Seconds::ZERO;
            for case in chip_cases {
                telemetry::event!(
                    "experiment.case",
                    name = case.name,
                    chip = chip_no,
                    recovery = case.is_recovery(),
                );
                let mut spec = case.to_phase_spec();
                spec.sampling_interval = match case.kind {
                    PhaseKind::Stress { .. } => self.stress_sampling,
                    PhaseKind::Recovery { .. } => self.recovery_sampling,
                };
                let records = match harness.run_phase(&spec, &mut rng) {
                    Ok(records) => records,
                    Err(err) => unreachable!("table-1 specs are statically valid: {err}"),
                };
                let (Some(first), Some(last)) = (records.first(), records.last()) else {
                    unreachable!("run_phase emits at least one record per phase");
                };
                let start = first.measurement.cut_delay;
                let end = last.measurement.cut_delay;

                match case.kind {
                    PhaseKind::Stress { .. } => {
                        let series = degradation_series(&records);
                        let fit = FittedStressCurve::fit(
                            &series
                                .iter()
                                .map(|p| (p.elapsed, p.delay_shift))
                                .collect::<Vec<_>>(),
                        );
                        outputs.stresses.push(StressOutcome {
                            case,
                            series,
                            fit,
                            start_delay: start,
                            end_delay: end,
                        });
                        chip_fresh.get_or_insert(start);
                        cumulative_stress += case.duration.to_seconds();
                    }
                    PhaseKind::Recovery { .. } => {
                        let t1 = cumulative_stress;
                        let Some(fresh) = chip_fresh else {
                            unreachable!(
                                "every recovery case follows a stress case on its chip"
                            );
                        };
                        let series = recovery_series(&records, fresh);
                        let fit = FittedRecoveryCurve::fit(
                            &series
                                .iter()
                                .map(|p| (p.elapsed, p.recovered_delay))
                                .collect::<Vec<_>>(),
                            t1,
                        );
                        outputs.recoveries.push(RecoveryOutcome {
                            case,
                            series,
                            fit,
                            assessment: RecoveryAssessment::new(fresh, start, end),
                            stress_duration: t1,
                        });
                    }
                }
            }
        }
        (outputs.stresses, outputs.recoveries)
    }

    /// Runs the whole campaign and captures a [`telemetry::RunManifest`]
    /// of it: config hash, per-chip phase timings and the metric snapshot
    /// accumulated during the run.
    ///
    /// Metrics recording is switched on for the duration so the manifest
    /// is populated even when no sink is installed.
    #[must_use]
    pub fn run_with_manifest(&self) -> (ExperimentOutputs, telemetry::RunManifest) {
        telemetry::metrics::set_enabled(true);
        let outputs = self.run();
        let manifest = telemetry::RunManifest::capture("paper-experiment", &format!("{self:?}"))
            .with_number("chips", 5.0)
            .with_number("stress_cases", outputs.stresses.len() as f64)
            .with_number("recovery_cases", outputs.recoveries.len() as f64);
        (outputs, manifest)
    }
}

/// One chip's cached outcome bundle (the unit of memoization in
/// [`PaperExperiment::run_cached`]).
struct ChipRecord {
    stresses: Vec<StressOutcome>,
    recoveries: Vec<RecoveryOutcome>,
}

impl CacheRecord for ChipRecord {
    fn to_cache_json(&self) -> Json {
        Json::Array(vec![
            Json::Array(self.stresses.iter().map(stress_to_json).collect()),
            Json::Array(self.recoveries.iter().map(recovery_to_json).collect()),
        ])
    }

    fn from_cache_json(json: &Json) -> Option<Self> {
        let [stresses, recoveries] = json.as_array()? else {
            return None;
        };
        Some(ChipRecord {
            stresses: stresses
                .as_array()?
                .iter()
                .map(stress_from_json)
                .collect::<Option<Vec<_>>>()?,
            recoveries: recoveries
                .as_array()?
                .iter()
                .map(recovery_from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// A [`TestCase`] is table data, not simulation output: persist only its
/// identity (name, chip) and rehydrate the full row from
/// [`cases::table1`]. A cached run therefore can never resurrect a stale
/// copy of an edited table row — the row's parameters come back from the
/// current table, and the experiment key's version bump covers the
/// physics that consumed them.
fn case_to_json(case: &TestCase) -> Json {
    Json::Array(vec![
        Json::String(case.name.to_string()),
        Json::Number(f64::from(case.chip.get())),
    ])
}

fn case_from_json(json: &Json) -> Option<TestCase> {
    let [name, chip] = json.as_array()? else {
        return None;
    };
    let name = name.as_str()?;
    let chip = ChipId::new(u32::try_from(chip.as_f64()? as u64).ok()?);
    cases::table1()
        .iter()
        .find(|c| c.name == name && c.chip == chip)
        .copied()
}

fn stress_to_json(s: &StressOutcome) -> Json {
    Json::Array(vec![
        case_to_json(&s.case),
        Json::Array(
            s.series
                .iter()
                .map(|p| {
                    Json::Array(vec![
                        Json::Number(p.elapsed.get()),
                        Json::Number(p.frequency_degradation.get()),
                        Json::Number(p.delay_shift.get()),
                    ])
                })
                .collect(),
        ),
        s.fit.map_or(Json::Null, |f| {
            Json::Array(vec![
                Json::Number(f.beta_ns),
                Json::Number(f.c_per_s),
                Json::Number(f.rmse_ns),
            ])
        }),
        Json::Number(s.start_delay.get()),
        Json::Number(s.end_delay.get()),
    ])
}

fn stress_from_json(json: &Json) -> Option<StressOutcome> {
    let [case, series, fit, start, end] = json.as_array()? else {
        return None;
    };
    let series = series
        .as_array()?
        .iter()
        .map(|p| {
            let [elapsed, deg, shift] = p.as_array()? else {
                return None;
            };
            Some(DegradationPoint {
                elapsed: Seconds::new(elapsed.as_f64()?),
                frequency_degradation: Percent::new(deg.as_f64()?),
                delay_shift: Nanoseconds::new(shift.as_f64()?),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let fit = match fit {
        Json::Null => None,
        other => {
            let [beta, c, rmse] = other.as_array()? else {
                return None;
            };
            Some(FittedStressCurve {
                beta_ns: beta.as_f64()?,
                c_per_s: c.as_f64()?,
                rmse_ns: rmse.as_f64()?,
            })
        }
    };
    Some(StressOutcome {
        case: case_from_json(case)?,
        series,
        fit,
        start_delay: Nanoseconds::new(start.as_f64()?),
        end_delay: Nanoseconds::new(end.as_f64()?),
    })
}

fn recovery_to_json(r: &RecoveryOutcome) -> Json {
    Json::Array(vec![
        case_to_json(&r.case),
        Json::Array(
            r.series
                .iter()
                .map(|p| {
                    Json::Array(vec![
                        Json::Number(p.elapsed.get()),
                        Json::Number(p.recovered_delay.get()),
                        Json::Number(p.remaining_shift.get()),
                    ])
                })
                .collect(),
        ),
        r.fit.map_or(Json::Null, |f| {
            Json::Array(vec![
                Json::Number(f.a_ns),
                Json::Number(f.b),
                Json::Number(f.c_per_s),
                Json::Number(f.t1.get()),
                Json::Number(f.rmse_ns),
            ])
        }),
        Json::Number(r.assessment.inflicted.get()),
        Json::Number(r.assessment.recovered.get()),
        Json::Number(r.stress_duration.get()),
    ])
}

fn recovery_from_json(json: &Json) -> Option<RecoveryOutcome> {
    let [case, series, fit, inflicted, recovered, stress_duration] = json.as_array()? else {
        return None;
    };
    let series = series
        .as_array()?
        .iter()
        .map(|p| {
            let [elapsed, delay, remaining] = p.as_array()? else {
                return None;
            };
            Some(RecoveryPoint {
                elapsed: Seconds::new(elapsed.as_f64()?),
                recovered_delay: Nanoseconds::new(delay.as_f64()?),
                remaining_shift: Nanoseconds::new(remaining.as_f64()?),
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let fit = match fit {
        Json::Null => None,
        other => {
            let [a, b, c, t1, rmse] = other.as_array()? else {
                return None;
            };
            Some(FittedRecoveryCurve {
                a_ns: a.as_f64()?,
                b: b.as_f64()?,
                c_per_s: c.as_f64()?,
                t1: Seconds::new(t1.as_f64()?),
                rmse_ns: rmse.as_f64()?,
            })
        }
    };
    Some(RecoveryOutcome {
        case: case_from_json(case)?,
        series,
        fit,
        assessment: RecoveryAssessment {
            inflicted: Nanoseconds::new(inflicted.as_f64()?),
            recovered: Nanoseconds::new(recovered.as_f64()?),
        },
        stress_duration: Seconds::new(stress_duration.as_f64()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared quick campaign for all assertions: the run itself is the
    // expensive part.
    fn outputs() -> &'static ExperimentOutputs {
        use std::sync::OnceLock;
        static OUTPUTS: OnceLock<ExperimentOutputs> = OnceLock::new();
        OUTPUTS.get_or_init(|| PaperExperiment::quick(2014).run())
    }

    #[test]
    fn campaign_runs_all_cases() {
        let o = outputs();
        assert_eq!(o.stresses.len(), 6);
        assert_eq!(o.recoveries.len(), 5);
    }

    #[test]
    fn dc_stress_reaches_paper_magnitude() {
        let o = outputs();
        let dc = o.stress_on("AS110DC24", ChipId::new(2)).unwrap();
        let deg = dc.total_degradation().get();
        assert!(deg > 1.2 && deg < 4.0, "AS110DC24 degradation = {deg} %");
    }

    #[test]
    fn ac_is_roughly_half_of_dc_at_path_level() {
        let o = outputs();
        let ac = o.stress("AS110AC24").unwrap().total_degradation().get();
        // Average the three 110 °C DC chips to tame chip-to-chip spread.
        let dcs: Vec<f64> = o
            .stresses
            .iter()
            .filter(|s| s.case.name == "AS110DC24")
            .map(|s| s.total_degradation().get())
            .collect();
        let dc = dcs.iter().sum::<f64>() / dcs.len() as f64;
        let ratio = ac / dc;
        assert!(ratio > 0.3 && ratio < 0.75, "AC/DC = {ratio}");
    }

    #[test]
    fn hundred_degrees_is_milder_than_110() {
        let o = outputs();
        let c100 = o.stress("AS100DC24").unwrap().total_degradation().get();
        let dcs: Vec<f64> = o
            .stresses
            .iter()
            .filter(|s| s.case.name == "AS110DC24")
            .map(|s| s.total_degradation().get())
            .collect();
        let c110 = dcs.iter().sum::<f64>() / dcs.len() as f64;
        assert!(c100 < c110, "{c100} vs {c110}");
        assert!(c100 / c110 > 0.7, "the gap is modest (Fig. 5): {}", c100 / c110);
    }

    #[test]
    fn recovery_ordering_matches_paper() {
        let o = outputs();
        let relaxed = |name: &str| o.recovery(name).unwrap().margin_relaxed().get();
        let passive = relaxed("R20Z6");
        let neg = relaxed("AR20N6");
        let hot = relaxed("AR110Z6");
        let both = relaxed("AR110N6");
        assert!(passive < neg, "R20Z6 {passive} < AR20N6 {neg}");
        assert!(passive < hot, "R20Z6 {passive} < AR110Z6 {hot}");
        assert!(both > neg && both > hot, "combined wins: {both}");
    }

    #[test]
    fn headline_margin_relaxed_near_724() {
        let o = outputs();
        let both = o.recovery("AR110N6").unwrap().margin_relaxed().get();
        assert!(both > 60.0 && both < 85.0, "AR110N6 margin relaxed = {both} %");
    }

    #[test]
    fn alpha_four_generalises_to_longer_stress() {
        // Table 5: AR110N6 (24 h / 6 h) and AR110N12 (48 h / 12 h) achieve
        // a comparable margin-relaxed parameter.
        let o = outputs();
        let short = o.recovery("AR110N6").unwrap().margin_relaxed().get();
        let long = o.recovery("AR110N12").unwrap().margin_relaxed().get();
        assert!(
            (short - long).abs() < 12.0,
            "AR110N6 {short} vs AR110N12 {long}"
        );
    }

    #[test]
    fn recovery_series_rise_monotonically_modulo_noise() {
        let o = outputs();
        for rec in &o.recoveries {
            let first = rec.series.first().unwrap().recovered_delay.get();
            let last = rec.series.last().unwrap().recovered_delay.get();
            assert!(last > first, "{} recovers over time", rec.case.name);
        }
    }

    #[test]
    fn fits_are_extracted_for_every_case() {
        let o = outputs();
        for s in &o.stresses {
            let fit = s.fit.as_ref().unwrap_or_else(|| panic!("{} has a fit", s.case.name));
            assert!(fit.beta_ns > 0.0);
            // The model curve should track the data decently.
            assert!(
                fit.rmse_ns < 0.3 * s.total_shift().get().max(0.3),
                "{}: rmse {}",
                s.case.name,
                fit.rmse_ns
            );
        }
        for r in &o.recoveries {
            assert!(r.fit.is_some(), "{} has a fit", r.case.name);
        }
    }

    #[test]
    fn lookup_helpers() {
        let o = outputs();
        assert!(o.stress("AS110AC24").is_some());
        assert!(o.stress("NOPE").is_none());
        assert!(o.recovery("AR110N12").is_some());
        assert!(o.recovery("AS110DC24").is_none());
        assert!(o.stress_on("AS110DC24", ChipId::new(5)).is_some());
        assert!(o.stress_on("AS110DC24", ChipId::new(1)).is_none());
    }

    #[test]
    fn cached_campaign_round_trips_bit_for_bit() {
        let root = std::env::temp_dir().join(format!(
            "selfheal-core-chipcache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let cache = ResultCache::at(root);
        let exp = PaperExperiment::quick(2014);
        let (first, outcomes) = exp.run_cached(&cache);
        assert_eq!(outcomes, vec![CacheOutcome::Miss; 5]);
        let (second, outcomes) = exp.run_cached(&cache);
        assert_eq!(outcomes, vec![CacheOutcome::Hit; 5]);
        assert_eq!(first, second, "rehydration reproduces the computed run");
        assert_eq!(&first, outputs(), "cached path matches PaperExperiment::run");
        // A different configuration cannot replay these entries.
        let (_, outcomes) = PaperExperiment::quick(2015).run_cached(&cache);
        assert_eq!(outcomes, vec![CacheOutcome::Miss; 5]);
    }

    #[test]
    fn determinism_given_seed() {
        let a = PaperExperiment::quick(7).run();
        let b = PaperExperiment::quick(7).run();
        assert_eq!(a, b);
    }
}
