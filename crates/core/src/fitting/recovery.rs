//! Fitting the Eq. (11) recovery kernel.
//!
//! The recovered delay during sleep is modelled as
//!
//! ```text
//! RD(t₂) = a · log(1 + c·t₂) / (1 + b·log(1 + c·(t₁ + t₂)))
//! ```
//!
//! — the paper's recovery form with the amplitude `a` (absorbing
//! `ΔTd(t₁)·φ₂·k`), the saturation weight `b` and the onset rate `c` as
//! the extracted parameters. `t₁` (the stress time that inflicted the
//! shift) is known from the schedule, not fitted.

use serde::{Deserialize, Serialize};
use selfheal_units::{Nanoseconds, Seconds};

use super::rmse;

/// A fitted recovery curve.
///
/// # Examples
///
/// ```
/// use selfheal::fitting::FittedRecoveryCurve;
/// use selfheal_units::{Nanoseconds, Seconds};
///
/// let t1 = Seconds::new(86_400.0);
/// let truth = |t2: f64| 2.0 * (1.0 + 2e-2 * t2).ln() / (1.0 + 0.5 * (1.0 + 2e-2 * (86_400.0 + t2)).ln());
/// let samples: Vec<(Seconds, Nanoseconds)> = (0..=12)
///     .map(|i| {
///         let t2 = 1800.0 * f64::from(i);
///         (Seconds::new(t2), Nanoseconds::new(truth(t2)))
///     })
///     .collect();
/// let fit = FittedRecoveryCurve::fit(&samples, t1).expect("enough samples");
/// assert!(fit.rmse_ns < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedRecoveryCurve {
    /// Amplitude `a` in nanoseconds.
    pub a_ns: f64,
    /// Saturation weight `b` (the paper's `k`-like parameter).
    pub b: f64,
    /// Onset rate `c` in 1/s.
    pub c_per_s: f64,
    /// The stress time `t₁` this curve conditions on.
    pub t1: Seconds,
    /// Fit quality against the provided samples.
    pub rmse_ns: f64,
}

impl FittedRecoveryCurve {
    /// Grid resolution per nonlinear parameter.
    const GRID: usize = 25;
    /// `log10 c` search window (1/s).
    const LOG_C_RANGE: (f64, f64) = (-6.0, 0.0);
    /// `log10 b` search window.
    const LOG_B_RANGE: (f64, f64) = (-2.0, 1.5);

    /// Fits the kernel to `(sleep elapsed, recovered delay)` samples.
    ///
    /// Returns `None` with fewer than three informative samples or when
    /// nothing recovered at all.
    #[must_use]
    pub fn fit(samples: &[(Seconds, Nanoseconds)], t1: Seconds) -> Option<Self> {
        let pts: Vec<(f64, f64)> = samples
            .iter()
            .map(|(t, y)| (t.get(), y.get()))
            .filter(|(t, _)| *t >= 0.0)
            .collect();
        let informative = pts.iter().filter(|(t, _)| *t > 0.0).count();
        if informative < 3 || pts.iter().all(|(_, y)| y.abs() < 1e-12) {
            return None;
        }
        let t1s = t1.get().max(0.0);

        let kernel = |b: f64, c: f64, t2: f64| -> f64 {
            (1.0 + c * t2).ln() / (1.0 + b * (1.0 + c * (t1s + t2)).ln())
        };
        let solve = |b: f64, c: f64| -> (f64, f64) {
            let mut num = 0.0;
            let mut den = 0.0;
            for &(t, y) in &pts {
                let g = kernel(b, c, t);
                num += g * y;
                den += g * g;
            }
            if den <= 0.0 {
                return (0.0, f64::INFINITY);
            }
            let a = num / den;
            let sse = pts
                .iter()
                .map(|&(t, y)| {
                    let e = y - a * kernel(b, c, t);
                    e * e
                })
                .sum();
            (a, sse)
        };

        let (c_lo, c_hi) = Self::LOG_C_RANGE;
        let (b_lo, b_hi) = Self::LOG_B_RANGE;
        let mut best = (f64::INFINITY, 0.0, 0.0, 0.0); // (sse, a, b, c)
        for i in 0..Self::GRID {
            let b = 10f64.powf(b_lo + (b_hi - b_lo) * i as f64 / (Self::GRID - 1) as f64);
            for j in 0..Self::GRID {
                let c = 10f64.powf(c_lo + (c_hi - c_lo) * j as f64 / (Self::GRID - 1) as f64);
                let (a, sse) = solve(b, c);
                if sse < best.0 {
                    best = (sse, a, b, c);
                }
            }
        }

        // One round of local grid refinement around the winner.
        let b_step = (b_hi - b_lo) / (Self::GRID - 1) as f64;
        let c_step = (c_hi - c_lo) / (Self::GRID - 1) as f64;
        for i in 0..Self::GRID {
            let lb = best.2.log10() - b_step + 2.0 * b_step * i as f64 / (Self::GRID - 1) as f64;
            for j in 0..Self::GRID {
                let lc =
                    best.3.log10() - c_step + 2.0 * c_step * j as f64 / (Self::GRID - 1) as f64;
                let (b, c) = (10f64.powf(lb), 10f64.powf(lc));
                let (a, sse) = solve(b, c);
                if sse < best.0 {
                    best = (sse, a, b, c);
                }
            }
        }

        let (_, a, b, c) = best;
        Some(FittedRecoveryCurve {
            a_ns: a,
            b,
            c_per_s: c,
            t1,
            rmse_ns: rmse(pts.iter().map(|&(t, y)| y - a * kernel(b, c, t))),
        })
    }

    /// The model's predicted recovered delay after `t2` of sleep.
    #[must_use]
    pub fn predict(&self, t2: Seconds) -> Nanoseconds {
        let t2 = t2.get().max(0.0);
        let t1 = self.t1.get().max(0.0);
        let g = (1.0 + self.c_per_s * t2).ln()
            / (1.0 + self.b * (1.0 + self.c_per_s * (t1 + t2)).ln());
        Nanoseconds::new(self.a_ns * g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(a: f64, b: f64, c: f64, t1: f64, noise: f64) -> Vec<(Seconds, Nanoseconds)> {
        (0..=12)
            .map(|i| {
                let t2 = 1800.0 * f64::from(i);
                let g = (1.0 + c * t2).ln() / (1.0 + b * (1.0 + c * (t1 + t2)).ln());
                let wobble = if noise == 0.0 {
                    0.0
                } else {
                    noise * ((i * 23 % 5) as f64 - 2.0) / 2.0
                };
                (Seconds::new(t2), Nanoseconds::new(a * g + wobble))
            })
            .collect()
    }

    #[test]
    fn exact_data_round_trips() {
        let t1 = Seconds::new(86_400.0);
        let fit = FittedRecoveryCurve::fit(&synth(2.0, 0.5, 2e-2, 86_400.0, 0.0), t1).unwrap();
        assert!(fit.rmse_ns < 5e-3, "rmse = {}", fit.rmse_ns);
        // Near-range extrapolation (double the sampled window) must match
        // even if (a, b, c) individually trade off along the fit's ridge.
        let t2 = 43_200.0;
        let deep = fit.predict(Seconds::new(t2)).get();
        let truth = 2.0 * (1.0f64 + 2e-2 * t2).ln()
            / (1.0 + 0.5 * (1.0f64 + 2e-2 * (86_400.0 + t2)).ln());
        assert!((deep - truth).abs() / truth < 0.05, "{deep} vs {truth}");
    }

    #[test]
    fn noisy_data_fits_reasonably() {
        let t1 = Seconds::new(86_400.0);
        let fit = FittedRecoveryCurve::fit(&synth(2.0, 0.5, 2e-2, 86_400.0, 0.05), t1).unwrap();
        assert!(fit.rmse_ns < 0.08);
        let mid = fit.predict(Seconds::new(10_800.0)).get();
        assert!(mid > 0.5 && mid < 2.5, "mid-curve prediction {mid}");
    }

    #[test]
    fn prediction_is_monotone_in_sleep_time() {
        let t1 = Seconds::new(86_400.0);
        let fit = FittedRecoveryCurve::fit(&synth(2.0, 0.5, 2e-2, 86_400.0, 0.0), t1).unwrap();
        let mut prev = -1.0;
        for i in 0..20 {
            let v = fit.predict(Seconds::new(2000.0 * f64::from(i))).get();
            assert!(v >= prev - 1e-9, "recovery curve must not regress");
            prev = v;
        }
    }

    #[test]
    fn degenerate_inputs_are_none() {
        let t1 = Seconds::new(86_400.0);
        assert!(FittedRecoveryCurve::fit(&[], t1).is_none());
        let flat: Vec<(Seconds, Nanoseconds)> = (0..10)
            .map(|i| (Seconds::new(600.0 * f64::from(i)), Nanoseconds::ZERO))
            .collect();
        assert!(FittedRecoveryCurve::fit(&flat, t1).is_none());
    }
}
