//! Model extraction from measurement series (the paper's Table 3).
//!
//! The paper fits its first-order forms to chamber measurements:
//! Eq. (10) `ΔTd(t) = β·log(1 + C·t)` for wearout, and the Eq. (11)
//! recovery kernel for healing. "β, A and C are fitting parameters and
//! can be extracted from measurement results" — this module is that
//! extraction, applied to the simulated chips' series instead of silicon.
//!
//! The fits are deliberately simple and robust: a coarse log-spaced grid
//! over the nonlinear parameters with the linear amplitude solved in
//! closed form at each grid point, followed by local refinement. With a
//! dozen samples per phase (the paper's cadence), anything fancier is
//! numerology.

mod recovery;
mod stress;

pub use recovery::FittedRecoveryCurve;
pub use stress::FittedStressCurve;

/// Root-mean-square error between a model and samples.
///
/// Returns 0 for an empty sample set.
#[must_use]
pub fn rmse(residuals: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for r in residuals {
        sum += r * r;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_of_empty_is_zero() {
        assert_eq!(rmse(std::iter::empty()), 0.0);
    }

    #[test]
    fn rmse_of_constant_residuals() {
        assert!((rmse([2.0, -2.0, 2.0, -2.0]) - 2.0).abs() < 1e-12);
    }
}
