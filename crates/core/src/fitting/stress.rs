//! Fitting the Eq. (10) wearout law `ΔTd(t) = β·log(1 + C·t)`.

use serde::{Deserialize, Serialize};
use selfheal_units::{Nanoseconds, Seconds};

use super::rmse;

/// A fitted wearout curve.
///
/// # Examples
///
/// ```
/// use selfheal::fitting::FittedStressCurve;
/// use selfheal_units::{Nanoseconds, Seconds};
///
/// // Synthetic data following β = 0.4, C = 1e-3 exactly.
/// let samples: Vec<(Seconds, Nanoseconds)> = (0..=10)
///     .map(|i| {
///         let t = 8640.0 * f64::from(i);
///         (Seconds::new(t), Nanoseconds::new(0.4 * (1.0 + 1e-3 * t).ln()))
///     })
///     .collect();
/// let fit = FittedStressCurve::fit(&samples).expect("enough samples");
/// assert!((fit.beta_ns - 0.4).abs() < 0.02);
/// assert!(fit.rmse_ns < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedStressCurve {
    /// The amplitude `β` in nanoseconds (folds the paper's `β·A`).
    pub beta_ns: f64,
    /// The log-onset rate `C` in 1/s.
    pub c_per_s: f64,
    /// Fit quality against the provided samples.
    pub rmse_ns: f64,
}

impl FittedStressCurve {
    /// Grid resolution over `log10 C`.
    const GRID: usize = 121;
    /// `log10 C` search window (1/s).
    const LOG_C_RANGE: (f64, f64) = (-7.0, 0.0);

    /// Fits the curve to `(elapsed, delay shift)` samples.
    ///
    /// Returns `None` when fewer than three samples carry information
    /// (non-zero time), or when every shift is zero (a fresh chip has no
    /// wearout curve to fit).
    #[must_use]
    pub fn fit(samples: &[(Seconds, Nanoseconds)]) -> Option<Self> {
        let pts: Vec<(f64, f64)> = samples
            .iter()
            .map(|(t, y)| (t.get(), y.get()))
            .filter(|(t, _)| *t >= 0.0)
            .collect();
        let informative = pts.iter().filter(|(t, _)| *t > 0.0).count();
        if informative < 3 || pts.iter().all(|(_, y)| y.abs() < 1e-12) {
            return None;
        }

        let sse_for = |c: f64| -> (f64, f64) {
            // Closed-form β for fixed C (least squares through origin).
            let mut num = 0.0;
            let mut den = 0.0;
            for &(t, y) in &pts {
                let x = (1.0 + c * t).ln();
                num += x * y;
                den += x * x;
            }
            if den <= 0.0 {
                return (0.0, f64::INFINITY);
            }
            let beta = num / den;
            let sse: f64 = pts
                .iter()
                .map(|&(t, y)| {
                    let e = y - beta * (1.0 + c * t).ln();
                    e * e
                })
                .sum();
            (beta, sse)
        };

        // Coarse grid over log10 C.
        let (lo, hi) = Self::LOG_C_RANGE;
        let mut best = (f64::INFINITY, 0.0, 0.0); // (sse, beta, c)
        for i in 0..Self::GRID {
            let log_c = lo + (hi - lo) * i as f64 / (Self::GRID - 1) as f64;
            let c = 10f64.powf(log_c);
            let (beta, sse) = sse_for(c);
            if sse < best.0 {
                best = (sse, beta, c);
            }
        }

        // Local refinement: golden-section on log10 C around the best cell.
        let step = (hi - lo) / (Self::GRID - 1) as f64;
        let mut a = best.2.log10() - step;
        let mut b = best.2.log10() + step;
        for _ in 0..40 {
            let m1 = a + (b - a) * 0.382;
            let m2 = a + (b - a) * 0.618;
            let s1 = sse_for(10f64.powf(m1)).1;
            let s2 = sse_for(10f64.powf(m2)).1;
            if s1 < s2 {
                b = m2;
            } else {
                a = m1;
            }
        }
        let c = 10f64.powf((a + b) / 2.0);
        let (beta, _) = sse_for(c);

        let fit = FittedStressCurve {
            beta_ns: beta,
            c_per_s: c,
            rmse_ns: rmse(pts.iter().map(|&(t, y)| y - beta * (1.0 + c * t).ln())),
        };
        Some(fit)
    }

    /// The model's predicted delay shift after `t` of stress.
    #[must_use]
    pub fn predict(&self, t: Seconds) -> Nanoseconds {
        Nanoseconds::new(self.beta_ns * (1.0 + self.c_per_s * t.get().max(0.0)).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(beta: f64, c: f64, noise: f64) -> Vec<(Seconds, Nanoseconds)> {
        (0..=12)
            .map(|i| {
                let t = 7200.0 * f64::from(i);
                let wobble = if noise == 0.0 {
                    0.0
                } else {
                    noise * ((i * 37 % 7) as f64 - 3.0) / 3.0
                };
                (
                    Seconds::new(t),
                    Nanoseconds::new(beta * (1.0 + c * t).ln() + wobble),
                )
            })
            .collect()
    }

    #[test]
    fn exact_data_round_trips() {
        let fit = FittedStressCurve::fit(&synth(0.35, 5e-3, 0.0)).unwrap();
        assert!((fit.beta_ns - 0.35).abs() < 0.01, "beta = {}", fit.beta_ns);
        assert!(
            (fit.c_per_s.log10() - (5e-3f64).log10()).abs() < 0.1,
            "C = {}",
            fit.c_per_s
        );
        assert!(fit.rmse_ns < 1e-6);
    }

    #[test]
    fn noisy_data_still_recovers_amplitude() {
        let fit = FittedStressCurve::fit(&synth(0.35, 5e-3, 0.05)).unwrap();
        assert!((fit.beta_ns - 0.35).abs() < 0.05, "beta = {}", fit.beta_ns);
        assert!(fit.rmse_ns < 0.08);
    }

    #[test]
    fn predict_matches_fit_at_samples() {
        let data = synth(0.5, 1e-3, 0.0);
        let fit = FittedStressCurve::fit(&data).unwrap();
        for (t, y) in data {
            assert!((fit.predict(t).get() - y.get()).abs() < 1e-3);
        }
    }

    #[test]
    fn too_few_samples_is_none() {
        let data = synth(0.5, 1e-3, 0.0);
        assert!(FittedStressCurve::fit(&data[..2]).is_none());
        assert!(FittedStressCurve::fit(&[]).is_none());
    }

    #[test]
    fn all_zero_shift_is_none() {
        let flat: Vec<(Seconds, Nanoseconds)> = (0..10)
            .map(|i| (Seconds::new(1000.0 * f64::from(i)), Nanoseconds::ZERO))
            .collect();
        assert!(FittedStressCurve::fit(&flat).is_none());
    }

    #[test]
    fn predict_clamps_negative_time() {
        let fit = FittedStressCurve::fit(&synth(0.35, 5e-3, 0.0)).unwrap();
        assert_eq!(fit.predict(Seconds::new(-100.0)), Nanoseconds::ZERO);
    }
}
