//! The rejuvenation techniques: what to do to a sleeping chip.
//!
//! §4.1 names three accelerated-recovery levers besides time itself:
//! proactive scheduling (see [`crate::policy`]), negative supply voltage
//! and elevated temperature. This module enumerates the four resulting
//! sleep conditions the paper measures (Table 1's recovery rows).

use std::fmt;

use serde::{Deserialize, Serialize};
use selfheal_bti::Environment;
use selfheal_units::{Celsius, Volts};

/// A sleep-phase treatment.
///
/// # Examples
///
/// ```
/// use selfheal::RejuvenationTechnique;
///
/// let best = RejuvenationTechnique::Combined;
/// let env = best.environment();
/// assert!(env.supply().is_negative());
/// assert_eq!(env.temperature_c(), selfheal_units::Celsius::new(110.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejuvenationTechnique {
    /// Plain power gating at ambient temperature — the industry-standard
    /// "sleep" the paper argues is *not* enough (case R20Z6).
    PassiveGating,
    /// Reverse-biased supply at ambient temperature (case AR20N6).
    NegativeVoltage,
    /// Power gated but heated (case AR110Z6) — e.g. by neighbouring active
    /// cores in the §6.2 multi-core scheme.
    HighTemperature,
    /// Both knobs: −0.3 V at 110 °C (case AR110N6) — the paper's best,
    /// reaching the 72.4 % margin-relaxed headline.
    Combined,
}

impl RejuvenationTechnique {
    /// All four techniques in Table 1 order.
    pub const ALL: [RejuvenationTechnique; 4] = [
        RejuvenationTechnique::PassiveGating,
        RejuvenationTechnique::NegativeVoltage,
        RejuvenationTechnique::HighTemperature,
        RejuvenationTechnique::Combined,
    ];

    /// The paper's reverse-bias level.
    #[must_use]
    pub fn reverse_bias() -> Volts {
        Volts::new(-0.3)
    }

    /// The paper's accelerated recovery temperature.
    #[must_use]
    pub fn accelerated_temperature() -> Celsius {
        Celsius::new(110.0)
    }

    /// The sleep environment this technique realises.
    #[must_use]
    pub fn environment(self) -> Environment {
        let ambient = Celsius::new(20.0);
        match self {
            RejuvenationTechnique::PassiveGating => Environment::new(Volts::ZERO, ambient),
            RejuvenationTechnique::NegativeVoltage => {
                Environment::new(Self::reverse_bias(), ambient)
            }
            RejuvenationTechnique::HighTemperature => {
                Environment::new(Volts::ZERO, Self::accelerated_temperature())
            }
            RejuvenationTechnique::Combined => {
                Environment::new(Self::reverse_bias(), Self::accelerated_temperature())
            }
        }
    }

    /// Whether this is an *accelerated* technique (any knob turned).
    #[must_use]
    pub fn is_accelerated(self) -> bool {
        !matches!(self, RejuvenationTechnique::PassiveGating)
    }

    /// The matching Table 1 recovery case name for a 6 h sleep.
    #[must_use]
    pub fn table1_case(self) -> &'static str {
        match self {
            RejuvenationTechnique::PassiveGating => "R20Z6",
            RejuvenationTechnique::NegativeVoltage => "AR20N6",
            RejuvenationTechnique::HighTemperature => "AR110Z6",
            RejuvenationTechnique::Combined => "AR110N6",
        }
    }
}

impl fmt::Display for RejuvenationTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            RejuvenationTechnique::PassiveGating => "passive gating (0 V, 20 °C)",
            RejuvenationTechnique::NegativeVoltage => "negative voltage (−0.3 V, 20 °C)",
            RejuvenationTechnique::HighTemperature => "high temperature (0 V, 110 °C)",
            RejuvenationTechnique::Combined => "combined (−0.3 V, 110 °C)",
        };
        f.write_str(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environments_match_table1_conditions() {
        let passive = RejuvenationTechnique::PassiveGating.environment();
        assert_eq!(passive.supply(), Volts::ZERO);
        assert_eq!(passive.temperature_c(), Celsius::new(20.0));

        let neg = RejuvenationTechnique::NegativeVoltage.environment();
        assert_eq!(neg.supply(), Volts::new(-0.3));

        let hot = RejuvenationTechnique::HighTemperature.environment();
        assert_eq!(hot.temperature_c(), Celsius::new(110.0));
        assert_eq!(hot.supply(), Volts::ZERO);

        let both = RejuvenationTechnique::Combined.environment();
        assert!(both.supply().is_negative());
        assert_eq!(both.temperature_c(), Celsius::new(110.0));
    }

    #[test]
    fn acceleration_predicate() {
        assert!(!RejuvenationTechnique::PassiveGating.is_accelerated());
        for t in RejuvenationTechnique::ALL.into_iter().skip(1) {
            assert!(t.is_accelerated(), "{t}");
        }
    }

    #[test]
    fn case_names_match_table1() {
        let names: Vec<&str> = RejuvenationTechnique::ALL
            .iter()
            .map(|t| t.table1_case())
            .collect();
        assert_eq!(names, vec!["R20Z6", "AR20N6", "AR110Z6", "AR110N6"]);
    }
}
