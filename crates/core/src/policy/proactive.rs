//! Proactive rejuvenation: sleep on a fixed schedule, ahead of any sign
//! of wearout.

use serde::{Deserialize, Serialize};
use selfheal_units::{Fraction, Hours, Seconds};

use crate::technique::RejuvenationTechnique;

use super::{PolicyDecision, RecoveryPolicy};

/// Sleeps for `sleep` every `awake` of active time, regardless of measured
/// state.
///
/// "Proactive recovery, with scheduled explicit accelerated recovery
/// periods ahead of any sign of stress, is simpler to implement, results
/// in the system operating for longer time in a 'refreshed' mode" (§2.2).
///
/// # Examples
///
/// ```
/// use selfheal::policy::{PolicyDecision, ProactivePolicy, RecoveryPolicy};
/// use selfheal_units::{Fraction, Seconds};
///
/// let mut policy = ProactivePolicy::paper_default();
/// // Immediately after start: keep working.
/// let d = policy.decide(Seconds::ZERO, Fraction::ZERO);
/// assert_eq!(d, PolicyDecision::StayActive);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProactivePolicy {
    awake: Seconds,
    sleep: Seconds,
    technique: RejuvenationTechnique,
    next_sleep_at: Seconds,
}

impl ProactivePolicy {
    /// Creates a policy sleeping `sleep` after every `awake` of activity.
    ///
    /// # Panics
    ///
    /// Panics if either duration is non-positive.
    #[must_use]
    pub fn new(awake: Seconds, sleep: Seconds, technique: RejuvenationTechnique) -> Self {
        assert!(awake.get() > 0.0, "awake window must be positive");
        assert!(sleep.get() > 0.0, "sleep window must be positive");
        ProactivePolicy {
            awake,
            sleep,
            technique,
            next_sleep_at: awake,
        }
    }

    /// The paper's schedule: 24 h awake, 6 h of combined-technique sleep
    /// (α = 4).
    #[must_use]
    pub fn paper_default() -> Self {
        ProactivePolicy::new(
            Hours::new(24.0).into(),
            Hours::new(6.0).into(),
            RejuvenationTechnique::Combined,
        )
    }

    /// The treatment used during sleep.
    #[must_use]
    pub fn technique(&self) -> RejuvenationTechnique {
        self.technique
    }
}

impl RecoveryPolicy for ProactivePolicy {
    fn decide(&mut self, now: Seconds, _margin_consumed: Fraction) -> PolicyDecision {
        if now >= self.next_sleep_at {
            self.next_sleep_at = now + self.sleep + self.awake;
            PolicyDecision::Sleep {
                technique: self.technique,
                duration: self.sleep,
            }
        } else {
            PolicyDecision::StayActive
        }
    }

    fn name(&self) -> &str {
        "proactive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleeps_exactly_on_schedule() {
        let mut p = ProactivePolicy::paper_default();
        let awake: Seconds = Hours::new(24.0).into();
        assert_eq!(
            p.decide(Seconds::ZERO, Fraction::ZERO),
            PolicyDecision::StayActive
        );
        assert_eq!(
            p.decide(awake * 0.99, Fraction::ZERO),
            PolicyDecision::StayActive
        );
        let d = p.decide(awake, Fraction::ZERO);
        assert!(matches!(d, PolicyDecision::Sleep { .. }));
        // Right after the sleep decision the timer has been re-armed.
        assert_eq!(
            p.decide(awake + Seconds::new(1.0), Fraction::ZERO),
            PolicyDecision::StayActive
        );
    }

    #[test]
    fn ignores_margin_signal() {
        let mut p = ProactivePolicy::paper_default();
        // Even a screaming margin does not trigger an early sleep — that
        // is the whole (deliberate) difference from the reactive policy.
        assert_eq!(
            p.decide(Seconds::new(10.0), Fraction::new(0.99)),
            PolicyDecision::StayActive
        );
    }

    #[test]
    #[should_panic(expected = "awake window")]
    fn rejects_zero_awake() {
        let _ = ProactivePolicy::new(
            Seconds::ZERO,
            Seconds::new(10.0),
            RejuvenationTechnique::Combined,
        );
    }
}
